//! Flight-delay scenario (the paper's running example from §1): compare
//! ATENA against a greedy interestingness-only baseline on the "Flights #1"
//! dataset, side by side, and score both against the gold standards.
//!
//! ```sh
//! cargo run --release --example flight_delays
//! ```

use atena::benchmark::score_notebook;
use atena::data::flights1;
use atena::{Atena, AtenaConfig, Strategy};

fn main() {
    let dataset = flights1();
    println!(
        "{} — {} ({} rows). Goal: {}.\n",
        dataset.spec.name,
        dataset.spec.description,
        dataset.frame.n_rows(),
        dataset.goal
    );

    let mut config = AtenaConfig::quick();
    config.train_steps = std::env::var("ATENA_TRAIN_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    config.env.episode_len = 8;

    for strategy in [Strategy::Atena, Strategy::GreedyIo] {
        println!("=== {} ===\n", strategy.name());
        let result = Atena::new(dataset.spec.name.clone(), dataset.frame.clone())
            .with_focal_attrs(dataset.focal_attrs())
            .with_config(config.clone())
            .with_strategy(strategy)
            .generate();

        // Print the compact view list rather than the whole notebook.
        for entry in &result.notebook.entries {
            println!("  [{}] {}", entry.index, entry.caption);
        }
        println!("\n{}", result.notebook.tree_illustration());

        let scores = score_notebook(&result.notebook, &dataset);
        println!(
            "A-EDA: precision {:.2}, T-BLEU-1 {:.2}, T-BLEU-2 {:.2}, EDA-Sim {:.2}\n",
            scores.precision, scores.t_bleu_1, scores.t_bleu_2, scores.eda_sim
        );
    }

    println!(
        "The interestingness-only baseline chases individually surprising views;\n\
         ATENA's compound reward (interestingness + diversity + coherency) produces\n\
         the drill-down narrative the paper's Example 1.1 describes."
    );
}
