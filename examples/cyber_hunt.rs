//! Cyber-hunt scenario: generate an EDA notebook for the "Cyber #1"
//! capture (an ICMP range scan) and check how many of the challenge's
//! planted insights the notebook surfaces — the paper's Figure 4b
//! measurement, on a single dataset.
//!
//! ```sh
//! cargo run --release --example cyber_hunt
//! ```

use atena::benchmark::score_notebook;
use atena::data::{cyber1, insight_coverage};
use atena::{Atena, AtenaConfig};

fn main() {
    let dataset = cyber1();
    println!(
        "{} — {} ({} rows). Goal: {}.",
        dataset.spec.name,
        dataset.spec.description,
        dataset.frame.n_rows(),
        dataset.goal
    );
    println!(
        "The official solution plants {} insights.\n",
        dataset.insights.len()
    );

    let mut config = AtenaConfig::quick();
    config.train_steps = std::env::var("ATENA_TRAIN_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    config.env.episode_len = 10;

    println!("Training ATENA ({} steps) ...", config.train_steps);
    let result = Atena::new(dataset.spec.name.clone(), dataset.frame.clone())
        .with_focal_attrs(dataset.focal_attrs())
        .with_config(config)
        .generate();

    println!("\n{}", result.notebook.to_markdown());

    // Which insights does the generated notebook surface?
    println!("## Insight audit\n");
    let mut found = 0;
    for insight in &dataset.insights {
        let hit = insight.check.satisfied_by(&result.notebook);
        if hit {
            found += 1;
        }
        println!(
            "  [{}] {}",
            if hit { "x" } else { " " },
            insight.description
        );
    }
    println!(
        "\n{}/{} insights surfaced ({:.0}%)",
        found,
        dataset.insights.len(),
        insight_coverage(&result.notebook, &dataset.insights) * 100.0
    );

    // A-EDA scores against the gold standards.
    let scores = score_notebook(&result.notebook, &dataset);
    println!(
        "A-EDA: precision {:.2}, T-BLEU-1 {:.2}, T-BLEU-2 {:.2}, EDA-Sim {:.2}",
        scores.precision, scores.t_bleu_1, scores.t_bleu_2, scores.eda_sim
    );
}
