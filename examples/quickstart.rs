//! Quickstart: load a CSV, auto-generate an EDA notebook, print it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! # or point it at your own data:
//! cargo run --release --example quickstart -- path/to/data.csv delay_column
//! ```

use atena::dataframe::DataFrame;
use atena::{Atena, AtenaConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    let (df, name, focal): (DataFrame, String, Vec<String>) = if args.len() >= 2 {
        let text = std::fs::read_to_string(&args[1])
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", args[1]));
        let df = DataFrame::from_csv_str(&text).expect("valid CSV");
        let focal = args.get(2).map(|c| vec![c.clone()]).unwrap_or_default();
        (df, args[1].clone(), focal)
    } else {
        // A small built-in flights sample so the example runs standalone.
        let csv = "\
airline,day_of_week,origin_airport,departure_delay,distance
AA,Sunday,ORD,41,733
AA,Sunday,DFW,3,1100
DL,Monday,ATL,-2,540
DL,Sunday,ATL,18,540
UA,Friday,ORD,66,733
UA,Sunday,SFO,12,2500
AA,Friday,ORD,58,733
WN,Sunday,DAL,7,300
WN,Monday,DAL,-4,300
AA,Sunday,ORD,49,733
DL,Friday,ATL,25,540
UA,Sunday,ORD,71,733
AA,Monday,DFW,0,1100
WN,Friday,HOU,15,250
DL,Sunday,JFK,31,950
UA,Friday,SFO,44,2500
AA,Sunday,MIA,9,1200
WN,Sunday,DAL,2,300
DL,Monday,ATL,-5,540
UA,Sunday,ORD,63,733
";
        (
            DataFrame::from_csv_str(csv).expect("valid CSV"),
            "sample-flights".to_string(),
            vec!["departure_delay".to_string()],
        )
    };

    println!(
        "Dataset: {name} — {} rows × {} columns",
        df.n_rows(),
        df.n_cols()
    );
    println!("Training the ATENA agent (quick schedule) ...\n");

    let result = Atena::new(name, df)
        .with_focal_attrs(focal)
        .with_config(AtenaConfig::quick())
        .generate();

    println!("{}", result.notebook.to_markdown());
    println!(
        "best episode reward: {:.3} over {} training steps",
        result.best_reward, result.steps
    );
}
