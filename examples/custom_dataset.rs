//! Build a dataset programmatically, register custom focal attributes, and
//! inspect the learned agent's exploration step by step — including the
//! reward breakdown the agent saw. Demonstrates the lower-level crates
//! (`env`, `reward`, `rl`) underneath the `Atena` facade.
//!
//! ```sh
//! cargo run --release --example custom_dataset
//! ```

use atena::dataframe::{AttrRole, DataFrame};
use atena::env::{EdaEnv, EnvConfig};
use atena::reward::{CoherencyConfig, CompoundReward};
use atena::rl::{greedy_episode, GreedyConfig};
use atena::Notebook;
use atena_env::RewardModel;

fn main() {
    // An e-commerce orders table with a planted anomaly: the "gadgets"
    // category has a burst of refunds from one country.
    let n = 400;
    let category: Vec<Option<&str>> = (0..n)
        .map(|i| Some(["books", "gadgets", "apparel", "home"][i % 4]))
        .collect();
    let country: Vec<Option<&str>> = (0..n)
        .map(|i| {
            Some(if i % 4 == 1 && i % 3 == 0 {
                "FR"
            } else {
                ["US", "DE", "UK"][i % 3]
            })
        })
        .collect();
    let status: Vec<Option<&str>> = (0..n)
        .map(|i| {
            Some(if i % 4 == 1 && i % 3 == 0 {
                "refunded"
            } else {
                "delivered"
            })
        })
        .collect();
    let amount: Vec<Option<f64>> = (0..n).map(|i| Some(20.0 + (i % 37) as f64 * 3.5)).collect();

    let df = DataFrame::builder()
        .str("category", AttrRole::Categorical, category)
        .str("country", AttrRole::Categorical, country)
        .str("status", AttrRole::Categorical, status)
        .float("amount", AttrRole::Numeric, amount)
        .int(
            "order_id",
            AttrRole::Identifier,
            (0..n).map(|i| Some(10_000 + i as i64)),
        )
        .build()
        .expect("consistent schema");

    println!("orders: {} rows × {} columns\n", df.n_rows(), df.n_cols());

    // 1. Build and calibrate the compound reward with custom focal attrs.
    let env_config = EnvConfig {
        episode_len: 8,
        n_bins: 8,
        history_window: 3,
        seed: 7,
    };
    let mut env = EdaEnv::new(df.clone(), env_config);
    let mut reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(vec!["status".into()]));
    reward.fit(&mut env, 300, 7);
    let w = reward.weights();
    println!(
        "calibrated reward weights: interestingness {:.2}, diversity {:.2}, coherency {:.2}\n",
        w.interestingness, w.diversity, w.coherency
    );

    // 2. Run a greedy compound-reward exploration and narrate each step.
    let episode = greedy_episode(&mut env, &reward, GreedyConfig::default());
    println!("greedy exploration (one-step lookahead on the compound reward):\n");

    // Replay to show per-step breakdowns.
    env.reset();
    for (i, op) in episode.ops.iter().enumerate() {
        let preview = env.preview(op);
        let breakdown = {
            let info = env.step_info(&preview);
            reward.score(&info)
        };
        println!(
            "  step {}: {}\n          interestingness {:+.2}  diversity {:+.2}  coherency {:+.2}  => {:+.2}",
            i + 1,
            op.caption(),
            breakdown.interestingness,
            breakdown.diversity,
            breakdown.coherency,
            breakdown.total
        );
        env.commit(preview);
    }
    println!("\nepisode reward: {:.3}\n", episode.total_reward);

    // 3. Render the final notebook.
    let notebook = Notebook::replay("orders", &df, &episode.ops);
    println!("{}", notebook.to_markdown());
}
