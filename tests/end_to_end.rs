//! End-to-end integration tests: the full pipeline from raw data to scored
//! notebook, across all workspace crates.

use atena::benchmark::{rate, score_notebook};
use atena::data::{cyber2, flights3, insight_coverage, simulate_traces, TraceConfig};
use atena::dataframe::DataFrame;
use atena::env::EnvConfig;
use atena::rl::TrainerConfig;
use atena::{Atena, AtenaConfig, Notebook, Strategy};

fn quick_config(train_steps: usize, episode_len: usize) -> AtenaConfig {
    AtenaConfig {
        env: EnvConfig {
            episode_len,
            n_bins: 8,
            history_window: 3,
            seed: 0,
        },
        trainer: TrainerConfig {
            n_lanes: 2,
            n_workers: 2,
            rollout_len: 64,
            seed: 0,
            ..Default::default()
        },
        train_steps,
        probe_steps: 120,
        hidden: [64, 64],
        flat_term_cap: 10,
    }
}

#[test]
fn csv_to_notebook_pipeline() {
    let csv = "\
category,region,revenue
books,EU,120
books,US,80
toys,EU,300
toys,US,310
toys,EU,290
games,US,150
games,EU,40
books,US,95
";
    let df = DataFrame::from_csv_str(csv).unwrap();
    let result = Atena::new("sales", df)
        .with_focal_attrs(["revenue"])
        .with_config(quick_config(400, 4))
        .generate();
    assert_eq!(result.notebook.len(), 4);
    let md = result.notebook.to_markdown();
    assert!(md.contains("# Auto-EDA for sales"));
    let json: serde_json::Value = serde_json::from_str(&result.notebook.to_json()).unwrap();
    assert_eq!(json["cells"].as_array().unwrap().len(), 4);
}

#[test]
fn every_strategy_generates_on_a_real_dataset() {
    let dataset = flights3();
    for strategy in Strategy::ALL {
        let result = Atena::new(dataset.spec.name.clone(), dataset.frame.clone())
            .with_focal_attrs(dataset.focal_attrs())
            .with_config(quick_config(400, 4))
            .with_strategy(strategy)
            .generate();
        assert_eq!(
            result.notebook.len(),
            4,
            "{} produced a wrong-sized notebook",
            strategy.name()
        );
        assert!(result.best_reward.is_finite());
    }
}

#[test]
fn trained_atena_beats_untrained_views_on_benchmark() {
    let dataset = cyber2();
    let result = Atena::new(dataset.spec.name.clone(), dataset.frame.clone())
        .with_focal_attrs(dataset.focal_attrs())
        .with_config(quick_config(2_500, 8))
        .generate();
    let scores = score_notebook(&result.notebook, &dataset);
    // The trained agent should find at least some gold-adjacent structure.
    // The exact score depends on the RNG stream (the offline rand shim is
    // not bit-compatible with crates.io rand); a short 2.5k-step run lands
    // around 0.15, so assert a floor safely above the ~0.0 of junk sessions
    // without being flaky to stream changes.
    assert!(
        scores.eda_sim > 0.12,
        "EDA-Sim suspiciously low: {:?}",
        scores
    );
    // And its notebook must be internally valid.
    let applied = result
        .notebook
        .entries
        .iter()
        .filter(|e| e.outcome.is_applied())
        .count();
    assert!(applied >= 6, "too many invalid ops: {applied}/8 applied");
}

#[test]
fn gold_standards_dominate_traces_on_rater() {
    let dataset = cyber2();
    let atena = Atena::new(dataset.spec.name.clone(), dataset.frame.clone())
        .with_focal_attrs(dataset.focal_attrs())
        .with_config(quick_config(400, 8));
    let reward = atena.build_reward();

    let golds: Vec<Notebook> = dataset
        .gold_standards
        .iter()
        .map(|g| Notebook::replay(&dataset.spec.name, &dataset.frame, g))
        .collect();
    let gold_rating = rate(
        &golds[0],
        &dataset.frame,
        &reward,
        &golds,
        &dataset.insights,
    );

    let traces = simulate_traces(
        &dataset,
        2,
        TraceConfig {
            length: 8,
            ..Default::default()
        },
    );
    let trace_nb = Notebook::replay(&dataset.spec.name, &dataset.frame, &traces[0]);
    let trace_rating = rate(
        &trace_nb,
        &dataset.frame,
        &reward,
        &golds,
        &dataset.insights,
    );

    assert!(
        gold_rating.overall() > trace_rating.overall(),
        "gold {:.2} should beat traces {:.2}",
        gold_rating.overall(),
        trace_rating.overall()
    );
}

#[test]
fn insight_coverage_ordering_gold_vs_junk() {
    let dataset = cyber2();
    let golds: Vec<Notebook> = dataset
        .gold_standards
        .iter()
        .map(|g| Notebook::replay(&dataset.spec.name, &dataset.frame, g))
        .collect();
    let best_gold = golds
        .iter()
        .map(|nb| insight_coverage(nb, &dataset.insights))
        .fold(0.0f64, f64::max);
    // A do-nothing notebook.
    let empty = Notebook::replay(&dataset.spec.name, &dataset.frame, &[]);
    assert!(best_gold > 0.5);
    assert_eq!(insight_coverage(&empty, &dataset.insights), 0.0);
}

#[test]
fn generation_is_deterministic_for_fixed_seeds() {
    let dataset = flights3();
    let run = || {
        Atena::new(dataset.spec.name.clone(), dataset.frame.clone())
            .with_focal_attrs(dataset.focal_attrs())
            .with_config(quick_config(400, 4))
            .with_strategy(Strategy::GreedyCr)
            .generate()
            .notebook
            .views()
    };
    assert_eq!(run(), run());
}
