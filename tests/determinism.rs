//! The determinism contract (DESIGN.md §4h/§4i/§4j/§4l), enforced
//! end-to-end: the worker count, the display-cache capacity, span tracing,
//! and lane batching change how fast rollouts are collected (or how
//! observable they are), never what is learned. At a fixed seed the full
//! `TrainLog` and the final checkpoint blob must be **bit-identical**
//! across cache {off, on} × workers {1, 4} × tracing {off, on} × batching
//! {off, on}.
//!
//! Triage rule (KNOWN_FAILURES.md): any "parallel run differs from serial"
//! or "cached run differs from uncached" report is a bug in whatever made
//! randomness, merge order, or a memoized value depend on scheduling —
//! never something to paper over by loosening these asserts.

use atena::core::{train_policy_bundle, AtenaConfig, Strategy};
use atena::dataframe::{AttrRole, DataFrame};
use atena::env::{EdaEnv, EnvConfig};
use atena::reward::{CoherencyConfig, CompoundReward};
use atena::rl::{ActionMapper, PpoConfig, Trainer, TrainerConfig, TwofoldConfig, TwofoldPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn base() -> DataFrame {
    DataFrame::builder()
        .str(
            "proto",
            AttrRole::Categorical,
            (0..60).map(|i| Some(if i % 5 == 0 { "udp" } else { "tcp" })),
        )
        .str(
            "src",
            AttrRole::Categorical,
            (0..60).map(|i| Some(["a", "b", "c"][i % 3])),
        )
        .int(
            "len",
            AttrRole::Numeric,
            (0..60).map(|i| Some((i * 13 % 31) as i64)),
        )
        .build()
        .unwrap()
}

fn quick_config(workers: usize) -> AtenaConfig {
    let mut c = AtenaConfig::quick();
    c.train_steps = 400;
    c.probe_steps = 80;
    c.env.episode_len = 4;
    c.trainer.n_workers = workers;
    c
}

#[test]
fn checkpoint_blob_is_bit_identical_across_worker_counts_and_cache() {
    // The bundle JSON covers everything a served policy is: every f32
    // parameter, the best observed reward, and the step provenance. String
    // equality of the serialized form is bit-identity.
    let run = |workers: usize, display_cache: usize| {
        let mut config = quick_config(workers);
        config.trainer.display_cache = display_cache;
        train_policy_bundle("det", base(), vec![], config, Strategy::Atena)
            .unwrap()
            .to_json()
            .unwrap()
    };
    let serial = run(1, 0);
    for (workers, display_cache) in [(1, 1024), (4, 0), (4, 1024)] {
        assert_eq!(
            run(workers, display_cache),
            serial,
            "workers={workers} display_cache={display_cache} checkpoint differs from \
             serial uncached"
        );
    }
}

#[test]
fn train_log_is_bit_identical_across_worker_counts_and_cache() {
    let run = |n_workers: usize, display_cache: usize| {
        let seed = 23;
        let env_config = EnvConfig {
            episode_len: 6,
            n_bins: 5,
            history_window: 3,
            seed,
        };
        let probe = EdaEnv::new(base(), env_config.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = TwofoldPolicy::new(
            probe.observation_dim(),
            probe.action_space().head_sizes(),
            TwofoldConfig { hidden: [32, 32] },
            &mut rng,
        );
        let mut reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(vec!["src".into()]));
        let mut fit_env = EdaEnv::new(base(), env_config.clone());
        reward.fit(&mut fit_env, 120, seed);
        let mut trainer = Trainer::new(
            Arc::new(policy),
            ActionMapper::Twofold,
            Arc::new(reward),
            &base(),
            env_config,
            TrainerConfig {
                n_lanes: 4,
                n_workers,
                display_cache,
                rollout_len: 32,
                eval_window: 10,
                seed,
                ppo: PpoConfig {
                    minibatch: 32,
                    epochs: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        // Debug-format the full log: curve points, episode/step counters,
        // best episode (ops + f64 rewards), and final update diagnostics
        // all print at full precision, so equal strings ⇔ equal values.
        format!("{:?}", trainer.train(256))
    };
    let serial = run(1, 0);
    for (workers, display_cache) in [(1, 1024), (4, 0), (4, 1024)] {
        assert_eq!(
            run(workers, display_cache),
            serial,
            "workers={workers} display_cache={display_cache} TrainLog differs from \
             serial uncached"
        );
    }
}

#[test]
fn checkpoint_blob_is_bit_identical_with_lane_batching() {
    // `trainer.batch_lanes` routes collection through the lane-batched
    // source (one `[B, obs_dim]` forward per env step, DESIGN.md §4l).
    // Batching is execution-only, so the serialized bundle — every f32
    // parameter included — must match the unbatched serial run exactly.
    let run = |workers: usize, batch_lanes: usize, display_cache: usize| {
        let mut config = quick_config(workers);
        config.trainer.batch_lanes = batch_lanes;
        config.trainer.display_cache = display_cache;
        train_policy_bundle("det", base(), vec![], config, Strategy::Atena)
            .unwrap()
            .to_json()
            .unwrap()
    };
    let serial = run(1, 0, 0);
    for (workers, batch_lanes, display_cache) in [(1, 4, 0), (4, 4, 1024), (4, 8, 0)] {
        assert_eq!(
            run(workers, batch_lanes, display_cache),
            serial,
            "workers={workers} batch_lanes={batch_lanes} display_cache={display_cache} \
             checkpoint differs from serial unbatched"
        );
    }
}

#[test]
fn train_log_is_bit_identical_with_lane_batching() {
    // Full grid: batching {off, on} × workers {1, 4} × cache {off, on},
    // all against the serial unbatched uncached reference.
    let run = |n_workers: usize, batch_lanes: usize, display_cache: usize| {
        let seed = 23;
        let env_config = EnvConfig {
            episode_len: 6,
            n_bins: 5,
            history_window: 3,
            seed,
        };
        let probe = EdaEnv::new(base(), env_config.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = TwofoldPolicy::new(
            probe.observation_dim(),
            probe.action_space().head_sizes(),
            TwofoldConfig { hidden: [32, 32] },
            &mut rng,
        );
        let mut reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(vec!["src".into()]));
        let mut fit_env = EdaEnv::new(base(), env_config.clone());
        reward.fit(&mut fit_env, 120, seed);
        let mut trainer = Trainer::new(
            Arc::new(policy),
            ActionMapper::Twofold,
            Arc::new(reward),
            &base(),
            env_config,
            TrainerConfig {
                n_lanes: 4,
                n_workers,
                batch_lanes,
                display_cache,
                rollout_len: 32,
                eval_window: 10,
                seed,
                ppo: PpoConfig {
                    minibatch: 32,
                    epochs: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        format!("{:?}", trainer.train(256))
    };
    let serial = run(1, 0, 0);
    for (n_workers, batch_lanes, display_cache) in [
        (1, 4, 0),
        (1, 4, 1024),
        (4, 4, 0),
        (4, 4, 1024),
        (1, 8, 0),
        (4, 8, 1024),
    ] {
        assert_eq!(
            run(n_workers, batch_lanes, display_cache),
            serial,
            "workers={n_workers} batch_lanes={batch_lanes} display_cache={display_cache} \
             TrainLog differs from serial unbatched uncached"
        );
    }
}

#[test]
fn train_log_is_bit_identical_with_tracing_on_and_off() {
    // Span tracing is execution-only (DESIGN.md §4j): it reads timings out
    // of the run but injects nothing back — no RNG draws, no reordering.
    // Each run gets a private tracer so enabled/disabled states can't leak
    // across the grid through the process-global one.
    let run = |n_workers: usize, traced: bool| -> (String, u64) {
        let seed = 23;
        let env_config = EnvConfig {
            episode_len: 6,
            n_bins: 5,
            history_window: 3,
            seed,
        };
        let probe = EdaEnv::new(base(), env_config.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = TwofoldPolicy::new(
            probe.observation_dim(),
            probe.action_space().head_sizes(),
            TwofoldConfig { hidden: [32, 32] },
            &mut rng,
        );
        let mut reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(vec!["src".into()]));
        let mut fit_env = EdaEnv::new(base(), env_config.clone());
        reward.fit(&mut fit_env, 120, seed);
        let tracer = Arc::new(atena::telemetry::Tracer::new());
        tracer.set_enabled(traced);
        let mut trainer = Trainer::new(
            Arc::new(policy),
            ActionMapper::Twofold,
            Arc::new(reward),
            &base(),
            env_config,
            TrainerConfig {
                n_lanes: 4,
                n_workers,
                rollout_len: 32,
                eval_window: 10,
                seed,
                ppo: PpoConfig {
                    minibatch: 32,
                    epochs: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .with_tracer(Arc::clone(&tracer));
        let log = format!("{:?}", trainer.train(256));
        (log, tracer.counts().spans_recorded)
    };
    let (serial, silent_spans) = run(1, false);
    assert_eq!(silent_spans, 0, "disabled tracer must record nothing");
    for (workers, traced) in [(1, true), (4, false), (4, true)] {
        let (log, spans) = run(workers, traced);
        assert_eq!(
            log, serial,
            "workers={workers} tracing={traced} TrainLog differs from serial untraced"
        );
        if traced {
            assert!(
                spans > 0,
                "workers={workers}: enabled tracer recorded no spans"
            );
        }
    }
}
