//! Configuration and artifact serialization round-trips: every config the
//! experiments record in their JSON dumps must survive serde.

use atena::env::EnvConfig;
use atena::rl::{Checkpoint, PpoConfig, TrainerConfig};
use atena::{AtenaConfig, Strategy};

#[test]
fn atena_config_round_trips() {
    let config = AtenaConfig::quick();
    let json = serde_json::to_string(&config).unwrap();
    let back: AtenaConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config);
}

#[test]
fn env_and_trainer_configs_round_trip() {
    let env = EnvConfig {
        episode_len: 7,
        n_bins: 9,
        history_window: 2,
        seed: 42,
    };
    let back: EnvConfig = serde_json::from_str(&serde_json::to_string(&env).unwrap()).unwrap();
    assert_eq!(back, env);

    let trainer = TrainerConfig {
        ppo: PpoConfig {
            clip_eps: 0.15,
            ..Default::default()
        },
        n_lanes: 5,
        n_workers: 3,
        ..Default::default()
    };
    let back: TrainerConfig =
        serde_json::from_str(&serde_json::to_string(&trainer).unwrap()).unwrap();
    assert_eq!(back, trainer);
}

#[test]
fn strategies_round_trip() {
    for s in Strategy::ALL {
        let json = serde_json::to_string(&s).unwrap();
        let back: Strategy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

#[test]
fn checkpoints_survive_json_round_trip_through_training() {
    use atena::dataframe::{AttrRole, DataFrame};
    use atena::env::EdaEnv;
    use atena::nn::ParamSet;
    use atena::rl::{Policy, TwofoldConfig, TwofoldPolicy};
    use rand::SeedableRng;

    let df = DataFrame::builder()
        .str(
            "c",
            AttrRole::Categorical,
            (0..30).map(|i| Some(["a", "b"][i % 2])),
        )
        .int("v", AttrRole::Numeric, (0..30).map(|i| Some(i as i64)))
        .build()
        .unwrap();
    let env = EdaEnv::new(df, EnvConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let policy = TwofoldPolicy::new(
        env.observation_dim(),
        env.action_space().head_sizes(),
        TwofoldConfig { hidden: [16, 16] },
        &mut rng,
    );
    let tag = format!("twofold/obs{}", env.observation_dim());
    let ckpt = Checkpoint::capture(&tag, policy.params());
    let json = ckpt.to_json().unwrap();
    let loaded = Checkpoint::from_json(&json).unwrap();
    // Restoring into a matching architecture works; into a mismatched
    // ParamSet fails loudly.
    loaded.restore(&tag, policy.params()).unwrap();
    let empty = ParamSet::new();
    assert!(loaded.restore("other-arch", &empty).is_err());
}
