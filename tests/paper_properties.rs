//! Integration tests asserting paper-level properties across crates:
//! the architecture claims of §5 and the benchmark relationships of §6.

use atena::data::{all_datasets, cyber2};
use atena::env::{ActionSpace, EdaEnv, EnvConfig};
use atena::rl::{ActionChoice, Policy, TwofoldConfig, TwofoldPolicy};
use atena_benchmark::{precision, t_bleu};
use atena_core::Notebook;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §5: the pre-output layer is |OP| + Σ|V(p)|, far smaller than the flat
/// enumeration Σ Π|V(p)| — on every experimental dataset.
#[test]
fn twofold_layer_is_smaller_than_flat_on_all_datasets() {
    for dataset in all_datasets() {
        let space = ActionSpace::from_frame(&dataset.frame, 10);
        let pre = space.head_sizes().pre_output_size();
        let flat = space.flat_size_binned();
        assert!(
            pre * 5 < flat,
            "{}: pre-output {pre} vs flat {flat}",
            dataset.spec.id
        );
    }
}

/// §5: even with binning, the flat space is large; with explicit terms it
/// grows further (the paper's OTS-DRL needed the top-10-token restriction).
#[test]
fn explicit_term_space_is_largest() {
    let dataset = cyber2();
    let space = ActionSpace::from_frame(&dataset.frame, 10);
    let with_terms = space.enumerate_with_terms(&dataset.frame, 10).len();
    let binned = space.flat_size_binned();
    let pre = space.head_sizes().pre_output_size();
    assert!(pre < binned);
    assert!(
        with_terms > 100,
        "term enumeration suspiciously small: {with_terms}"
    );
}

/// The twofold policy's joint log-prob decomposes per the active heads:
/// sampling and evaluation agree on every dataset schema.
#[test]
fn twofold_policy_consistent_on_real_schema() {
    let dataset = cyber2();
    let env = EdaEnv::new(dataset.frame.clone(), EnvConfig::default());
    let mut rng = StdRng::seed_from_u64(1);
    let policy = TwofoldPolicy::new(
        env.observation_dim(),
        env.action_space().head_sizes(),
        TwofoldConfig { hidden: [32, 32] },
        &mut rng,
    );
    let obs = vec![0.25f32; env.observation_dim()];
    for _ in 0..20 {
        let step = policy.act(&obs, 1.0, &mut rng);
        let mut g = atena::nn::Graph::new();
        let eval = policy.evaluate(
            &mut g,
            &atena::nn::Tensor::row_vector(obs.clone()),
            &[step.choice],
        );
        let lp = g.value(eval.log_prob).get(0, 0);
        assert!(
            (lp - step.log_prob).abs() < 1e-3,
            "{lp} vs {}",
            step.log_prob
        );
        // The choice maps to a valid action for this env.
        let ActionChoice::Twofold { heads } = step.choice else {
            panic!()
        };
        assert!(heads[1] < env.action_space().n_attrs());
    }
}

/// §6.3: a gold notebook scores 1.0 against a gold set containing it and
/// strictly less when it is excluded (the metrics are sane on real data).
#[test]
fn benchmark_metrics_are_consistent_on_gold_sets() {
    let dataset = cyber2();
    let golds: Vec<Notebook> = dataset
        .gold_standards
        .iter()
        .map(|g| Notebook::replay(&dataset.spec.name, &dataset.frame, g))
        .collect();
    let views0 = golds[0].views();
    let all_views: Vec<Vec<String>> = golds.iter().map(|g| g.views()).collect();
    let rest_views: Vec<Vec<String>> = all_views[1..].to_vec();

    assert!((precision(&views0, &all_views) - 1.0).abs() < 1e-12);
    assert!((t_bleu(&views0, &all_views, 2) - 1.0).abs() < 1e-12);

    let p_rest = precision(&views0, &rest_views);
    let b_rest = t_bleu(&views0, &rest_views, 2);
    assert!(p_rest < 1.0);
    assert!(b_rest < 1.0);
    // But distinct gold paths still share some structure.
    assert!(p_rest > 0.0, "gold notebooks should overlap on key views");
}

/// Episode mechanics hold on the biggest dataset (Cyber #4, 13625 rows):
/// full episodes complete, observations stay finite and fixed-size.
#[test]
fn large_dataset_episode_mechanics() {
    let dataset = atena::data::cyber4();
    let mut env = EdaEnv::new(
        dataset.frame.clone(),
        EnvConfig {
            episode_len: 6,
            n_bins: 10,
            history_window: 3,
            seed: 3,
        },
    );
    let obs = env.reset();
    let dim = env.observation_dim();
    assert_eq!(obs.len(), dim);
    let mut rng = StdRng::seed_from_u64(9);
    while !env.done() {
        let action = atena::reward::random_action(&env, &mut rng);
        let t = env.step(&action);
        assert_eq!(t.observation.len(), dim);
        assert!(t.observation.iter().all(|v| v.is_finite()));
    }
    assert_eq!(env.session().ops().len(), 6);
}
