//! # atena
//!
//! A from-scratch Rust implementation of **ATENA** — *"Automatically
//! Generating Data Exploration Sessions Using Deep Reinforcement Learning"*
//! (Bar El, Milo, Somech — SIGMOD 2020).
//!
//! ATENA takes a tabular dataset and auto-generates a compelling EDA
//! notebook: a coherent, diverse, interesting sequence of FILTER / GROUP /
//! BACK operations, discovered by a deep-reinforcement-learning agent with
//! the paper's twofold multi-softmax output architecture.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dataframe`] | `atena-dataframe` | columnar engine (filter/group/aggregate/statistics) |
//! | [`env`] | `atena-env` | the EDA MDP: actions, binning, displays, observations |
//! | [`reward`] | `atena-reward` | interestingness + diversity + weak-supervision coherency |
//! | [`nn`] | `atena-nn` | tensors, autodiff, MLPs, Adam |
//! | [`rl`] | `atena-rl` | twofold/flat policies, PPO trainer, greedy baselines |
//! | [`core`] | `atena-core` | the `Atena` API and `Notebook` model |
//! | [`data`] | `atena-data` | the 8 experimental datasets with planted insights |
//! | [`benchmark`] | `atena-benchmark` | the A-EDA metrics and the simulated rater |
//!
//! ## Quickstart
//!
//! ```no_run
//! use atena::{Atena, AtenaConfig};
//! use atena::dataframe::DataFrame;
//!
//! let csv = "airline,departure_delay\nAA,12\nDL,3\nAA,55\n";
//! let df = DataFrame::from_csv_str(csv).unwrap();
//! let result = Atena::new("my-flights", df)
//!     .with_focal_attrs(["departure_delay"])
//!     .with_config(AtenaConfig::quick())
//!     .generate();
//! println!("{}", result.notebook.to_markdown());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use atena_core::{Atena, AtenaConfig, GenerationResult, Notebook, Strategy};

/// The columnar dataframe engine (re-export of `atena-dataframe`).
pub mod dataframe {
    pub use atena_dataframe::*;
}
/// The EDA MDP environment (re-export of `atena-env`).
pub mod env {
    pub use atena_env::*;
}
/// The compound reward signal (re-export of `atena-reward`).
pub mod reward {
    pub use atena_reward::*;
}
/// The neural-network substrate (re-export of `atena-nn`).
pub mod nn {
    pub use atena_nn::*;
}
/// The DRL machinery (re-export of `atena-rl`).
pub mod rl {
    pub use atena_rl::*;
}
/// The ATENA system API (re-export of `atena-core`).
pub mod core {
    pub use atena_core::*;
}
/// The experimental datasets (re-export of `atena-data`).
pub mod data {
    pub use atena_data::*;
}
/// The A-EDA benchmark (re-export of `atena-benchmark`).
pub mod benchmark {
    pub use atena_benchmark::*;
}
/// Logging, metrics, and span tracing (re-export of `atena-telemetry`).
pub mod telemetry {
    pub use atena_telemetry::*;
}
