//! EDA-Sim (paper §6.3, metric 5; devised in [29]): a graded similarity for
//! exploratory sessions. Unlike Precision/T-BLEU, *almost* identical views
//! contribute partial credit: pairwise view similarity is computed from the
//! views' structure (filters, grouping, aggregations) and sequences are
//! compared by global alignment.

use atena_core::Notebook;
use atena_env::DisplaySpec;

/// Pairwise structural similarity of two views in `[0, 1]`:
/// an even blend of the Jaccard similarities of the predicate sets, the
/// group-key sets, and the aggregation sets (the three facets of a display
/// spec).
pub fn view_similarity(a: &DisplaySpec, b: &DisplaySpec) -> f64 {
    let preds_a: Vec<String> = a.predicates.iter().map(|p| p.to_string()).collect();
    let preds_b: Vec<String> = b.predicates.iter().map(|p| p.to_string()).collect();
    let keys_a: Vec<String> = a.group_keys.clone();
    let keys_b: Vec<String> = b.group_keys.clone();
    let aggs_a: Vec<String> = a
        .aggregations
        .iter()
        .map(|(f, c)| format!("{f}({c})"))
        .collect();
    let aggs_b: Vec<String> = b
        .aggregations
        .iter()
        .map(|(f, c)| format!("{f}({c})"))
        .collect();

    // Attribute-level partial credit on predicates: same attribute filtered
    // with a different term still reflects related intent.
    let attr_a: Vec<&str> = a.predicates.iter().map(|p| p.attr.as_str()).collect();
    let attr_b: Vec<&str> = b.predicates.iter().map(|p| p.attr.as_str()).collect();

    0.35 * jaccard(&preds_a, &preds_b)
        + 0.15 * jaccard(&attr_a, &attr_b)
        + 0.3 * jaccard(&keys_a, &keys_b)
        + 0.2 * jaccard(&aggs_a, &aggs_b)
}

fn jaccard<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.iter().filter(|x| b.contains(x)).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Similarity of two view sequences in `[0, 1]`: the score of a global
/// (Needleman–Wunsch) alignment with match score [`view_similarity`] and
/// zero-cost gaps, normalized by the longer sequence's length.
pub fn sequence_similarity(a: &[DisplaySpec], b: &[DisplaySpec]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![vec![0.0f64; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            let matched = dp[i - 1][j - 1] + view_similarity(&a[i - 1], &b[j - 1]);
            dp[i][j] = matched.max(dp[i - 1][j]).max(dp[i][j - 1]);
        }
    }
    dp[n][m] / n.max(m) as f64
}

/// EDA-Sim of a generated notebook against a gold set: the sequence
/// similarity to each gold notebook, maximized (paper §6.3: "we compare the
/// generated notebook to each of the gold-standard notebooks and take the
/// maximal EDA-Sim score").
pub fn eda_sim(generated: &Notebook, golds: &[Notebook]) -> f64 {
    let gen_specs = specs_of(generated);
    golds
        .iter()
        .map(|g| sequence_similarity(&gen_specs, &specs_of(g)))
        .fold(0.0, f64::max)
}

fn specs_of(nb: &Notebook) -> Vec<DisplaySpec> {
    nb.entries
        .iter()
        .filter(|e| e.outcome.is_applied())
        .map(|e| e.display.spec.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::{AggFunc, CmpOp, Predicate};

    fn spec(preds: &[(&str, i64)], keys: &[&str], aggs: &[(&str, AggFunc)]) -> DisplaySpec {
        let mut s = DisplaySpec::default();
        for (attr, v) in preds {
            s = s.with_predicate(Predicate::new(*attr, CmpOp::Eq, *v));
        }
        for k in keys {
            for (agg, func) in aggs {
                s = s.with_grouping(k.to_string(), *func, agg.to_string());
            }
            if aggs.is_empty() {
                s.group_keys.push(k.to_string());
            }
        }
        s
    }

    #[test]
    fn identical_views_score_one() {
        let a = spec(&[("x", 1)], &["g"], &[("v", AggFunc::Avg)]);
        assert!((view_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn near_identical_views_score_high_not_zero() {
        // Same grouping, filter on the same attribute with a different term:
        // Precision would call this a miss; EDA-Sim gives substantial credit.
        let a = spec(&[("x", 1)], &["g"], &[("v", AggFunc::Avg)]);
        let b = spec(&[("x", 2)], &["g"], &[("v", AggFunc::Avg)]);
        let sim = view_similarity(&a, &b);
        assert!(sim > 0.6, "{sim}");
        assert!(sim < 1.0);
    }

    #[test]
    fn unrelated_views_score_low() {
        let a = spec(&[("x", 1)], &["g"], &[("v", AggFunc::Avg)]);
        let c = spec(&[("y", 9)], &["h"], &[("w", AggFunc::Max)]);
        assert!(view_similarity(&a, &c) < 0.15);
    }

    #[test]
    fn empty_specs_are_identical() {
        let root = DisplaySpec::default();
        assert!((view_similarity(&root, &root) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sequence_alignment_rewards_shared_order() {
        let a = spec(&[("x", 1)], &[], &[]);
        let b = spec(&[], &["g"], &[("v", AggFunc::Avg)]);
        let c = spec(&[("y", 2)], &["g"], &[("v", AggFunc::Avg)]);
        let seq = vec![a.clone(), b.clone(), c.clone()];
        assert!((sequence_similarity(&seq, &seq) - 1.0).abs() < 1e-12);
        // A subsequence aligns partially.
        let sub = vec![a.clone(), c.clone()];
        let sim = sequence_similarity(&sub, &seq);
        assert!(sim > 0.5 && sim < 1.0, "{sim}");
        // Empty vs non-empty.
        assert_eq!(sequence_similarity(&[], &seq), 0.0);
        assert_eq!(sequence_similarity(&[], &[]), 1.0);
    }

    #[test]
    fn eda_sim_takes_max_over_golds() {
        use atena_dataframe::{AttrRole, DataFrame};
        use atena_env::ResolvedOp;
        let df = DataFrame::builder()
            .str(
                "g",
                AttrRole::Categorical,
                (0..20).map(|i| Some(["a", "b"][i % 2])),
            )
            .int("v", AttrRole::Numeric, (0..20).map(|i| Some(i as i64)))
            .build()
            .unwrap();
        let ops1 = vec![ResolvedOp::Group {
            key: "g".into(),
            func: AggFunc::Avg,
            agg: "v".into(),
        }];
        let ops2 = vec![ResolvedOp::Filter(Predicate::new("g", CmpOp::Eq, "a"))];
        let gen = Notebook::replay("d", &df, &ops1);
        let gold_match = Notebook::replay("d", &df, &ops1);
        let gold_miss = Notebook::replay("d", &df, &ops2);
        let sim = eda_sim(&gen, &[gold_miss.clone(), gold_match]);
        assert!((sim - 1.0).abs() < 1e-12);
        let sim_miss_only = eda_sim(&gen, &[gold_miss]);
        assert!(sim_miss_only < 0.5);
    }
}
