//! Set- and sequence-based notebook distance metrics of the A-EDA
//! benchmark (paper §6.3): Precision and T-BLEU-n.
//!
//! Both treat a notebook as the sequence of its views' canonical
//! identities; the gold standard is a set of curated notebooks.

use std::collections::{HashMap, HashSet};

/// Precision (paper §6.3, metric 1): notebooks as *sets* of distinct views;
/// a view is a hit if it occurs in any gold-standard notebook.
pub fn precision(generated: &[String], golds: &[Vec<String>]) -> f64 {
    let gen_set: HashSet<&String> = generated.iter().collect();
    if gen_set.is_empty() {
        return 0.0;
    }
    let gold_union: HashSet<&String> = golds.iter().flatten().collect();
    let hits = gen_set.iter().filter(|v| gold_union.contains(**v)).count();
    hits as f64 / gen_set.len() as f64
}

/// T-BLEU-n (paper §6.3, metrics 2–4): BLEU [33] over view sequences —
/// clipped n-gram precision against the gold set, geometric mean over
/// orders `1..=n`, with the standard brevity penalty. Stricter than
/// Precision since it accounts for view prevalence and order.
pub fn t_bleu(generated: &[String], golds: &[Vec<String>], max_n: usize) -> f64 {
    assert!(max_n >= 1, "BLEU order must be at least 1");
    if generated.is_empty() || golds.is_empty() {
        return 0.0;
    }

    let mut log_precision_sum = 0.0f64;
    for n in 1..=max_n {
        let p = modified_ngram_precision(generated, golds, n);
        if p <= 0.0 {
            return 0.0;
        }
        log_precision_sum += p.ln();
    }
    let geo_mean = (log_precision_sum / max_n as f64).exp();

    // Brevity penalty with the closest reference length.
    let c = generated.len() as f64;
    let r = golds
        .iter()
        .map(|g| g.len())
        .min_by_key(|&len| {
            let diff = (len as i64 - generated.len() as i64).abs();
            (diff, len)
        })
        .unwrap_or(0) as f64;
    let bp = if c >= r { 1.0 } else { (1.0 - r / c).exp() };
    bp * geo_mean
}

fn ngrams(seq: &[String], n: usize) -> HashMap<Vec<&str>, usize> {
    let mut out = HashMap::new();
    if seq.len() < n {
        return out;
    }
    for w in seq.windows(n) {
        let key: Vec<&str> = w.iter().map(String::as_str).collect();
        *out.entry(key).or_insert(0) += 1;
    }
    out
}

fn modified_ngram_precision(generated: &[String], golds: &[Vec<String>], n: usize) -> f64 {
    let gen_grams = ngrams(generated, n);
    let total: usize = gen_grams.values().sum();
    if total == 0 {
        return 0.0;
    }
    let ref_grams: Vec<HashMap<Vec<&str>, usize>> = golds.iter().map(|g| ngrams(g, n)).collect();
    let mut clipped = 0usize;
    for (gram, &count) in &gen_grams {
        let max_ref = ref_grams
            .iter()
            .map(|r| r.get(gram).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        clipped += count.min(max_ref);
    }
    clipped as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn precision_counts_hits() {
        let golds = vec![s(&["a", "b", "c"]), s(&["c", "d"])];
        assert_eq!(precision(&s(&["a", "d", "z"]), &golds), 2.0 / 3.0);
        assert_eq!(precision(&s(&["z", "y"]), &golds), 0.0);
        assert_eq!(precision(&s(&["a", "a", "a"]), &golds), 1.0); // set semantics
        assert_eq!(precision(&[], &golds), 0.0);
    }

    #[test]
    fn bleu_perfect_match_is_one() {
        let gold = vec![s(&["a", "b", "c", "d"])];
        let v = s(&["a", "b", "c", "d"]);
        for n in 1..=3 {
            let score = t_bleu(&v, &gold, n);
            assert!((score - 1.0).abs() < 1e-12, "n={n}: {score}");
        }
    }

    #[test]
    fn bleu_orders_are_increasingly_strict() {
        let gold = vec![s(&["a", "b", "c", "d"])];
        // Same views, scrambled order: unigram precision perfect, higher
        // orders degrade.
        let scrambled = s(&["d", "c", "b", "a"]);
        let b1 = t_bleu(&scrambled, &gold, 1);
        let b2 = t_bleu(&scrambled, &gold, 2);
        let b3 = t_bleu(&scrambled, &gold, 3);
        assert!((b1 - 1.0).abs() < 1e-12);
        assert!(b2 < b1);
        assert!(b3 <= b2);
    }

    #[test]
    fn bleu_clips_repeats() {
        let gold = vec![s(&["a", "b"])];
        // "a" appears once in the gold; spamming it does not pay.
        let spam = s(&["a", "a", "a", "a"]);
        let b1 = t_bleu(&spam, &gold, 1);
        assert!((b1 - 0.25).abs() < 1e-12, "{b1}");
    }

    #[test]
    fn brevity_penalty_hits_short_candidates() {
        let gold = vec![s(&["a", "b", "c", "d", "e", "f"])];
        let short = s(&["a", "b"]);
        let b1 = t_bleu(&short, &gold, 1);
        assert!(b1 < 1.0, "short candidate must be penalized, got {b1}");
        assert!(b1 > 0.0);
    }

    #[test]
    fn bleu_multiple_references_takes_best() {
        let golds = vec![s(&["a", "b"]), s(&["x", "y", "z"])];
        let v = s(&["x", "y", "z"]);
        assert!((t_bleu(&v, &golds, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bleu_zero_when_no_overlap() {
        let golds = vec![s(&["a", "b"])];
        assert_eq!(t_bleu(&s(&["q", "r"]), &golds, 1), 0.0);
        assert_eq!(t_bleu(&[], &golds, 1), 0.0);
        assert_eq!(t_bleu(&s(&["a"]), &[], 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "BLEU order")]
    fn bleu_rejects_order_zero() {
        let _ = t_bleu(&[], &[], 0);
    }
}
