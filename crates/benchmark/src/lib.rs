//! # atena-benchmark
//!
//! The A-EDA benchmark for auto-generated EDA notebooks (paper §6.3),
//! fully reproducible without a user study:
//!
//! - **Precision** — notebooks as sets of distinct views, hits against the
//!   gold-standard union;
//! - **T-BLEU-1/2/3** — BLEU over view sequences (clipped n-gram precision
//!   with brevity penalty);
//! - **EDA-Sim** — graded sequence similarity per [29]: structural pairwise
//!   view similarity combined by global alignment, maximized over golds;
//! - **insight coverage** — the automatic stand-in for Figure 4b's
//!   gathered-insights count;
//! - a **simulated rater** producing 1–7 ratings on the four Figure 4a
//!   criteria from measurable notebook properties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edasim;
mod metrics;
mod rater;
mod report;

pub use edasim::{eda_sim, sequence_similarity, view_similarity};
pub use metrics::{precision, t_bleu};
pub use rater::{rate, replay_signals, Ratings, ReplaySignals};
pub use report::{score_against, score_notebook, AedaScores};
