//! Aggregated A-EDA scoring of a notebook against a dataset's gold set —
//! the five columns of Table 2 plus insight coverage.

use crate::edasim::eda_sim;
use crate::metrics::{precision, t_bleu};
use atena_core::Notebook;
use atena_data::{insight_coverage, ExperimentalDataset};
use serde::{Deserialize, Serialize};

/// One row of A-EDA scores (the Table 2 metrics).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AedaScores {
    /// Precision.
    pub precision: f64,
    /// T-BLEU-1.
    pub t_bleu_1: f64,
    /// T-BLEU-2.
    pub t_bleu_2: f64,
    /// T-BLEU-3.
    pub t_bleu_3: f64,
    /// EDA-Sim (max over golds).
    pub eda_sim: f64,
    /// Fraction of planted insights surfaced (Figure 4b's measure; 0 when
    /// the dataset has no insight list).
    pub insight_coverage: f64,
}

impl AedaScores {
    /// Elementwise mean of several score rows.
    pub fn mean(rows: &[AedaScores]) -> AedaScores {
        if rows.is_empty() {
            return AedaScores::default();
        }
        let n = rows.len() as f64;
        AedaScores {
            precision: rows.iter().map(|r| r.precision).sum::<f64>() / n,
            t_bleu_1: rows.iter().map(|r| r.t_bleu_1).sum::<f64>() / n,
            t_bleu_2: rows.iter().map(|r| r.t_bleu_2).sum::<f64>() / n,
            t_bleu_3: rows.iter().map(|r| r.t_bleu_3).sum::<f64>() / n,
            eda_sim: rows.iter().map(|r| r.eda_sim).sum::<f64>() / n,
            insight_coverage: rows.iter().map(|r| r.insight_coverage).sum::<f64>() / n,
        }
    }
}

/// Score a generated notebook against a dataset's gold standards.
pub fn score_notebook(notebook: &Notebook, dataset: &ExperimentalDataset) -> AedaScores {
    let golds: Vec<Notebook> = dataset
        .gold_standards
        .iter()
        .map(|g| Notebook::replay(&dataset.spec.name, &dataset.frame, g))
        .collect();
    score_against(notebook, &golds, dataset)
}

/// Score against pre-replayed golds (cheaper when scoring many notebooks).
pub fn score_against(
    notebook: &Notebook,
    golds: &[Notebook],
    dataset: &ExperimentalDataset,
) -> AedaScores {
    let views = notebook.views();
    let gold_views: Vec<Vec<String>> = golds.iter().map(|g| g.views()).collect();
    AedaScores {
        precision: precision(&views, &gold_views),
        t_bleu_1: t_bleu(&views, &gold_views, 1),
        t_bleu_2: t_bleu(&views, &gold_views, 2),
        t_bleu_3: t_bleu(&views, &gold_views, 3),
        eda_sim: eda_sim(notebook, golds),
        insight_coverage: insight_coverage(notebook, &dataset.insights),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_data::cyber2;

    #[test]
    fn gold_scores_itself_perfectly() {
        let d = cyber2();
        let nb = Notebook::replay(&d.spec.name, &d.frame, &d.gold_standards[0]);
        let s = score_notebook(&nb, &d);
        assert!((s.precision - 1.0).abs() < 1e-12);
        assert!((s.t_bleu_1 - 1.0).abs() < 1e-12);
        assert!((s.eda_sim - 1.0).abs() < 1e-9);
        assert!(s.insight_coverage > 0.4);
    }

    #[test]
    fn unrelated_notebook_scores_low() {
        let d = cyber2();
        // Junk: a single weird grouping.
        let ops = vec![atena_env::ResolvedOp::Group {
            key: "time".into(),
            func: atena_dataframe::AggFunc::Count,
            agg: "time".into(),
        }];
        let nb = Notebook::replay(&d.spec.name, &d.frame, &ops);
        let s = score_notebook(&nb, &d);
        assert!(s.precision < 0.5);
        assert!(s.t_bleu_2 < 0.2);
    }

    #[test]
    fn mean_aggregation() {
        let rows = vec![
            AedaScores {
                precision: 0.2,
                ..Default::default()
            },
            AedaScores {
                precision: 0.6,
                ..Default::default()
            },
        ];
        let m = AedaScores::mean(&rows);
        assert!((m.precision - 0.4).abs() < 1e-12);
        assert_eq!(AedaScores::mean(&[]), AedaScores::default());
    }
}
