//! The simulated-rater model for Figure 4a (see DESIGN.md §3.5).
//!
//! The paper's 40-participant study rated notebooks 1–7 on four criteria.
//! Our rater is a deterministic function of *measurable* notebook
//! properties, calibrated once so that gold-standard notebooks land near
//! the paper's 6.8/7 anchor, then applied identically to every system —
//! absolute values are synthetic, relative ordering is meaningful.

use crate::edasim::eda_sim;
use crate::metrics::precision;
use atena_core::Notebook;
use atena_data::{insight_coverage, Insight};
use atena_env::{EdaEnv, EnvConfig, OpOutcome, RewardModel};
use atena_reward::CompoundReward;
use serde::{Deserialize, Serialize};

/// Ratings on the paper's four criteria, each in `[1, 7]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ratings {
    /// How informative the notebook is; captures dataset highlights.
    pub informativity: f64,
    /// How comprehensible and easy to follow it is.
    pub comprehensibility: f64,
    /// Perceived expertise of the composer.
    pub expertise: f64,
    /// How closely it resembles a human-made session.
    pub human_equivalence: f64,
}

impl Ratings {
    /// Mean of the four criteria.
    pub fn overall(&self) -> f64 {
        (self.informativity + self.comprehensibility + self.expertise + self.human_equivalence)
            / 4.0
    }
}

/// Per-step signals gathered by replaying a notebook against the reward
/// model.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplaySignals {
    /// Mean coherency confidence across steps.
    pub mean_coherency: f64,
    /// Mean interestingness across steps.
    pub mean_interestingness: f64,
    /// Mean diversity across steps.
    pub mean_diversity: f64,
    /// Fraction of steps that failed to apply.
    pub invalid_fraction: f64,
}

/// Replay a notebook's operations through a fresh environment, scoring
/// each step with the reward model's components.
pub fn replay_signals(
    notebook: &Notebook,
    dataset: &atena_dataframe::DataFrame,
    reward: &CompoundReward,
) -> ReplaySignals {
    let ops = notebook.ops();
    if ops.is_empty() {
        return ReplaySignals::default();
    }
    let mut env = EdaEnv::new(
        dataset.clone(),
        EnvConfig {
            episode_len: ops.len(),
            ..EnvConfig::default()
        },
    );
    env.reset();
    let mut coherency = 0.0;
    let mut interestingness = 0.0;
    let mut diversity = 0.0;
    let mut invalid = 0usize;
    let mut scored = 0usize;
    for op in &ops {
        let preview = env.preview(op);
        {
            let info = env.step_info(&preview);
            match info.outcome {
                OpOutcome::Applied => {
                    coherency += reward.classifier().score(&info);
                    let breakdown = reward.score(&info);
                    // Undo the weighting so signals are comparable across
                    // datasets: divide by the calibrated weights.
                    let w = reward.weights();
                    interestingness += breakdown.interestingness / w.interestingness.max(1e-9);
                    diversity += breakdown.diversity / w.diversity.max(1e-9);
                    scored += 1;
                }
                _ => invalid += 1,
            }
        }
        env.commit(preview);
    }
    let n = scored.max(1) as f64;
    ReplaySignals {
        mean_coherency: coherency / n,
        mean_interestingness: interestingness / n,
        mean_diversity: diversity / n,
        invalid_fraction: invalid as f64 / ops.len() as f64,
    }
}

/// Mean signals of the gold-standard set, used as the rater's anchor.
fn gold_anchor(
    golds: &[Notebook],
    dataset: &atena_dataframe::DataFrame,
    reward: &CompoundReward,
    insights: &[Insight],
) -> (ReplaySignals, f64) {
    let mut acc = ReplaySignals::default();
    let mut coverage = 0.0;
    let n = golds.len().max(1) as f64;
    for g in golds {
        let s = replay_signals(g, dataset, reward);
        acc.mean_coherency += s.mean_coherency / n;
        acc.mean_interestingness += s.mean_interestingness / n;
        acc.mean_diversity += s.mean_diversity / n;
        acc.invalid_fraction += s.invalid_fraction / n;
        coverage += if insights.is_empty() {
            1.0 / n
        } else {
            insight_coverage(g, insights) / n
        };
    }
    (acc, coverage)
}

/// Rate a notebook. `golds` are the dataset's gold-standard notebooks and
/// `insights` its planted insight list (empty for datasets without one).
///
/// Every signal is normalized by the gold set's mean for that signal —
/// the "calibrated against the gold anchor" step of DESIGN.md §3.5 — so a
/// gold-standard notebook lands near the paper's 6.8/7 on every criterion
/// and other systems are rated *relative* to that curated ceiling.
pub fn rate(
    notebook: &Notebook,
    dataset: &atena_dataframe::DataFrame,
    reward: &CompoundReward,
    golds: &[Notebook],
    insights: &[Insight],
) -> Ratings {
    let signals = replay_signals(notebook, dataset, reward);
    let (gold, gold_coverage) = gold_anchor(golds, dataset, reward, insights);
    let gold_views: Vec<Vec<String>> = golds.iter().map(|g| g.views()).collect();
    let prec = precision(&notebook.views(), &gold_views);
    let sim = eda_sim(notebook, golds);
    let coverage = if insights.is_empty() {
        prec
    } else {
        insight_coverage(notebook, insights)
    };

    // Gold-relative signals, capped slightly above 1 so a system can edge
    // past the anchor but not run away.
    let rel = |v: f64, anchor: f64| {
        if anchor <= 1e-9 {
            v.clamp(0.0, 1.05)
        } else {
            (v / anchor).clamp(0.0, 1.05)
        }
    };
    let coverage_r = rel(coverage, gold_coverage);
    let coherency_r = rel(signals.mean_coherency, gold.mean_coherency);
    let interest_r = rel(signals.mean_interestingness, gold.mean_interestingness);
    let diversity_r = rel(signals.mean_diversity, gold.mean_diversity);
    let validity = 1.0 - signals.invalid_fraction;

    // Blends of the criteria the paper's participants were asked about.
    // Human-equivalence weighs followability (coherency) over literal view
    // overlap: a messy trace reproducing gold views still reads non-human.
    let informativity = (0.6 * coverage_r + 0.25 * interest_r + 0.15 * diversity_r) * validity;
    let comprehensibility = coherency_r * validity;
    let expertise = (0.45 * coverage_r + 0.35 * coherency_r + 0.2 * prec) * validity;
    let human_equivalence = (0.4 * sim + 0.6 * coherency_r) * validity;

    // Affine map to 1–7: a gold-relative score of 1.0 maps to ~6.9.
    let to_scale = |s: f64| (1.0 + 5.9 * s.clamp(0.0, 1.05)).min(7.0);
    Ratings {
        informativity: to_scale(informativity),
        comprehensibility: to_scale(comprehensibility),
        expertise: to_scale(expertise),
        human_equivalence: to_scale(human_equivalence),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_data::cyber2;
    use atena_env::ResolvedOp;
    use atena_reward::CoherencyConfig;

    fn fitted_reward(dataset: &atena_dataframe::DataFrame, focal: Vec<String>) -> CompoundReward {
        let mut reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(focal));
        let mut env = EdaEnv::new(dataset.clone(), EnvConfig::default());
        reward.fit(&mut env, 150, 0);
        reward
    }

    #[test]
    fn gold_standard_rates_above_junk() {
        let d = cyber2();
        let reward = fitted_reward(&d.frame, d.focal_attrs());
        let golds: Vec<Notebook> = d
            .gold_standards
            .iter()
            .map(|g| Notebook::replay(&d.spec.name, &d.frame, g))
            .collect();

        let gold_rating = rate(&golds[0], &d.frame, &reward, &golds, &d.insights);

        // A junk notebook: repeated BACKs and an invalid aggregation.
        let junk_ops = vec![
            ResolvedOp::Back,
            ResolvedOp::Back,
            ResolvedOp::Group {
                key: "length".into(),
                func: atena_dataframe::AggFunc::Sum,
                agg: "protocol".into(),
            },
            ResolvedOp::Back,
        ];
        let junk = Notebook::replay(&d.spec.name, &d.frame, &junk_ops);
        let junk_rating = rate(&junk, &d.frame, &reward, &golds, &d.insights);

        assert!(
            gold_rating.overall() > junk_rating.overall() + 2.0,
            "gold {:?} vs junk {:?}",
            gold_rating,
            junk_rating
        );
        assert!(
            gold_rating.overall() > 5.0,
            "gold overall {:?}",
            gold_rating
        );
        for r in [
            gold_rating.informativity,
            gold_rating.comprehensibility,
            gold_rating.expertise,
            gold_rating.human_equivalence,
            junk_rating.informativity,
        ] {
            assert!((1.0..=7.0).contains(&r), "rating out of scale: {r}");
        }
    }

    #[test]
    fn replay_signals_detect_invalid_ops() {
        let d = cyber2();
        let reward = fitted_reward(&d.frame, vec![]);
        let ops = vec![
            ResolvedOp::Group {
                key: "protocol".into(),
                func: atena_dataframe::AggFunc::Sum,
                agg: "source_ip".into(), // SUM over strings: invalid
            },
            ResolvedOp::Group {
                key: "protocol".into(),
                func: atena_dataframe::AggFunc::Count,
                agg: "length".into(),
            },
        ];
        let nb = Notebook::replay(&d.spec.name, &d.frame, &ops);
        let s = replay_signals(&nb, &d.frame, &reward);
        assert!((s.invalid_fraction - 0.5).abs() < 1e-12);
        assert!(s.mean_coherency > 0.0);
    }

    #[test]
    fn empty_notebook_rates_at_floor() {
        let d = cyber2();
        let reward = fitted_reward(&d.frame, vec![]);
        let nb = Notebook::replay(&d.spec.name, &d.frame, &[]);
        let golds: Vec<Notebook> = d
            .gold_standards
            .iter()
            .take(2)
            .map(|g| Notebook::replay(&d.spec.name, &d.frame, g))
            .collect();
        let r = rate(&nb, &d.frame, &reward, &golds, &d.insights);
        assert!(r.informativity < 1.5);
        assert!(r.human_equivalence < 1.5);
    }
}
