//! Property-based tests for the dataframe engine's core invariants.

use atena_dataframe::{
    entropy_of_counts, AggFunc, AttrRole, CmpOp, DataFrame, Predicate, Value, ValueDistribution,
    ValueKey,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn int_frame(values: Vec<Option<i64>>, cats: Vec<u8>) -> DataFrame {
    let n = values.len().min(cats.len());
    let cat_strs: Vec<Option<String>> = cats
        .iter()
        .take(n)
        .map(|c| Some(format!("c{}", c % 5)))
        .collect();
    DataFrame::builder()
        .int("x", AttrRole::Numeric, values.into_iter().take(n))
        .str_owned("cat", AttrRole::Categorical, cat_strs)
        .build()
        .expect("valid frame")
}

proptest! {
    /// Filtering never invents rows, and filter + complement partition the frame.
    #[test]
    fn filter_partitions_rows(
        values in prop::collection::vec(prop::option::of(-50i64..50), 1..200),
        cats in prop::collection::vec(any::<u8>(), 1..200),
        term in -50i64..50,
    ) {
        let df = int_frame(values, cats);
        let gt = df.filter(&Predicate::new("x", CmpOp::Gt, term)).unwrap();
        let le = df.filter(&Predicate::new("x", CmpOp::Le, term)).unwrap();
        let nulls = df.filter(&Predicate::new("x", CmpOp::Eq, Value::Null)).unwrap();
        prop_assert_eq!(gt.n_rows() + le.n_rows() + nulls.n_rows(), df.n_rows());
    }

    /// Eq and Neq are complementary for non-null values.
    #[test]
    fn eq_neq_complementary(
        values in prop::collection::vec(prop::option::of(-10i64..10), 1..100),
        cats in prop::collection::vec(any::<u8>(), 1..100),
        term in -10i64..10,
    ) {
        let df = int_frame(values, cats);
        let eq = df.filter(&Predicate::new("x", CmpOp::Eq, term)).unwrap();
        let neq = df.filter(&Predicate::new("x", CmpOp::Neq, term)).unwrap();
        // Neq includes nulls under our semantics; Eq excludes them.
        prop_assert_eq!(eq.n_rows() + neq.n_rows(), df.n_rows());
    }

    /// Group sizes always sum to the number of source rows.
    #[test]
    fn group_sizes_sum_to_rows(
        values in prop::collection::vec(prop::option::of(-5i64..5), 1..150),
        cats in prop::collection::vec(any::<u8>(), 1..150),
    ) {
        let df = int_frame(values, cats);
        let g = df.group_by(&["cat"]).unwrap();
        let total: usize = g.group_sizes().iter().sum();
        prop_assert_eq!(total, df.n_rows());
        prop_assert!(g.n_groups() <= 5);
    }

    /// COUNT aggregates sum to the number of non-null aggregated values.
    #[test]
    fn count_aggregate_conservation(
        values in prop::collection::vec(prop::option::of(-5i64..5), 1..150),
        cats in prop::collection::vec(any::<u8>(), 1..150),
    ) {
        let df = int_frame(values, cats);
        let out = df.group_aggregate(&["cat"], AggFunc::Count, "x").unwrap();
        let col = out.column("COUNT(x)").unwrap();
        let total: i64 = col.iter().filter_map(|v| v.as_f64()).sum::<f64>() as i64;
        let non_null = df.n_rows() - df.column("x").unwrap().null_count();
        prop_assert_eq!(total, non_null as i64);
    }

    /// AVG of each group lies between the group's MIN and MAX.
    #[test]
    fn avg_bounded_by_min_max(
        values in prop::collection::vec(-100i64..100, 2..100),
        cats in prop::collection::vec(any::<u8>(), 2..100),
    ) {
        let df = int_frame(values.into_iter().map(Some).collect(), cats);
        let avg = df.group_aggregate(&["cat"], AggFunc::Avg, "x").unwrap();
        let min = df.group_aggregate(&["cat"], AggFunc::Min, "x").unwrap();
        let max = df.group_aggregate(&["cat"], AggFunc::Max, "x").unwrap();
        for r in 0..avg.n_rows() {
            let a = avg.value(r, "AVG(x)").unwrap().as_f64().unwrap();
            let lo = min.value(r, "MIN(x)").unwrap().as_f64().unwrap();
            let hi = max.value(r, "MAX(x)").unwrap().as_f64().unwrap();
            prop_assert!(lo - 1e-9 <= a && a <= hi + 1e-9, "{lo} <= {a} <= {hi}");
        }
    }

    /// `take` preserves values at the gathered indices.
    #[test]
    fn take_preserves_values(
        values in prop::collection::vec(prop::option::of(-50i64..50), 1..100),
        cats in prop::collection::vec(any::<u8>(), 1..100),
    ) {
        let df = int_frame(values, cats);
        let idx: Vec<usize> = (0..df.n_rows()).rev().collect();
        let rev = df.take(&idx);
        for (new_row, &old_row) in idx.iter().enumerate() {
            prop_assert_eq!(
                rev.value(new_row, "x").unwrap().to_owned(),
                df.value(old_row, "x").unwrap().to_owned()
            );
        }
    }

    /// Entropy is non-negative and bounded by log2 of support size.
    #[test]
    fn entropy_bounds(counts in prop::collection::vec(1usize..1000, 1..30)) {
        let h = entropy_of_counts(counts.iter());
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (counts.len() as f64).log2() + 1e-9);
    }

    /// KL divergence is non-negative (Gibbs' inequality) and zero on self.
    #[test]
    fn kl_nonnegative(counts_p in prop::collection::vec(1usize..100, 1..20),
                      counts_q in prop::collection::vec(1usize..100, 1..20)) {
        let to_dist = |cs: &[usize]| {
            let map: BTreeMap<ValueKey, usize> =
                cs.iter().enumerate().map(|(i, &c)| (ValueKey::Int(i as i64), c)).collect();
            ValueDistribution::from_counts(&map)
        };
        let p = to_dist(&counts_p);
        let q = to_dist(&counts_q);
        prop_assert!(p.kl_divergence(&q) >= 0.0);
        prop_assert!(p.kl_divergence(&p) < 1e-9);
    }

    /// CSV round-trips preserve shape and values.
    #[test]
    fn csv_round_trip(
        values in prop::collection::vec(prop::option::of(-1000i64..1000), 1..50),
        cats in prop::collection::vec(any::<u8>(), 1..50),
    ) {
        let df = int_frame(values, cats);
        let back = DataFrame::from_csv_str(&df.to_csv_string()).unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        prop_assert_eq!(back.n_cols(), df.n_cols());
        for r in 0..df.n_rows() {
            prop_assert_eq!(
                back.value(r, "x").unwrap().to_owned(),
                df.value(r, "x").unwrap().to_owned()
            );
        }
    }

    /// Sorting is a permutation and is ordered on the sort key.
    #[test]
    fn sort_is_ordered_permutation(
        values in prop::collection::vec(prop::option::of(-50i64..50), 1..100),
        cats in prop::collection::vec(any::<u8>(), 1..100),
    ) {
        let df = int_frame(values, cats);
        let sorted = df.sort_by("x", false).unwrap();
        prop_assert_eq!(sorted.n_rows(), df.n_rows());
        let mut prev: Option<f64> = None;
        let mut seen_null = false;
        for r in 0..sorted.n_rows() {
            match sorted.value(r, "x").unwrap().as_f64() {
                Some(v) => {
                    prop_assert!(!seen_null, "non-null after null");
                    if let Some(p) = prev {
                        prop_assert!(p <= v);
                    }
                    prev = Some(v);
                }
                None => seen_null = true,
            }
        }
    }

    /// Row permutation invariance: `value_counts` iterates in `ValueKey`
    /// order (BTreeMap) and distributions/KL are bit-identical regardless
    /// of the order rows arrived in — the property the hash-order lint
    /// rule exists to protect.
    #[test]
    fn value_counts_order_is_row_permutation_invariant(
        values in prop::collection::vec(prop::option::of(-8i64..8), 2..80),
        cats in prop::collection::vec(any::<u8>(), 2..80),
        rotate in 1usize..40,
    ) {
        let df = int_frame(values.clone(), cats.clone());
        let n = df.n_rows();
        let rows: Vec<usize> = (0..n).map(|r| (r + rotate) % n).collect();
        let permuted = df.take(&rows);

        for col in ["x", "cat"] {
            let a = df.column(col).unwrap().value_counts();
            let b = permuted.column(col).unwrap().value_counts();
            // Same multiset of counts, and iteration yields sorted keys.
            prop_assert_eq!(&a, &b);
            let keys: Vec<&ValueKey> = a.keys().collect();
            let mut sorted = keys.clone();
            sorted.sort();
            prop_assert_eq!(keys, sorted);

            // Distributions built from the two orderings are bit-identical:
            // same support, same probability bits, same KL against a shared
            // reference.
            let da = ValueDistribution::from_counts(&a);
            let db = ValueDistribution::from_counts(&b);
            prop_assert_eq!(da.support_size(), db.support_size());
            for k in a.keys() {
                prop_assert_eq!(da.prob(k).to_bits(), db.prob(k).to_bits());
            }
            let reference = ValueDistribution::from_counts(&df.column(col).unwrap().value_counts());
            prop_assert_eq!(
                da.kl_divergence(&reference).to_bits(),
                db.kl_divergence(&reference).to_bits()
            );
        }
    }
}
