//! # atena-dataframe
//!
//! A small, from-scratch columnar dataframe engine — the substrate the ATENA
//! EDA environment executes its analysis operations on (the role pandas
//! plays in the original paper).
//!
//! Capabilities:
//! - typed nullable columns (`Int`, `Float`, `Bool`, dictionary-encoded `Str`)
//! - filter predicates (`==`, `!=`, `<`, `>`, `<=`, `>=`, `contains`,
//!   `starts_with`) with pandas-like null semantics
//! - group-by over one or more keys with `COUNT`/`SUM`/`AVG`/`MIN`/`MAX`
//!   aggregates
//! - column statistics: entropy, distinct counts, null counts, value
//!   probability distributions (for KL-divergence rewards), numeric summaries
//! - CSV ingestion with type and semantic-role inference
//!
//! ```
//! use atena_dataframe::{AggFunc, AttrRole, CmpOp, DataFrame, Predicate};
//!
//! let df = DataFrame::builder()
//!     .str("airline", AttrRole::Categorical, vec![Some("AA"), Some("DL"), Some("AA")])
//!     .int("delay", AttrRole::Numeric, vec![Some(10), Some(25), Some(40)])
//!     .build()
//!     .unwrap();
//!
//! let late = df.filter(&Predicate::new("delay", CmpOp::Gt, 15i64)).unwrap();
//! assert_eq!(late.n_rows(), 2);
//!
//! let by_airline = df.group_aggregate(&["airline"], AggFunc::Avg, "delay").unwrap();
//! assert_eq!(by_airline.n_rows(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod column;
mod csv;
mod csv_stream;
mod error;
mod filter;
mod frame;
mod groupby;
mod hashing;
mod join;
mod memo;
mod schema;
mod stats;
mod value;

pub use column::{Column, ColumnIter, StrColumn};
pub use csv_stream::{parse_csv_bytes, CsvLimits, CsvStreamError, CsvStreamParser};
pub use error::{DataFrameError, Result};
pub use filter::{CmpOp, Predicate};
pub use frame::{DataFrame, DataFrameBuilder};
pub use groupby::{AggFunc, Groups};
pub use hashing::StableHasher;
pub use join::JoinKind;
pub use schema::{AttrRole, Field, Schema};
pub use stats::{entropy_of_counts, ColumnStats, NumericSummary, ValueDistribution};
pub use value::{DType, Value, ValueKey, ValueRef};
