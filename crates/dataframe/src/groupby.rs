//! Group-by and aggregation: the `GROUP(g_attr, agg_func, agg_attr)`
//! operation of the EDA action space.
//!
//! The paper's environment groups by a *single* attribute per operation;
//! multi-attribute groupings arise from stacking consecutive GROUP
//! operations, so the engine here supports arbitrary key lists.

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::schema::{AttrRole, Field};
use crate::value::{DType, Value, ValueKey};
use serde::{Deserialize, Serialize};
// atena-lint: allow(hash-order) — HashMap below is a lookup-only group index
use std::collections::HashMap;
use std::fmt;

/// Aggregation function applied to grouped rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// Number of non-null values (COUNT).
    Count,
    /// Sum of numeric values.
    Sum,
    /// Arithmetic mean of numeric values.
    Avg,
    /// Minimum value (numeric or string).
    Min,
    /// Maximum value (numeric or string).
    Max,
    /// Median of numeric values (not part of the EDA action space; see
    /// [`AggFunc::ALL`]).
    Median,
    /// Population standard deviation of numeric values (not part of the
    /// EDA action space).
    Std,
}

impl AggFunc {
    /// The canonical *action-space* order — the aggregate functions the
    /// paper's environment exposes to the agent (§4.1). `Median` and `Std`
    /// are available through the dataframe API but are deliberately outside
    /// the action space, so that results stay comparable with the paper's.
    pub const ALL: [AggFunc; 5] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
    ];

    /// Uppercase name used in notebook captions (e.g. `AVG`).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Median => "MEDIAN",
            AggFunc::Std => "STD",
        }
    }

    /// Whether the function is defined for a column of type `dtype`.
    pub fn supports(self, dtype: DType) -> bool {
        match self {
            AggFunc::Count => true,
            AggFunc::Sum | AggFunc::Avg | AggFunc::Median | AggFunc::Std => dtype.is_numeric(),
            AggFunc::Min | AggFunc::Max => dtype.is_numeric() || dtype == DType::Str,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of partitioning a frame by one or more key columns.
///
/// Groups are ordered by first appearance, making results deterministic for
/// a given input frame.
#[derive(Debug, Clone)]
pub struct Groups {
    keys: Vec<String>,
    groups: Vec<(Vec<ValueKey>, Vec<usize>)>,
    n_source_rows: usize,
}

impl Groups {
    /// Key column names.
    pub fn key_names(&self) -> &[String] {
        &self.keys
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of rows in the grouped source frame.
    pub fn n_source_rows(&self) -> usize {
        self.n_source_rows
    }

    /// Sizes of each group, in group order.
    pub fn group_sizes(&self) -> Vec<usize> {
        self.groups.iter().map(|(_, rows)| rows.len()).collect()
    }

    /// Iterate over `(key-tuple, row-indices)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[ValueKey], &[usize])> {
        self.groups
            .iter()
            .map(|(k, r)| (k.as_slice(), r.as_slice()))
    }
}

impl DataFrame {
    /// Partition rows by the distinct value combinations of `keys`.
    ///
    /// Null key values form their own group, mirroring `dropna=False`
    /// group-by semantics: an EDA user wants to *see* the null bucket.
    pub fn group_by(&self, keys: &[&str]) -> Result<Groups> {
        if keys.is_empty() {
            return Err(DataFrameError::InvalidAggregate(
                "group_by requires at least one key".into(),
            ));
        }
        let mut key_cols = Vec::with_capacity(keys.len());
        for &k in keys {
            key_cols.push(self.column(k)?);
        }
        let mut order: Vec<Vec<ValueKey>> = Vec::new();
        // Group emission order is first-appearance order, tracked in `order`;
        // the map is only ever probed by exact key, never iterated.
        // atena-lint: allow(hash-order) — lookup-only group index
        let mut index: HashMap<Vec<ValueKey>, usize> = HashMap::new();
        let mut rows_per_group: Vec<Vec<usize>> = Vec::new();
        for row in 0..self.n_rows() {
            let key: Vec<ValueKey> = key_cols.iter().map(|c| c.get(row).key()).collect();
            match index.get(&key) {
                Some(&g) => rows_per_group[g].push(row),
                None => {
                    let g = order.len();
                    index.insert(key.clone(), g);
                    order.push(key);
                    rows_per_group.push(vec![row]);
                }
            }
        }
        let groups = order.into_iter().zip(rows_per_group).collect();
        Ok(Groups {
            keys: keys.iter().map(|s| s.to_string()).collect(),
            groups,
            n_source_rows: self.n_rows(),
        })
    }

    /// Group by `keys` and aggregate `agg_attr` with `func`, producing a new
    /// frame with one row per group: the key columns, a `count` column, and
    /// the aggregate column named `{FUNC}({attr})`.
    pub fn group_aggregate(
        &self,
        keys: &[&str],
        func: AggFunc,
        agg_attr: &str,
    ) -> Result<DataFrame> {
        self.group_aggregate_multi(keys, &[(func, agg_attr)])
    }

    /// Group by `keys` and compute several aggregates at once — used by the
    /// EDA environment when consecutive GROUP operations stack. Duplicate
    /// `(func, attr)` pairs produce a single column.
    pub fn group_aggregate_multi(
        &self,
        keys: &[&str],
        aggs: &[(AggFunc, &str)],
    ) -> Result<DataFrame> {
        let groups = self.group_by(keys)?;
        let mut seen: Vec<(AggFunc, &str)> = Vec::new();
        for &(func, attr) in aggs {
            let agg_col = self.column(attr)?;
            if !func.supports(agg_col.dtype()) {
                return Err(DataFrameError::IncompatibleOp {
                    column: attr.to_string(),
                    op: func.name().to_string(),
                    dtype: agg_col.dtype().name(),
                });
            }
            if !seen.contains(&(func, attr)) {
                seen.push((func, attr));
            }
        }

        // Key output columns.
        let mut key_builders: Vec<Column> = keys
            .iter()
            .map(|&k| Column::empty(self.column(k).expect("validated").dtype()))
            .collect();
        let mut sizes: Vec<Option<i64>> = Vec::with_capacity(groups.n_groups());
        let mut agg_values: Vec<Vec<Value>> =
            vec![Vec::with_capacity(groups.n_groups()); seen.len()];

        for (key, rows) in groups.iter() {
            for (builder, kv) in key_builders.iter_mut().zip(key) {
                builder
                    .push(kv.to_value())
                    .expect("key type matches source column");
            }
            sizes.push(Some(rows.len() as i64));
            for (slot, &(func, attr)) in agg_values.iter_mut().zip(&seen) {
                let col = self.column(attr).expect("validated");
                slot.push(aggregate_rows(col, rows, func));
            }
        }

        let mut pairs: Vec<(Field, Column)> = Vec::with_capacity(keys.len() + 1 + seen.len());
        for (i, &k) in keys.iter().enumerate() {
            let src = self.schema().field(k)?;
            pairs.push((
                src.clone(),
                std::mem::replace(&mut key_builders[i], Column::empty(DType::Int)),
            ));
        }
        pairs.push((
            Field::new("count", DType::Int, AttrRole::Numeric),
            Column::from_ints(sizes),
        ));
        for (values, &(func, attr)) in agg_values.into_iter().zip(&seen) {
            let agg_name = format!("{}({})", func.name(), attr);
            let agg_dtype = aggregate_dtype(func, self.column(attr).expect("validated").dtype());
            let mut out_col = Column::empty(agg_dtype);
            for v in values {
                out_col
                    .push(v)
                    .expect("aggregate value type matches output dtype");
            }
            pairs.push((Field::new(agg_name, agg_dtype, AttrRole::Numeric), out_col));
        }
        DataFrame::new(pairs)
    }
}

/// Output physical type of an aggregate.
fn aggregate_dtype(func: AggFunc, input: DType) -> DType {
    match func {
        AggFunc::Count => DType::Int,
        AggFunc::Avg | AggFunc::Median | AggFunc::Std => DType::Float,
        AggFunc::Sum => {
            if input == DType::Int {
                DType::Int
            } else {
                DType::Float
            }
        }
        AggFunc::Min | AggFunc::Max => input,
    }
}

/// Compute one aggregate over the given source rows.
fn aggregate_rows(col: &Column, rows: &[usize], func: AggFunc) -> Value {
    match func {
        AggFunc::Count => {
            let n = rows.iter().filter(|&&r| !col.get(r).is_null()).count();
            Value::Int(n as i64)
        }
        AggFunc::Sum => match col {
            Column::Int(v) => Value::Int(rows.iter().filter_map(|&r| v[r]).sum()),
            _ => {
                let s: f64 = rows.iter().filter_map(|&r| col.get(r).as_f64()).sum();
                Value::Float(s)
            }
        },
        AggFunc::Avg => {
            let vals: Vec<f64> = rows.iter().filter_map(|&r| col.get(r).as_f64()).collect();
            if vals.is_empty() {
                Value::Null
            } else {
                Value::Float(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        }
        AggFunc::Median => {
            let mut vals: Vec<f64> = rows.iter().filter_map(|&r| col.get(r).as_f64()).collect();
            if vals.is_empty() {
                return Value::Null;
            }
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let n = vals.len();
            let median = if n % 2 == 1 {
                vals[n / 2]
            } else {
                (vals[n / 2 - 1] + vals[n / 2]) / 2.0
            };
            Value::Float(median)
        }
        AggFunc::Std => {
            let vals: Vec<f64> = rows.iter().filter_map(|&r| col.get(r).as_f64()).collect();
            if vals.is_empty() {
                return Value::Null;
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            Value::Float(var.sqrt())
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<ValueKey> = None;
            for &r in rows {
                let v = col.get(r);
                if v.is_null() {
                    continue;
                }
                let k = v.key();
                best = Some(match best {
                    None => k,
                    Some(b) => {
                        let better = if func == AggFunc::Min { k < b } else { k > b };
                        if better {
                            k
                        } else {
                            b
                        }
                    }
                });
            }
            best.map_or(Value::Null, |k| k.to_value())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueRef;

    fn df() -> DataFrame {
        DataFrame::builder()
            .str(
                "airline",
                AttrRole::Categorical,
                vec![
                    Some("AA"),
                    Some("DL"),
                    Some("AA"),
                    Some("DL"),
                    None,
                    Some("AA"),
                ],
            )
            .str(
                "day",
                AttrRole::Categorical,
                vec![
                    Some("Mon"),
                    Some("Mon"),
                    Some("Tue"),
                    Some("Tue"),
                    Some("Mon"),
                    Some("Mon"),
                ],
            )
            .int(
                "delay",
                AttrRole::Numeric,
                vec![Some(10), Some(20), Some(30), None, Some(50), Some(14)],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn groups_ordered_by_first_appearance() {
        let g = df().group_by(&["airline"]).unwrap();
        assert_eq!(g.n_groups(), 3); // AA, DL, null
        let keys: Vec<_> = g.iter().map(|(k, _)| k[0].clone()).collect();
        assert_eq!(keys[0], ValueKey::Str("AA".into()));
        assert_eq!(keys[1], ValueKey::Str("DL".into()));
        assert_eq!(keys[2], ValueKey::Null);
        assert_eq!(g.group_sizes(), vec![3, 2, 1]);
        assert_eq!(g.n_source_rows(), 6);
    }

    #[test]
    fn multi_key_grouping() {
        let g = df().group_by(&["airline", "day"]).unwrap();
        assert_eq!(g.n_groups(), 5); // AA/Mon, DL/Mon, AA/Tue, DL/Tue, null/Mon
    }

    #[test]
    fn avg_aggregate_skips_nulls() {
        let out = df()
            .group_aggregate(&["airline"], AggFunc::Avg, "delay")
            .unwrap();
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.schema().names(), vec!["airline", "count", "AVG(delay)"]);
        // AA: (10 + 30 + 14) / 3 = 18
        assert_eq!(out.value(0, "AVG(delay)").unwrap(), ValueRef::Float(18.0));
        // DL: only 20 (null dropped)
        assert_eq!(out.value(1, "AVG(delay)").unwrap(), ValueRef::Float(20.0));
        // count column is group size (including null-agg rows)
        assert_eq!(out.value(1, "count").unwrap(), ValueRef::Int(2));
    }

    #[test]
    fn count_aggregate_counts_non_null() {
        let out = df()
            .group_aggregate(&["airline"], AggFunc::Count, "delay")
            .unwrap();
        assert_eq!(out.value(1, "COUNT(delay)").unwrap(), ValueRef::Int(1)); // DL
    }

    #[test]
    fn sum_int_stays_int() {
        let out = df()
            .group_aggregate(&["day"], AggFunc::Sum, "delay")
            .unwrap();
        assert_eq!(out.value(0, "SUM(delay)").unwrap(), ValueRef::Int(94)); // Mon: 10+20+50+14
        assert_eq!(out.value(1, "SUM(delay)").unwrap(), ValueRef::Int(30)); // Tue: 30 (null dropped)
    }

    #[test]
    fn min_max_on_strings() {
        let out = df()
            .group_aggregate(&["day"], AggFunc::Max, "airline")
            .unwrap();
        assert_eq!(out.value(0, "MAX(airline)").unwrap(), ValueRef::Str("DL"));
        let out = df()
            .group_aggregate(&["day"], AggFunc::Min, "airline")
            .unwrap();
        assert_eq!(out.value(0, "MIN(airline)").unwrap(), ValueRef::Str("AA"));
    }

    #[test]
    fn median_and_std() {
        let d = DataFrame::builder()
            .str("k", AttrRole::Categorical, vec![Some("a"); 5])
            .int(
                "v",
                AttrRole::Numeric,
                vec![Some(1), Some(3), Some(100), Some(2), None],
            )
            .build()
            .unwrap();
        let out = d.group_aggregate(&["k"], AggFunc::Median, "v").unwrap();
        // Median of {1, 2, 3, 100} = 2.5 (robust against the outlier).
        assert_eq!(out.value(0, "MEDIAN(v)").unwrap(), ValueRef::Float(2.5));
        let out = d.group_aggregate(&["k"], AggFunc::Std, "v").unwrap();
        let std = out.value(0, "STD(v)").unwrap().as_f64().unwrap();
        assert!((std - 42.44113570582201).abs() < 1e-6, "std {std}");
        // Not part of the action space.
        assert!(!AggFunc::ALL.contains(&AggFunc::Median));
        assert!(!AggFunc::ALL.contains(&AggFunc::Std));
        // Type gating.
        assert!(!AggFunc::Median.supports(DType::Str));
    }

    #[test]
    fn sum_on_string_rejected() {
        let err = df()
            .group_aggregate(&["day"], AggFunc::Sum, "airline")
            .unwrap_err();
        assert!(matches!(err, DataFrameError::IncompatibleOp { .. }));
    }

    #[test]
    fn empty_keys_rejected() {
        let err = df().group_by(&[]).unwrap_err();
        assert!(matches!(err, DataFrameError::InvalidAggregate(_)));
    }

    #[test]
    fn multi_aggregate_dedups_and_stacks() {
        let out = df()
            .group_aggregate_multi(
                &["airline"],
                &[
                    (AggFunc::Avg, "delay"),
                    (AggFunc::Max, "delay"),
                    (AggFunc::Avg, "delay"),
                ],
            )
            .unwrap();
        assert_eq!(
            out.schema().names(),
            vec!["airline", "count", "AVG(delay)", "MAX(delay)"]
        );
        assert_eq!(out.value(0, "MAX(delay)").unwrap(), ValueRef::Int(30));
    }

    #[test]
    fn all_null_group_aggregate_is_null() {
        let d = DataFrame::builder()
            .str("k", AttrRole::Categorical, vec![Some("a"), Some("a")])
            .float("v", AttrRole::Numeric, vec![None, None])
            .build()
            .unwrap();
        let out = d.group_aggregate(&["k"], AggFunc::Avg, "v").unwrap();
        assert!(out.value(0, "AVG(v)").unwrap().is_null());
        let out = d.group_aggregate(&["k"], AggFunc::Max, "v").unwrap();
        assert!(out.value(0, "MAX(v)").unwrap().is_null());
    }
}
