//! Stable content hashing for frames and scalar values.
//!
//! The display cache (DESIGN.md §4i) keys entries by a hash of the dataset
//! content plus the exact operation path. `std::collections::hash_map::DefaultHasher`
//! is explicitly not guaranteed stable across releases, so cache keys use
//! this hand-rolled FNV-1a/splitmix construction instead: the same bytes
//! hash to the same 64-bit key on every platform, toolchain, and run.

use crate::column::Column;
use crate::frame::DataFrame;
use crate::value::{Value, ValueRef};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic, platform-independent 64-bit hasher (FNV-1a over bytes,
/// finished with a splitmix64-style avalanche).
///
/// Unlike [`std::hash::Hasher`] implementations, the output is part of this
/// crate's compatibility contract: it feeds content-addressed cache keys.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb one byte (used as a variant/discriminant tag).
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `usize` (widened to `u64` so 32/64-bit targets agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb a string: length prefix plus UTF-8 bytes, so `("ab","c")` and
    /// `("a","bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Absorb a scalar value: a variant tag followed by a canonical payload
    /// (floats via the same bit canonicalization as [`crate::ValueKey`], so
    /// `-0.0` and `0.0` — and all NaNs — hash alike, matching key equality).
    pub fn write_value(&mut self, v: ValueRef<'_>) {
        match v {
            ValueRef::Null => self.write_u8(0),
            ValueRef::Bool(b) => {
                self.write_u8(1);
                self.write_u8(u8::from(b));
            }
            ValueRef::Int(i) => {
                self.write_u8(2);
                self.write_u64(i as u64);
            }
            ValueRef::Float(f) => {
                self.write_u8(3);
                let bits = if f.is_nan() {
                    f64::NAN.to_bits()
                } else if f == 0.0 {
                    0.0f64.to_bits()
                } else {
                    f.to_bits()
                };
                self.write_u64(bits);
            }
            ValueRef::Str(s) => {
                self.write_u8(4);
                self.write_str(s);
            }
        }
    }

    /// Absorb an owned scalar value.
    pub fn write_owned_value(&mut self, v: &Value) {
        self.write_value(v.as_ref());
    }

    /// Final avalanche (splitmix64 finalizer) so that short inputs still
    /// spread over all 64 bits — cache shards select on the low bits.
    pub fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn hash_column(h: &mut StableHasher, col: &Column) {
    h.write_usize(col.len());
    for i in 0..col.len() {
        h.write_value(col.get(i));
    }
}

impl DataFrame {
    /// A stable 64-bit fingerprint of the frame's full content: schema
    /// (names, dtypes, roles) and every cell value, row by row.
    ///
    /// Two frames with equal content always fingerprint equally regardless
    /// of how they were built (dictionary encoding order, filter history).
    /// The value is memoized per frame and shared across clones, so repeated
    /// calls are O(1).
    pub fn fingerprint(&self) -> u64 {
        *self.memo().fingerprint.get_or_init(|| {
            let mut h = StableHasher::new();
            h.write_usize(self.n_rows());
            h.write_usize(self.n_cols());
            for (i, field) in self.schema().fields().iter().enumerate() {
                h.write_str(&field.name);
                h.write_u8(field.dtype as u8);
                h.write_u8(field.role as u8);
                hash_column(&mut h, self.column_at(i));
            }
            h.finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{CmpOp, Predicate};
    use crate::schema::AttrRole;

    fn sample() -> DataFrame {
        DataFrame::builder()
            .str(
                "k",
                AttrRole::Categorical,
                vec![Some("b"), Some("a"), Some("b"), None],
            )
            .float(
                "x",
                AttrRole::Numeric,
                vec![Some(1.5), Some(-0.0), Some(f64::NAN), Some(2.0)],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn fingerprint_is_stable_across_clones_and_calls() {
        let df = sample();
        let f1 = df.fingerprint();
        assert_eq!(df.fingerprint(), f1);
        assert_eq!(df.clone().fingerprint(), f1);
    }

    #[test]
    fn fingerprint_ignores_dictionary_encoding_order() {
        // Same content, different row construction order after a sort: the
        // sorted frames have identical rows, so identical fingerprints, even
        // though their string dictionaries were built in different orders.
        let a = sample().sort_by("k", false).unwrap();
        let b = sample()
            .sort_by("k", true)
            .unwrap()
            .sort_by("k", false)
            .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_content() {
        let df = sample();
        let filtered = df.filter(&Predicate::new("k", CmpOp::Eq, "b")).unwrap();
        assert_ne!(df.fingerprint(), filtered.fingerprint());
        // Canonical float handling: -0.0 hashes like 0.0.
        let mut h1 = StableHasher::new();
        h1.write_value(ValueRef::Float(-0.0));
        let mut h2 = StableHasher::new();
        h2.write_value(ValueRef::Float(0.0));
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn hasher_separates_string_boundaries() {
        let mut h1 = StableHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = StableHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }
}
