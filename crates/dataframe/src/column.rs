//! Typed columnar storage.
//!
//! String columns are dictionary-encoded: each distinct string is stored once
//! in a dictionary and rows hold `u32` codes. This keeps group-by, entropy
//! and value-frequency computations cheap — the operations the EDA
//! environment performs on every step.

use crate::error::{DataFrameError, Result};
use crate::value::{DType, Value, ValueKey, ValueRef};
use serde::{Deserialize, Serialize};
// atena-lint: allow(hash-order) — HashMap below is the lookup-only dictionary index
use std::collections::{BTreeMap, HashMap};

/// Dictionary-encoded string column.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StrColumn {
    codes: Vec<Option<u32>>,
    dict: Vec<String>,
    #[serde(skip)]
    // atena-lint: allow(hash-order) — string→code lookups only; dictionary order lives in `dict`
    index: HashMap<String, u32>,
}

impl StrColumn {
    /// Create an empty string column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Append a string, interning it in the dictionary.
    pub fn push(&mut self, value: Option<&str>) {
        match value {
            None => self.codes.push(None),
            Some(s) => {
                let code = self.intern(s);
                self.codes.push(Some(code));
            }
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = u32::try_from(self.dict.len()).expect("dictionary overflow");
        self.dict.push(s.to_string());
        self.index.insert(s.to_string(), code);
        code
    }

    /// Value at row `i`, or `None` for null.
    pub fn get(&self, i: usize) -> Option<&str> {
        self.codes[i].map(|c| self.dict[c as usize].as_str())
    }

    /// Dictionary code at row `i`.
    pub fn code(&self, i: usize) -> Option<u32> {
        self.codes[i]
    }

    /// The dictionary of distinct strings seen by this column.
    pub fn dictionary(&self) -> &[String] {
        &self.dict
    }

    /// Rebuild the interning index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .dict
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
    }

    /// Gather the given rows into a new column (dictionary is re-compacted).
    pub fn take(&self, rows: &[usize]) -> StrColumn {
        let mut out = StrColumn::new();
        out.codes.reserve(rows.len());
        // Remap old codes to new compacted codes lazily. Compacted code
        // assignment follows `rows` order via the entry API, never map order.
        // atena-lint: allow(hash-order) — lookup-only remap table
        let mut remap: HashMap<u32, u32> = HashMap::new();
        for &r in rows {
            match self.codes[r] {
                None => out.codes.push(None),
                Some(old) => {
                    let new = *remap.entry(old).or_insert_with(|| {
                        let code = out.dict.len() as u32;
                        let s = self.dict[old as usize].clone();
                        out.index.insert(s.clone(), code);
                        out.dict.push(s);
                        code
                    });
                    out.codes.push(Some(new));
                }
            }
        }
        out
    }
}

/// A typed column of nullable values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<Option<i64>>),
    /// 64-bit floats.
    Float(Vec<Option<f64>>),
    /// Booleans.
    Bool(Vec<Option<bool>>),
    /// Dictionary-encoded strings.
    Str(StrColumn),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn empty(dtype: DType) -> Self {
        match dtype {
            DType::Int => Column::Int(Vec::new()),
            DType::Float => Column::Float(Vec::new()),
            DType::Bool => Column::Bool(Vec::new()),
            DType::Str => Column::Str(StrColumn::new()),
        }
    }

    /// Build an integer column from values.
    pub fn from_ints<I: IntoIterator<Item = Option<i64>>>(values: I) -> Self {
        Column::Int(values.into_iter().collect())
    }

    /// Build a float column from values.
    pub fn from_floats<I: IntoIterator<Item = Option<f64>>>(values: I) -> Self {
        Column::Float(values.into_iter().collect())
    }

    /// Build a boolean column from values.
    pub fn from_bools<I: IntoIterator<Item = Option<bool>>>(values: I) -> Self {
        Column::Bool(values.into_iter().collect())
    }

    /// Build a string column from values.
    pub fn from_strs<'a, I: IntoIterator<Item = Option<&'a str>>>(values: I) -> Self {
        let mut col = StrColumn::new();
        for v in values {
            col.push(v);
        }
        Column::Str(col)
    }

    /// Data type of the column.
    pub fn dtype(&self) -> DType {
        match self {
            Column::Int(_) => DType::Int,
            Column::Float(_) => DType::Float,
            Column::Bool(_) => DType::Bool,
            Column::Str(_) => DType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident heap bytes of the column payload. Used by the
    /// dataset registry for memory-budget accounting; deterministic for a
    /// given column content, not an allocator-exact measurement.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * std::mem::size_of::<Option<i64>>(),
            Column::Float(v) => v.len() * std::mem::size_of::<Option<f64>>(),
            Column::Bool(v) => v.len() * std::mem::size_of::<Option<bool>>(),
            Column::Str(v) => {
                let dict: usize = v.dictionary().iter().map(|s| s.len()).sum();
                dict + v.len() * std::mem::size_of::<Option<u32>>()
            }
        }
    }

    /// Borrowed value at row `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`; use [`Column::try_get`] on untrusted input.
    pub fn get(&self, i: usize) -> ValueRef<'_> {
        match self {
            Column::Int(v) => v[i].map_or(ValueRef::Null, ValueRef::Int),
            Column::Float(v) => v[i].map_or(ValueRef::Null, ValueRef::Float),
            Column::Bool(v) => v[i].map_or(ValueRef::Null, ValueRef::Bool),
            Column::Str(v) => v.get(i).map_or(ValueRef::Null, ValueRef::Str),
        }
    }

    /// Bounds-checked value access.
    pub fn try_get(&self, i: usize) -> Result<ValueRef<'_>> {
        if i >= self.len() {
            return Err(DataFrameError::RowOutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        Ok(self.get(i))
    }

    /// Append a value, checking type compatibility (nulls fit any column).
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, &value) {
            (Column::Int(v), Value::Int(x)) => v.push(Some(*x)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(x)) => v.push(Some(*x)),
            // Ints promote losslessly into float columns.
            (Column::Float(v), Value::Int(x)) => v.push(Some(*x as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(x)) => v.push(Some(*x)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (Column::Str(v), Value::Str(x)) => v.push(Some(x)),
            (Column::Str(v), Value::Null) => v.push(None),
            (col, value) => {
                return Err(DataFrameError::TypeMismatch {
                    expected: col.dtype().name(),
                    actual: value.type_name(),
                })
            }
        }
        Ok(())
    }

    /// Number of null entries.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Str(v) => v.codes.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Gather the given row indices into a new column.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn take(&self, rows: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(rows.iter().map(|&r| v[r]).collect()),
            Column::Float(v) => Column::Float(rows.iter().map(|&r| v[r]).collect()),
            Column::Bool(v) => Column::Bool(rows.iter().map(|&r| v[r]).collect()),
            Column::Str(v) => Column::Str(v.take(rows)),
        }
    }

    /// Iterate over borrowed values.
    pub fn iter(&self) -> ColumnIter<'_> {
        ColumnIter {
            column: self,
            index: 0,
        }
    }

    /// Frequency of each distinct non-null value.
    ///
    /// For string columns this runs over dictionary codes and is O(n).
    pub fn value_counts(&self) -> BTreeMap<ValueKey, usize> {
        match self {
            Column::Str(v) => {
                let mut code_counts = vec![0usize; v.dict.len()];
                for code in v.codes.iter().flatten() {
                    code_counts[*code as usize] += 1;
                }
                code_counts
                    .into_iter()
                    .enumerate()
                    .filter(|&(_, c)| c > 0)
                    .map(|(code, c)| (ValueKey::Str(v.dict[code].clone()), c))
                    .collect()
            }
            _ => {
                let mut counts = BTreeMap::new();
                for i in 0..self.len() {
                    let v = self.get(i);
                    if !v.is_null() {
                        *counts.entry(v.key()).or_insert(0) += 1;
                    }
                }
                counts
            }
        }
    }

    /// Number of distinct non-null values.
    pub fn n_distinct(&self) -> usize {
        self.value_counts().len()
    }
}

/// Iterator over a column's values.
pub struct ColumnIter<'a> {
    column: &'a Column,
    index: usize,
}

impl<'a> Iterator for ColumnIter<'a> {
    type Item = ValueRef<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.index >= self.column.len() {
            return None;
        }
        let v = self.column.get(self.index);
        self.index += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.column.len() - self.index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ColumnIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_column_interns() {
        let col = Column::from_strs(vec![Some("a"), Some("b"), Some("a"), None]);
        let Column::Str(inner) = &col else {
            panic!("expected str column")
        };
        assert_eq!(inner.dictionary().len(), 2);
        assert_eq!(col.len(), 4);
        assert_eq!(col.get(0), ValueRef::Str("a"));
        assert_eq!(col.get(3), ValueRef::Null);
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.n_distinct(), 2);
    }

    #[test]
    fn take_compacts_dictionary() {
        let col = Column::from_strs(vec![Some("a"), Some("b"), Some("c"), Some("b")]);
        let taken = col.take(&[1, 3]);
        let Column::Str(inner) = &taken else {
            panic!("expected str column")
        };
        assert_eq!(inner.dictionary(), &["b".to_string()]);
        assert_eq!(taken.get(0), ValueRef::Str("b"));
        assert_eq!(taken.get(1), ValueRef::Str("b"));
    }

    #[test]
    fn int_column_basics() {
        let col = Column::from_ints(vec![Some(1), None, Some(3)]);
        assert_eq!(col.dtype(), DType::Int);
        assert_eq!(col.len(), 3);
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.get(2), ValueRef::Int(3));
        let taken = col.take(&[2, 0]);
        assert_eq!(taken.get(0), ValueRef::Int(3));
        assert_eq!(taken.get(1), ValueRef::Int(1));
    }

    #[test]
    fn push_type_checked() {
        let mut col = Column::empty(DType::Int);
        col.push(Value::Int(1)).unwrap();
        col.push(Value::Null).unwrap();
        let err = col.push(Value::Str("x".into())).unwrap_err();
        assert!(matches!(err, DataFrameError::TypeMismatch { .. }));
        assert_eq!(col.len(), 2);
    }

    #[test]
    fn int_promotes_into_float_column() {
        let mut col = Column::empty(DType::Float);
        col.push(Value::Int(2)).unwrap();
        assert_eq!(col.get(0), ValueRef::Float(2.0));
    }

    #[test]
    fn value_counts_ignore_nulls() {
        let col = Column::from_ints(vec![Some(1), Some(1), Some(2), None]);
        let counts = col.value_counts();
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[&ValueKey::Int(1)], 2);
        assert_eq!(counts[&ValueKey::Int(2)], 1);
    }

    #[test]
    fn try_get_bounds() {
        let col = Column::from_bools(vec![Some(true)]);
        assert!(col.try_get(0).is_ok());
        assert!(matches!(
            col.try_get(5),
            Err(DataFrameError::RowOutOfBounds { index: 5, len: 1 })
        ));
    }

    #[test]
    fn iterator_yields_all() {
        let col = Column::from_floats(vec![Some(1.0), None, Some(2.0)]);
        let vals: Vec<_> = col.iter().collect();
        assert_eq!(vals.len(), 3);
        assert!(vals[1].is_null());
    }
}
