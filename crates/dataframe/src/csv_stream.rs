//! Streaming CSV ingest with bounded memory and one-pass schema inference.
//!
//! [`CsvStreamParser`] accepts the input as arbitrary byte chunks (for
//! example straight off a socket), so quoted fields may span chunk
//! boundaries — including multi-byte UTF-8 sequences and embedded
//! newlines, which the line-oriented [`DataFrame::from_csv_str`] entry
//! point historically could not represent. Hard caps on total bytes,
//! rows and columns are enforced *during* the scan so an oversized or
//! adversarial upload fails before it can balloon resident memory.
//!
//! The grammar is byte-for-byte compatible with the original
//! line-oriented reader: RFC-4180-style quoting with doubled-quote
//! escapes, blank (whitespace-only) physical lines skipped anywhere,
//! a lone `\r` stripped only when it immediately precedes `\n`, empty
//! cells decoded as nulls, and error messages carrying 1-based
//! *physical* line numbers.

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::schema::{AttrRole, Field};
use crate::value::DType;
use std::fmt;

/// Hard caps applied while streaming a CSV body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvLimits {
    /// Maximum raw input bytes accepted (`usize::MAX` disables the cap).
    pub max_bytes: usize,
    /// Maximum number of data rows (header excluded).
    pub max_rows: usize,
    /// Maximum number of columns.
    pub max_cols: usize,
}

impl CsvLimits {
    /// No caps — used by [`DataFrame::from_csv_str`] for trusted input.
    pub fn unlimited() -> Self {
        CsvLimits {
            max_bytes: usize::MAX,
            max_rows: usize::MAX,
            max_cols: usize::MAX,
        }
    }
}

impl Default for CsvLimits {
    fn default() -> Self {
        CsvLimits::unlimited()
    }
}

/// Errors produced while streaming CSV input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvStreamError {
    /// Malformed input (bad quoting, ragged row, invalid UTF-8, …).
    Csv {
        /// 1-based physical line number where the problem was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The input exceeded [`CsvLimits::max_bytes`].
    TooManyBytes {
        /// The configured cap.
        limit: usize,
    },
    /// The input exceeded [`CsvLimits::max_rows`].
    TooManyRows {
        /// The configured cap.
        limit: usize,
    },
    /// The header declared more columns than [`CsvLimits::max_cols`].
    TooManyColumns {
        /// Columns found in the header.
        found: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl fmt::Display for CsvStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvStreamError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            CsvStreamError::TooManyBytes { limit } => {
                write!(f, "input exceeds byte limit of {limit}")
            }
            CsvStreamError::TooManyRows { limit } => {
                write!(f, "input exceeds row limit of {limit}")
            }
            CsvStreamError::TooManyColumns { found, limit } => {
                write!(f, "header has {found} columns, limit is {limit}")
            }
        }
    }
}

impl std::error::Error for CsvStreamError {}

impl From<CsvStreamError> for DataFrameError {
    fn from(e: CsvStreamError) -> Self {
        match e {
            CsvStreamError::Csv { line, message } => DataFrameError::Csv { line, message },
            other => DataFrameError::Csv {
                line: 0,
                message: other.to_string(),
            },
        }
    }
}

/// Per-column dtype-narrowing flags, updated as each cell arrives so
/// the final inference is a constant-time decision per column.
#[derive(Debug, Clone, Copy)]
struct TypeFlags {
    all_int: bool,
    all_float: bool,
    all_bool: bool,
    saw_value: bool,
}

impl TypeFlags {
    fn new() -> Self {
        TypeFlags {
            all_int: true,
            all_float: true,
            all_bool: true,
            saw_value: false,
        }
    }

    fn observe(&mut self, cell: &str) {
        if cell.is_empty() {
            return;
        }
        self.saw_value = true;
        if self.all_int && cell.parse::<i64>().is_err() {
            self.all_int = false;
        }
        if self.all_float && cell.parse::<f64>().is_err() {
            self.all_float = false;
        }
        if self.all_bool && !matches!(cell, "true" | "false" | "True" | "False") {
            self.all_bool = false;
        }
    }

    fn dtype(&self) -> DType {
        if !self.saw_value {
            DType::Str
        } else if self.all_bool {
            DType::Bool
        } else if self.all_int {
            DType::Int
        } else if self.all_float {
            DType::Float
        } else {
            DType::Str
        }
    }
}

/// Quote-tracking state of the byte scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanState {
    /// Outside any quoted section.
    Unquoted,
    /// Inside a quoted section.
    InQuotes,
    /// Saw `"` while quoted; the next byte decides escape vs. close.
    AfterQuote,
}

/// Incremental CSV parser: feed bytes with [`push`](CsvStreamParser::push),
/// then call [`finish`](CsvStreamParser::finish) to obtain the frame.
#[derive(Debug)]
pub struct CsvStreamParser {
    limits: CsvLimits,
    state: ScanState,
    /// Raw bytes of the field currently being scanned (UTF-8 is validated
    /// once the field is complete, so multi-byte sequences may split
    /// across `push` chunks).
    field: Vec<u8>,
    /// Completed fields of the record currently being scanned.
    record: Vec<String>,
    /// Previous raw input byte (for the `\r\n` → `\n` normalization).
    prev_byte: u8,
    /// True if the current record contained a quote character — such
    /// records are never treated as skippable blank lines.
    saw_quote: bool,
    /// 1-based physical line currently being scanned.
    line: usize,
    /// Physical line on which the current record started.
    record_line: usize,
    /// Raw bytes consumed so far.
    bytes_seen: usize,
    /// Header names, once the first non-blank record completes.
    names: Option<Vec<String>>,
    /// Column-major cell storage for data rows.
    cols: Vec<Vec<String>>,
    flags: Vec<TypeFlags>,
    n_rows: usize,
}

impl CsvStreamParser {
    /// Create a parser enforcing the given limits.
    pub fn new(limits: CsvLimits) -> Self {
        CsvStreamParser {
            limits,
            state: ScanState::Unquoted,
            field: Vec::new(),
            record: Vec::new(),
            prev_byte: 0,
            saw_quote: false,
            line: 1,
            record_line: 1,
            bytes_seen: 0,
            names: None,
            cols: Vec::new(),
            flags: Vec::new(),
            n_rows: 0,
        }
    }

    /// Raw bytes consumed so far.
    pub fn bytes_seen(&self) -> usize {
        self.bytes_seen
    }

    /// Data rows accepted so far (header excluded).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Feed a chunk of raw bytes.
    pub fn push(&mut self, chunk: &[u8]) -> std::result::Result<(), CsvStreamError> {
        if self
            .bytes_seen
            .checked_add(chunk.len())
            .map_or(true, |total| total > self.limits.max_bytes)
        {
            return Err(CsvStreamError::TooManyBytes {
                limit: self.limits.max_bytes,
            });
        }
        self.bytes_seen += chunk.len();
        for &b in chunk {
            self.step(b)?;
            self.prev_byte = b;
        }
        Ok(())
    }

    fn step(&mut self, b: u8) -> std::result::Result<(), CsvStreamError> {
        if self.state == ScanState::AfterQuote {
            if b == b'"' {
                // Doubled quote: literal `"` and the section stays open.
                self.field.push(b'"');
                self.state = ScanState::InQuotes;
                return Ok(());
            }
            // The quote closed; fall through and rescan `b` unquoted.
            self.state = ScanState::Unquoted;
        }
        match self.state {
            ScanState::InQuotes => {
                if b == b'"' {
                    self.state = ScanState::AfterQuote;
                } else {
                    if b == b'\n' {
                        self.line += 1;
                    }
                    self.field.push(b);
                }
            }
            ScanState::Unquoted => match b {
                b'"' => {
                    if self.field.is_empty() {
                        self.state = ScanState::InQuotes;
                        self.saw_quote = true;
                    } else {
                        return Err(CsvStreamError::Csv {
                            line: self.record_line,
                            message: "unexpected quote inside unquoted field".into(),
                        });
                    }
                }
                b',' => self.end_field()?,
                b'\n' => {
                    // `\r` is a line terminator only as part of `\r\n`.
                    if self.prev_byte == b'\r' {
                        self.field.pop();
                    }
                    self.end_record()?;
                    self.line += 1;
                    self.record_line = self.line;
                }
                _ => self.field.push(b),
            },
            ScanState::AfterQuote => unreachable!("handled above"),
        }
        Ok(())
    }

    fn end_field(&mut self) -> std::result::Result<(), CsvStreamError> {
        let bytes = std::mem::take(&mut self.field);
        match String::from_utf8(bytes) {
            Ok(s) => {
                self.record.push(s);
                Ok(())
            }
            Err(_) => Err(CsvStreamError::Csv {
                line: self.record_line,
                message: "invalid utf-8 in field".into(),
            }),
        }
    }

    fn end_record(&mut self) -> std::result::Result<(), CsvStreamError> {
        self.end_field()?;
        let record = std::mem::take(&mut self.record);
        let saw_quote = std::mem::replace(&mut self.saw_quote, false);
        // Whitespace-only physical lines are skipped anywhere, matching
        // the line-oriented reader. A quoted empty field is *content*.
        if record.len() == 1 && !saw_quote && record[0].trim().is_empty() {
            return Ok(());
        }
        match &self.names {
            None => {
                if record.len() > self.limits.max_cols {
                    return Err(CsvStreamError::TooManyColumns {
                        found: record.len(),
                        limit: self.limits.max_cols,
                    });
                }
                self.cols = vec![Vec::new(); record.len()];
                self.flags = vec![TypeFlags::new(); record.len()];
                self.names = Some(record);
            }
            Some(names) => {
                if record.len() != names.len() {
                    return Err(CsvStreamError::Csv {
                        line: self.record_line,
                        message: format!("expected {} fields, found {}", names.len(), record.len()),
                    });
                }
                if self.n_rows + 1 > self.limits.max_rows {
                    return Err(CsvStreamError::TooManyRows {
                        limit: self.limits.max_rows,
                    });
                }
                self.n_rows += 1;
                for (c, cell) in record.into_iter().enumerate() {
                    self.flags[c].observe(&cell);
                    self.cols[c].push(cell);
                }
            }
        }
        Ok(())
    }

    /// Consume the parser, validating the trailing record, and build the
    /// typed [`DataFrame`].
    pub fn finish(mut self) -> std::result::Result<DataFrame, CsvStreamError> {
        match self.state {
            ScanState::InQuotes => {
                return Err(CsvStreamError::Csv {
                    line: self.record_line,
                    message: "unterminated quote".into(),
                });
            }
            ScanState::AfterQuote => self.state = ScanState::Unquoted,
            ScanState::Unquoted => {}
        }
        // A final record without a trailing newline still counts.
        if !self.field.is_empty() || !self.record.is_empty() || self.saw_quote {
            self.end_record()?;
        }
        let names = self.names.ok_or(CsvStreamError::Csv {
            line: 1,
            message: "empty input".into(),
        })?;
        let mut pairs = Vec::with_capacity(names.len());
        for (c, name) in names.into_iter().enumerate() {
            let dtype = self.flags[c].dtype();
            let cells: Vec<&str> = self.cols[c].iter().map(|s| s.as_str()).collect();
            let column = build_column(dtype, &cells);
            let role = AttrRole::infer(dtype, column.n_distinct(), column.len());
            pairs.push((Field::new(name, dtype, role), column));
        }
        DataFrame::new(pairs).map_err(|e| CsvStreamError::Csv {
            line: 0,
            message: e.to_string(),
        })
    }
}

/// One-shot convenience over [`CsvStreamParser`].
pub fn parse_csv_bytes(
    bytes: &[u8],
    limits: CsvLimits,
) -> std::result::Result<DataFrame, CsvStreamError> {
    let mut parser = CsvStreamParser::new(limits);
    parser.push(bytes)?;
    parser.finish()
}

pub(crate) fn build_column(dtype: DType, cells: &[&str]) -> Column {
    match dtype {
        DType::Int => Column::from_ints(cells.iter().map(|c| c.parse::<i64>().ok())),
        DType::Float => Column::from_floats(cells.iter().map(|c| c.parse::<f64>().ok())),
        DType::Bool => Column::from_bools(cells.iter().map(|c| match *c {
            "true" | "True" => Some(true),
            "false" | "False" => Some(false),
            _ => None,
        })),
        DType::Str => {
            Column::from_strs(
                cells
                    .iter()
                    .map(|c| if c.is_empty() { None } else { Some(*c) }),
            )
        }
    }
}

impl DataFrame {
    /// Parse CSV from raw bytes under the given limits, streaming-style.
    pub fn from_csv_bytes(bytes: &[u8], limits: CsvLimits) -> Result<DataFrame> {
        parse_csv_bytes(bytes, limits).map_err(DataFrameError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueRef;

    fn parse(text: &str) -> DataFrame {
        parse_csv_bytes(text.as_bytes(), CsvLimits::unlimited()).unwrap()
    }

    #[test]
    fn chunked_pushes_match_single_push() {
        let csv = "name,age\n\"qu\"\"oted\",30\n\u{3042}\u{3044},\n";
        let whole = parse(csv);
        // Push one byte at a time: quotes, CRLF pairs and multi-byte
        // UTF-8 sequences all split across chunk boundaries.
        let mut p = CsvStreamParser::new(CsvLimits::unlimited());
        for b in csv.as_bytes() {
            p.push(std::slice::from_ref(b)).unwrap();
        }
        let piecewise = p.finish().unwrap();
        assert_eq!(whole.fingerprint(), piecewise.fingerprint());
        assert_eq!(whole.value(0, "name").unwrap(), ValueRef::Str("qu\"oted"));
    }

    #[test]
    fn embedded_newline_in_quoted_field() {
        let df = parse("k,v\n\"a\nb\",1\n");
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.value(0, "k").unwrap(), ValueRef::Str("a\nb"));
        // The embedded newline advances the physical line counter, so a
        // later ragged row reports its true physical line.
        let err =
            parse_csv_bytes(b"k,v\n\"a\nb\",1\nonly-one\n", CsvLimits::unlimited()).unwrap_err();
        assert_eq!(
            err,
            CsvStreamError::Csv {
                line: 4,
                message: "expected 2 fields, found 1".into()
            }
        );
    }

    #[test]
    fn crlf_and_bare_cr() {
        let df = parse("a,b\r\n1,x\r\n2,\"y\r\"\r\n");
        assert_eq!(df.value(0, "b").unwrap(), ValueRef::Str("x"));
        // `\r` inside quotes is content; only the terminator `\r\n` is folded.
        assert_eq!(df.value(1, "b").unwrap(), ValueRef::Str("y\r"));
        // Trailing bare `\r` at EOF is kept, mirroring `str::lines`.
        let df = parse("a\nv\r");
        assert_eq!(df.value(0, "a").unwrap(), ValueRef::Str("v\r"));
    }

    #[test]
    fn byte_limit_enforced_before_buffering_more() {
        let mut p = CsvStreamParser::new(CsvLimits {
            max_bytes: 10,
            max_rows: usize::MAX,
            max_cols: usize::MAX,
        });
        p.push(b"a,b\n1,2\n").unwrap();
        assert_eq!(
            p.push(b"3,4\n").unwrap_err(),
            CsvStreamError::TooManyBytes { limit: 10 }
        );
    }

    #[test]
    fn row_and_column_limits() {
        let limits = CsvLimits {
            max_bytes: usize::MAX,
            max_rows: 2,
            max_cols: usize::MAX,
        };
        assert!(parse_csv_bytes(b"a\n1\n2\n", limits).is_ok());
        assert_eq!(
            parse_csv_bytes(b"a\n1\n2\n3\n", limits).unwrap_err(),
            CsvStreamError::TooManyRows { limit: 2 }
        );
        let limits = CsvLimits {
            max_bytes: usize::MAX,
            max_rows: usize::MAX,
            max_cols: 2,
        };
        assert_eq!(
            parse_csv_bytes(b"a,b,c\n", limits).unwrap_err(),
            CsvStreamError::TooManyColumns { found: 3, limit: 2 }
        );
    }

    #[test]
    fn invalid_utf8_rejected() {
        let err = parse_csv_bytes(b"a\n\xff\xfe\n", CsvLimits::unlimited()).unwrap_err();
        assert!(matches!(err, CsvStreamError::Csv { line: 2, .. }));
    }

    #[test]
    fn header_only_file_yields_empty_frame() {
        let df = parse("a,b\n");
        assert_eq!(df.n_rows(), 0);
        assert_eq!(df.n_cols(), 2);
    }

    #[test]
    fn final_record_without_newline() {
        let df = parse("a,b\n1,2");
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.value(0, "b").unwrap(), ValueRef::Int(2));
    }

    #[test]
    fn quoted_whitespace_is_not_a_blank_line() {
        let df = parse("a\n\"  \"\n");
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.value(0, "a").unwrap(), ValueRef::Str("  "));
    }
}
