//! Hash joins — the operation the paper lists as the natural next
//! extension of the EDA action space (§3, §7: "can be extended to support,
//! e.g., visualizations and joins").

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::schema::Field;
use crate::value::ValueKey;
// atena-lint: allow(hash-order) — HashMap below is a lookup-only probe index
use std::collections::HashMap;

/// Join variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Keep only matching key pairs.
    Inner,
    /// Keep every left row; unmatched right columns become null.
    Left,
}

impl DataFrame {
    /// Hash-join `self` with `other` on `left_key == right_key`.
    ///
    /// Null keys never match (SQL semantics). Output columns: all of
    /// `self`'s, then `other`'s minus its key column; name collisions on the
    /// right side are suffixed with `_right`.
    pub fn join(
        &self,
        other: &DataFrame,
        left_key: &str,
        right_key: &str,
        kind: JoinKind,
    ) -> Result<DataFrame> {
        let left_col = self.column(left_key)?;
        let right_col = other.column(right_key)?;
        if left_col.dtype() != right_col.dtype() {
            return Err(DataFrameError::TypeMismatch {
                expected: left_col.dtype().name(),
                actual: right_col.dtype().name(),
            });
        }

        // Build the hash index over the right side. Output row order is
        // driven by the left-side probe loop; the index is never iterated.
        // atena-lint: allow(hash-order) — lookup-only probe index
        let mut index: HashMap<ValueKey, Vec<usize>> = HashMap::new();
        for r in 0..other.n_rows() {
            let v = right_col.get(r);
            if !v.is_null() {
                index.entry(v.key()).or_default().push(r);
            }
        }

        // Probe.
        let mut left_rows: Vec<usize> = Vec::new();
        let mut right_rows: Vec<Option<usize>> = Vec::new();
        for l in 0..self.n_rows() {
            let v = left_col.get(l);
            let matches = if v.is_null() {
                None
            } else {
                index.get(&v.key())
            };
            match matches {
                Some(rs) => {
                    for &r in rs {
                        left_rows.push(l);
                        right_rows.push(Some(r));
                    }
                }
                None => {
                    if kind == JoinKind::Left {
                        left_rows.push(l);
                        right_rows.push(None);
                    }
                }
            }
        }

        // Assemble output.
        let mut pairs: Vec<(Field, Column)> = Vec::new();
        for (i, field) in self.schema().fields().iter().enumerate() {
            pairs.push((field.clone(), self.column_at(i).take(&left_rows)));
        }
        let left_names: Vec<&str> = self.schema().names();
        for (i, field) in other.schema().fields().iter().enumerate() {
            if field.name == right_key {
                continue;
            }
            let mut field = field.clone();
            if left_names.contains(&field.name.as_str()) {
                field.name = format!("{}_right", field.name);
            }
            let src = other.column_at(i);
            let mut out = Column::empty(src.dtype());
            for r in &right_rows {
                let value = match r {
                    Some(r) => src.get(*r).to_owned(),
                    None => crate::value::Value::Null,
                };
                out.push(value).expect("column types align");
            }
            pairs.push((field, out));
        }
        DataFrame::new(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrRole;
    use crate::value::ValueRef;

    fn flights() -> DataFrame {
        DataFrame::builder()
            .str(
                "airline",
                AttrRole::Categorical,
                vec![Some("AA"), Some("DL"), Some("ZZ"), None],
            )
            .int(
                "delay",
                AttrRole::Numeric,
                vec![Some(10), Some(20), Some(30), Some(40)],
            )
            .build()
            .unwrap()
    }

    fn carriers() -> DataFrame {
        DataFrame::builder()
            .str(
                "code",
                AttrRole::Categorical,
                vec![Some("AA"), Some("DL"), Some("UA")],
            )
            .str(
                "carrier_name",
                AttrRole::Text,
                vec![Some("American"), Some("Delta"), Some("United")],
            )
            .int("delay", AttrRole::Numeric, vec![Some(1), Some(2), Some(3)])
            .build()
            .unwrap()
    }

    #[test]
    fn inner_join_matches_only() {
        let out = flights()
            .join(&carriers(), "airline", "code", JoinKind::Inner)
            .unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(
            out.value(0, "carrier_name").unwrap(),
            ValueRef::Str("American")
        );
        // Right-side "delay" collides and is suffixed.
        assert_eq!(
            out.schema().names(),
            vec!["airline", "delay", "carrier_name", "delay_right"]
        );
        assert_eq!(out.value(1, "delay_right").unwrap(), ValueRef::Int(2));
    }

    #[test]
    fn left_join_keeps_unmatched_with_nulls() {
        let out = flights()
            .join(&carriers(), "airline", "code", JoinKind::Left)
            .unwrap();
        assert_eq!(out.n_rows(), 4);
        assert!(out.value(2, "carrier_name").unwrap().is_null()); // ZZ
        assert!(out.value(3, "carrier_name").unwrap().is_null()); // null key
        assert_eq!(out.value(3, "delay").unwrap(), ValueRef::Int(40));
    }

    #[test]
    fn one_to_many_fanout() {
        let many = DataFrame::builder()
            .str("k", AttrRole::Categorical, vec![Some("AA"), Some("AA")])
            .int("x", AttrRole::Numeric, vec![Some(1), Some(2)])
            .build()
            .unwrap();
        let out = flights()
            .join(&many, "airline", "k", JoinKind::Inner)
            .unwrap();
        // The single AA flight matches both right rows.
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.value(0, "airline").unwrap(), ValueRef::Str("AA"));
        assert_eq!(out.value(1, "airline").unwrap(), ValueRef::Str("AA"));
    }

    #[test]
    fn key_type_mismatch_rejected() {
        let err = flights()
            .join(&carriers(), "delay", "code", JoinKind::Inner)
            .unwrap_err();
        assert!(matches!(err, DataFrameError::TypeMismatch { .. }));
    }

    #[test]
    fn missing_key_rejected() {
        let err = flights()
            .join(&carriers(), "nope", "code", JoinKind::Inner)
            .unwrap_err();
        assert!(matches!(err, DataFrameError::ColumnNotFound(_)));
    }
}
