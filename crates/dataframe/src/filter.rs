//! Filter predicates: the `FILTER(attr, op, term)` operation of the EDA
//! action space.

use crate::error::{DataFrameError, Result};
use crate::value::{DType, Value, ValueRef};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator of a filter predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equality (`==`). Defined for every type.
    Eq,
    /// Inequality (`!=`). Defined for every type.
    Neq,
    /// Strictly greater (`>`). Numeric columns only.
    Gt,
    /// Strictly less (`<`). Numeric columns only.
    Lt,
    /// Greater or equal (`>=`). Numeric columns only.
    Ge,
    /// Less or equal (`<=`). Numeric columns only.
    Le,
    /// Substring containment. String columns only.
    Contains,
    /// Prefix match. String columns only.
    StartsWith,
}

impl CmpOp {
    /// All supported operators, in the canonical order used by the action
    /// space's parameter domain.
    pub const ALL: [CmpOp; 8] = [
        CmpOp::Eq,
        CmpOp::Neq,
        CmpOp::Gt,
        CmpOp::Lt,
        CmpOp::Ge,
        CmpOp::Le,
        CmpOp::Contains,
        CmpOp::StartsWith,
    ];

    /// Short symbolic form used in notebook captions.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Neq => "!=",
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
            CmpOp::Contains => "contains",
            CmpOp::StartsWith => "starts_with",
        }
    }

    /// Whether the operator is defined for columns of type `dtype`.
    pub fn supports(self, dtype: DType) -> bool {
        match self {
            CmpOp::Eq | CmpOp::Neq => true,
            CmpOp::Gt | CmpOp::Lt | CmpOp::Ge | CmpOp::Le => dtype.is_numeric(),
            CmpOp::Contains | CmpOp::StartsWith => dtype == DType::Str,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A single filter predicate over one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Attribute the predicate applies to.
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Comparison term.
    pub term: Value,
}

impl Predicate {
    /// Create a predicate.
    pub fn new(attr: impl Into<String>, op: CmpOp, term: impl Into<Value>) -> Self {
        Self {
            attr: attr.into(),
            op,
            term: term.into(),
        }
    }

    /// Validate the predicate against a column type.
    ///
    /// Returns [`DataFrameError::IncompatibleOp`] for combinations like
    /// `Contains` on an integer column, which the RL agent can produce; the
    /// environment converts the error into a penalized no-op.
    pub fn validate(&self, dtype: DType) -> Result<()> {
        if !self.op.supports(dtype) {
            return Err(DataFrameError::IncompatibleOp {
                column: self.attr.clone(),
                op: self.op.symbol().to_string(),
                dtype: dtype.name(),
            });
        }
        // Term type must be comparable against the column type.
        let term_ok = match (&self.term, dtype) {
            (Value::Null, _) => matches!(self.op, CmpOp::Eq | CmpOp::Neq),
            (Value::Int(_) | Value::Float(_), DType::Int | DType::Float) => true,
            (Value::Str(_), DType::Str) => true,
            (Value::Bool(_), DType::Bool) => true,
            _ => false,
        };
        if !term_ok {
            return Err(DataFrameError::IncompatibleOp {
                column: self.attr.clone(),
                op: format!("{} {}", self.op.symbol(), self.term),
                dtype: dtype.name(),
            });
        }
        Ok(())
    }

    /// Evaluate the predicate against one value.
    ///
    /// Nulls never match any predicate except `== null` / `!= null`.
    pub fn matches(&self, value: ValueRef<'_>) -> bool {
        match (&self.term, value) {
            // Null term: explicit null checks.
            (Value::Null, v) => match self.op {
                CmpOp::Eq => v.is_null(),
                CmpOp::Neq => !v.is_null(),
                _ => false,
            },
            (_, ValueRef::Null) => matches!(self.op, CmpOp::Neq),
            (Value::Bool(t), ValueRef::Bool(v)) => match self.op {
                CmpOp::Eq => v == *t,
                CmpOp::Neq => v != *t,
                _ => false,
            },
            (Value::Str(t), ValueRef::Str(v)) => match self.op {
                CmpOp::Eq => v == t,
                CmpOp::Neq => v != t,
                CmpOp::Contains => v.contains(t.as_str()),
                CmpOp::StartsWith => v.starts_with(t.as_str()),
                _ => false,
            },
            (term, v) => match (term.as_f64(), v.as_f64()) {
                (Some(t), Some(v)) => match self.op {
                    CmpOp::Eq => v == t,
                    CmpOp::Neq => v != t,
                    CmpOp::Gt => v > t,
                    CmpOp::Lt => v < t,
                    CmpOp::Ge => v >= t,
                    CmpOp::Le => v <= t,
                    _ => false,
                },
                _ => false,
            },
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            CmpOp::Contains | CmpOp::StartsWith => {
                write!(
                    f,
                    "{}.{}({:?})",
                    self.attr,
                    self.op.symbol(),
                    self.term.to_string()
                )
            }
            _ => write!(f, "{} {} {}", self.attr, self.op.symbol(), self.term),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparisons() {
        let p = Predicate::new("x", CmpOp::Gt, 5i64);
        assert!(p.matches(ValueRef::Int(6)));
        assert!(!p.matches(ValueRef::Int(5)));
        assert!(p.matches(ValueRef::Float(5.5)));
        assert!(!p.matches(ValueRef::Null));
    }

    #[test]
    fn string_operators() {
        let c = Predicate::new("s", CmpOp::Contains, "bc");
        assert!(c.matches(ValueRef::Str("abcd")));
        assert!(!c.matches(ValueRef::Str("bd")));
        let sw = Predicate::new("s", CmpOp::StartsWith, "ab");
        assert!(sw.matches(ValueRef::Str("abcd")));
        assert!(!sw.matches(ValueRef::Str("xab")));
    }

    #[test]
    fn null_semantics() {
        let eq_null = Predicate::new("x", CmpOp::Eq, Value::Null);
        assert!(eq_null.matches(ValueRef::Null));
        assert!(!eq_null.matches(ValueRef::Int(1)));
        let neq = Predicate::new("x", CmpOp::Neq, 3i64);
        // null != 3 is true under our semantics (pandas-style would be false,
        // but the agent benefits from != excluding nulls being visible).
        assert!(neq.matches(ValueRef::Null));
        let gt = Predicate::new("x", CmpOp::Gt, 3i64);
        assert!(!gt.matches(ValueRef::Null));
    }

    #[test]
    fn validation_rejects_incompatible() {
        let p = Predicate::new("x", CmpOp::Contains, "a");
        assert!(p.validate(DType::Int).is_err());
        assert!(p.validate(DType::Str).is_ok());
        let p2 = Predicate::new("x", CmpOp::Gt, "a");
        assert!(p2.validate(DType::Str).is_err());
        let p3 = Predicate::new("x", CmpOp::Gt, 1i64);
        assert!(p3.validate(DType::Float).is_ok());
        assert!(p3.validate(DType::Bool).is_err());
    }

    #[test]
    fn op_supports_matrix() {
        assert!(CmpOp::Eq.supports(DType::Bool));
        assert!(!CmpOp::Lt.supports(DType::Str));
        assert!(CmpOp::Contains.supports(DType::Str));
        assert!(!CmpOp::Contains.supports(DType::Float));
        assert_eq!(CmpOp::ALL.len(), 8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Predicate::new("delay", CmpOp::Ge, 30i64).to_string(),
            "delay >= 30"
        );
        assert_eq!(
            Predicate::new("url", CmpOp::Contains, "login").to_string(),
            "url.contains(\"login\")"
        );
    }
}
