//! Minimal CSV reader/writer with type inference.
//!
//! Supports RFC-4180-style quoting (`"a,b"`, doubled quotes) — enough to
//! round-trip the synthetic experimental datasets and ingest user CSVs in
//! the examples. Parsing is delegated to the streaming scanner in
//! [`crate::csv_stream`], so quoted fields may contain embedded newlines
//! and the exact same grammar serves both trusted in-memory strings and
//! size-capped network uploads.

use crate::csv_stream::{parse_csv_bytes, CsvLimits};
use crate::error::Result;
use crate::frame::DataFrame;

impl DataFrame {
    /// Parse a CSV string (first line is the header). Empty cells become
    /// nulls; column types are inferred, semantic roles via
    /// [`crate::AttrRole::infer`].
    pub fn from_csv_str(text: &str) -> Result<DataFrame> {
        parse_csv_bytes(text.as_bytes(), CsvLimits::unlimited()).map_err(Into::into)
    }

    /// Serialize the frame to a CSV string (nulls as empty cells).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        let names = self.schema().names();
        out.push_str(&names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in 0..self.n_rows() {
            let row: Vec<String> = (0..self.n_cols())
                .map(|c| {
                    let v = self.column_at(c).get(r);
                    if v.is_null() {
                        String::new()
                    } else {
                        quote(&v.to_string())
                    }
                })
                .collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DataFrameError;
    use crate::value::{DType, ValueRef};

    #[test]
    fn round_trip() {
        let csv = "name,age,score\nalice,30,1.5\nbob,,2.0\n\"x,y\",7,\n";
        let df = DataFrame::from_csv_str(csv).unwrap();
        assert_eq!(df.n_rows(), 3);
        assert_eq!(df.schema().field("age").unwrap().dtype, DType::Int);
        assert_eq!(df.schema().field("score").unwrap().dtype, DType::Float);
        assert_eq!(df.value(2, "name").unwrap(), ValueRef::Str("x,y"));
        assert!(df.value(1, "age").unwrap().is_null());
        let back = DataFrame::from_csv_str(&df.to_csv_string()).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.value(2, "name").unwrap(), ValueRef::Str("x,y"));
    }

    #[test]
    fn type_inference() {
        let df = DataFrame::from_csv_str("i,f,b,s,e\n1,1.5,true,1,\n2,2,False,x,\n").unwrap();
        assert_eq!(df.schema().field("i").unwrap().dtype, DType::Int);
        assert_eq!(df.schema().field("f").unwrap().dtype, DType::Float);
        assert_eq!(df.schema().field("b").unwrap().dtype, DType::Bool);
        assert_eq!(df.schema().field("s").unwrap().dtype, DType::Str);
        // All-empty columns fall back to Str.
        assert_eq!(df.schema().field("e").unwrap().dtype, DType::Str);
    }

    #[test]
    fn quoting_edge_cases() {
        let df = DataFrame::from_csv_str("x,y,z\na,\"b,\"\"c\"\"\",d\n").unwrap();
        assert_eq!(df.value(0, "x").unwrap(), ValueRef::Str("a"));
        assert_eq!(df.value(0, "y").unwrap(), ValueRef::Str("b,\"c\""));
        assert_eq!(df.value(0, "z").unwrap(), ValueRef::Str("d"));
        let err = DataFrame::from_csv_str("x\n\"unterminated\n").unwrap_err();
        assert!(matches!(err, DataFrameError::Csv { .. }));
        let err = DataFrame::from_csv_str("x\nab\"c\n").unwrap_err();
        assert!(matches!(err, DataFrameError::Csv { line: 2, .. }));
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = DataFrame::from_csv_str("a,b\n1\n").unwrap_err();
        assert!(matches!(err, DataFrameError::Csv { line: 2, .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(DataFrame::from_csv_str("").is_err());
        assert!(DataFrame::from_csv_str("  \n \n").is_err());
    }

    #[test]
    fn bool_parsing() {
        let df = DataFrame::from_csv_str("flag\ntrue\nFalse\n\n").unwrap();
        assert_eq!(df.value(0, "flag").unwrap(), ValueRef::Bool(true));
        assert_eq!(df.value(1, "flag").unwrap(), ValueRef::Bool(false));
    }
}
