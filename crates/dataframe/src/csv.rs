//! Minimal CSV reader/writer with type inference.
//!
//! Supports RFC-4180-style quoting (`"a,b"`, doubled quotes) — enough to
//! round-trip the synthetic experimental datasets and ingest user CSVs in
//! the examples.

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::schema::{AttrRole, Field};
use crate::value::DType;

/// Parse one CSV line into fields, honoring quotes.
fn parse_line(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            '"' => {
                return Err(DataFrameError::Csv {
                    line: line_no,
                    message: "unexpected quote inside unquoted field".into(),
                })
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(DataFrameError::Csv {
            line: line_no,
            message: "unterminated quote".into(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

/// Infer the narrowest type that fits every non-empty cell in a column.
fn infer_dtype(cells: &[&str]) -> DType {
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    let mut saw_value = false;
    for &c in cells {
        if c.is_empty() {
            continue;
        }
        saw_value = true;
        if c.parse::<i64>().is_err() {
            all_int = false;
        }
        if c.parse::<f64>().is_err() {
            all_float = false;
        }
        if !matches!(c, "true" | "false" | "True" | "False") {
            all_bool = false;
        }
    }
    if !saw_value {
        return DType::Str;
    }
    if all_bool {
        DType::Bool
    } else if all_int {
        DType::Int
    } else if all_float {
        DType::Float
    } else {
        DType::Str
    }
}

impl DataFrame {
    /// Parse a CSV string (first line is the header). Empty cells become
    /// nulls; column types are inferred, semantic roles via
    /// [`AttrRole::infer`].
    pub fn from_csv_str(text: &str) -> Result<DataFrame> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or(DataFrameError::Csv {
            line: 1,
            message: "empty input".into(),
        })?;
        let names = parse_line(header, 1)?;
        let n_cols = names.len();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (i, line) in lines {
            let fields = parse_line(line, i + 1)?;
            if fields.len() != n_cols {
                return Err(DataFrameError::Csv {
                    line: i + 1,
                    message: format!("expected {n_cols} fields, found {}", fields.len()),
                });
            }
            rows.push(fields);
        }

        let mut pairs = Vec::with_capacity(n_cols);
        for (c, name) in names.iter().enumerate() {
            let cells: Vec<&str> = rows.iter().map(|r| r[c].as_str()).collect();
            let dtype = infer_dtype(&cells);
            let column = build_column(dtype, &cells);
            let role = AttrRole::infer(dtype, column.n_distinct(), column.len());
            pairs.push((Field::new(name.clone(), dtype, role), column));
        }
        DataFrame::new(pairs)
    }

    /// Serialize the frame to a CSV string (nulls as empty cells).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        let names = self.schema().names();
        out.push_str(&names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in 0..self.n_rows() {
            let row: Vec<String> = (0..self.n_cols())
                .map(|c| {
                    let v = self.column_at(c).get(r);
                    if v.is_null() {
                        String::new()
                    } else {
                        quote(&v.to_string())
                    }
                })
                .collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

fn build_column(dtype: DType, cells: &[&str]) -> Column {
    match dtype {
        DType::Int => Column::from_ints(cells.iter().map(|c| c.parse::<i64>().ok())),
        DType::Float => Column::from_floats(cells.iter().map(|c| c.parse::<f64>().ok())),
        DType::Bool => Column::from_bools(cells.iter().map(|c| match *c {
            "true" | "True" => Some(true),
            "false" | "False" => Some(false),
            _ => None,
        })),
        DType::Str => {
            Column::from_strs(
                cells
                    .iter()
                    .map(|c| if c.is_empty() { None } else { Some(*c) }),
            )
        }
    }
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueRef;

    #[test]
    fn round_trip() {
        let csv = "name,age,score\nalice,30,1.5\nbob,,2.0\n\"x,y\",7,\n";
        let df = DataFrame::from_csv_str(csv).unwrap();
        assert_eq!(df.n_rows(), 3);
        assert_eq!(df.schema().field("age").unwrap().dtype, DType::Int);
        assert_eq!(df.schema().field("score").unwrap().dtype, DType::Float);
        assert_eq!(df.value(2, "name").unwrap(), ValueRef::Str("x,y"));
        assert!(df.value(1, "age").unwrap().is_null());
        let back = DataFrame::from_csv_str(&df.to_csv_string()).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.value(2, "name").unwrap(), ValueRef::Str("x,y"));
    }

    #[test]
    fn type_inference() {
        assert_eq!(infer_dtype(&["1", "2", ""]), DType::Int);
        assert_eq!(infer_dtype(&["1", "2.5"]), DType::Float);
        assert_eq!(infer_dtype(&["true", "False"]), DType::Bool);
        assert_eq!(infer_dtype(&["1", "x"]), DType::Str);
        assert_eq!(infer_dtype(&["", ""]), DType::Str);
    }

    #[test]
    fn quoting_edge_cases() {
        let fields = parse_line("a,\"b,\"\"c\"\"\",d", 1).unwrap();
        assert_eq!(fields, vec!["a", "b,\"c\"", "d"]);
        assert!(parse_line("\"unterminated", 1).is_err());
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = DataFrame::from_csv_str("a,b\n1\n").unwrap_err();
        assert!(matches!(err, DataFrameError::Csv { line: 2, .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(DataFrame::from_csv_str("").is_err());
        assert!(DataFrame::from_csv_str("  \n \n").is_err());
    }

    #[test]
    fn bool_parsing() {
        let df = DataFrame::from_csv_str("flag\ntrue\nFalse\n\n").unwrap();
        assert_eq!(df.value(0, "flag").unwrap(), ValueRef::Bool(true));
        assert_eq!(df.value(1, "flag").unwrap(), ValueRef::Bool(false));
    }
}
