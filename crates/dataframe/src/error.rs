//! Error types for the dataframe engine.

use std::fmt;

/// Errors produced by dataframe operations.
///
/// The EDA environment intentionally lets an RL agent compose operations that
/// may be ill-typed (e.g. `contains` on an integer column); those surface as
/// [`DataFrameError::IncompatibleOp`] and are converted by the environment
/// into a penalized no-op rather than a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataFrameError {
    /// Referenced a column that does not exist in the schema.
    ColumnNotFound(String),
    /// A column with this name already exists.
    DuplicateColumn(String),
    /// The operation is not defined for the column's data type.
    IncompatibleOp {
        /// Column the operation was applied to.
        column: String,
        /// Human-readable description of the offending operation.
        op: String,
        /// Data type of the column.
        dtype: &'static str,
    },
    /// Columns of differing lengths were combined into one frame.
    LengthMismatch {
        /// Expected number of rows.
        expected: usize,
        /// Actual number of rows in the offending column.
        actual: usize,
        /// Name of the offending column.
        column: String,
    },
    /// A value of the wrong type was pushed into a column.
    TypeMismatch {
        /// Column data type.
        expected: &'static str,
        /// Type of the pushed value.
        actual: &'static str,
    },
    /// Row index out of bounds.
    RowOutOfBounds {
        /// Requested row.
        index: usize,
        /// Number of rows in the frame.
        len: usize,
    },
    /// Malformed CSV input.
    Csv {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An aggregation was requested over an empty or incompatible input.
    InvalidAggregate(String),
}

impl fmt::Display for DataFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            Self::DuplicateColumn(name) => write!(f, "duplicate column: {name:?}"),
            Self::IncompatibleOp { column, op, dtype } => {
                write!(
                    f,
                    "operation {op} is not defined for column {column:?} of type {dtype}"
                )
            }
            Self::LengthMismatch {
                expected,
                actual,
                column,
            } => write!(
                f,
                "column {column:?} has {actual} rows but the frame has {expected}"
            ),
            Self::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            Self::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for frame of {len} rows")
            }
            Self::Csv { line, message } => write!(f, "csv parse error at line {line}: {message}"),
            Self::InvalidAggregate(msg) => write!(f, "invalid aggregate: {msg}"),
        }
    }
}

impl std::error::Error for DataFrameError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DataFrameError>;
