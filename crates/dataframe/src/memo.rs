//! Per-frame memoization of derived statistics.
//!
//! Frames are immutable, so anything computed from a frame's content —
//! column statistics, value distributions, the content fingerprint — can be
//! computed once and shared by every clone. The memo rides on the frame
//! behind an `Arc`: cloning a frame (or sharing it through the display
//! cache across rollout lanes) shares the memo, so a distribution computed
//! by one lane is reused by all of them.
//!
//! Soundness: every memoized quantity is a pure function of the frame's
//! content, and each is computed by exactly the same code path a cold call
//! would take — a memo hit returns bit-identical values to recomputation,
//! which is what the determinism contract (DESIGN.md §4h/§4i) requires.

use crate::stats::{ColumnStats, ValueDistribution};
use std::any::{Any, TypeId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Lazily filled derived data for one frame. Held as `Arc<FrameMemo>` in
/// [`crate::DataFrame`]; excluded from serialization and equality (a
/// deserialized frame simply starts cold).
#[derive(Default)]
pub struct FrameMemo {
    /// Statistics for every column in schema order ([`crate::DataFrame::all_column_stats`]).
    pub(crate) stats: OnceLock<Vec<ColumnStats>>,
    /// Value distributions by column name ([`crate::DataFrame::value_distribution_shared`]).
    pub(crate) distributions: Mutex<BTreeMap<String, Arc<ValueDistribution>>>,
    /// Content fingerprint ([`crate::DataFrame::fingerprint`]).
    pub(crate) fingerprint: OnceLock<u64>,
    /// Caller-defined derived values keyed by (parameter hash, type)
    /// ([`crate::DataFrame::memo_extension`]). Lets downstream crates hang
    /// their own pure-function-of-the-frame caches off the shared memo
    /// without this crate knowing their types.
    pub(crate) extensions: Mutex<BTreeMap<(u64, TypeId), Arc<dyn Any + Send + Sync>>>,
}

impl fmt::Debug for FrameMemo {
    /// Deliberately constant: debug-formatted frames appear in transcripts
    /// that the determinism suite compares bit-for-bit, and whether a memo
    /// happens to be filled is schedule-dependent.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FrameMemo")
    }
}
