//! Column statistics backing the observation-vector encoding and the
//! interestingness rewards: entropy, distinct counts, null counts, value
//! probability distributions, and numeric summaries.

use crate::column::Column;
use crate::error::Result;
use crate::frame::DataFrame;
use crate::value::ValueKey;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Descriptive statistics of a single column, as consumed by the
/// observation-vector encoder (paper §4.1: "three descriptive features for
/// each attribute: its values' entropy, number of distinct values, and the
/// number of null values").
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Shannon entropy (bits) of the non-null value distribution.
    pub entropy: f64,
    /// Number of distinct non-null values.
    pub n_distinct: usize,
    /// Number of null entries.
    pub n_nulls: usize,
    /// Number of rows.
    pub n_rows: usize,
}

impl ColumnStats {
    /// Entropy normalized to [0,1] by the maximum achievable entropy
    /// (`log2(n_distinct)`), or 0 for constant columns.
    pub fn normalized_entropy(&self) -> f64 {
        if self.n_distinct <= 1 {
            0.0
        } else {
            self.entropy / (self.n_distinct as f64).log2()
        }
    }

    /// Fraction of rows that are distinct values (unique ratio).
    pub fn distinct_ratio(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.n_distinct as f64 / self.n_rows as f64
        }
    }

    /// Fraction of rows that are null.
    pub fn null_ratio(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.n_nulls as f64 / self.n_rows as f64
        }
    }
}

/// Shannon entropy (bits) of a frequency table.
///
/// Counts are sorted before accumulation so the result does not depend on
/// hash-map iteration order (bit-exact reproducibility of rewards).
pub fn entropy_of_counts<'a, I: IntoIterator<Item = &'a usize>>(counts: I) -> f64 {
    let mut counts: Vec<usize> = counts.into_iter().copied().filter(|&c| c > 0).collect();
    counts.sort_unstable();
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// A discrete probability distribution over values of one attribute,
/// used by the KL-divergence interestingness reward for filters.
#[derive(Debug, Clone, Default)]
pub struct ValueDistribution {
    probs: BTreeMap<ValueKey, f64>,
}

impl ValueDistribution {
    /// Build from value counts.
    pub fn from_counts(counts: &BTreeMap<ValueKey, usize>) -> Self {
        let total: usize = counts.values().sum();
        if total == 0 {
            return Self::default();
        }
        let total = total as f64;
        let probs = counts
            .iter()
            .map(|(k, &c)| (k.clone(), c as f64 / total))
            .collect();
        Self { probs }
    }

    /// True if the distribution has no support.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Number of distinct values in the support.
    pub fn support_size(&self) -> usize {
        self.probs.len()
    }

    /// Probability of a value (0 if absent).
    pub fn prob(&self, key: &ValueKey) -> f64 {
        self.probs.get(key).copied().unwrap_or(0.0)
    }

    /// Kullback–Leibler divergence `D_KL(self ‖ other)` in bits.
    ///
    /// The reference distribution is smoothed with `epsilon` mass on values
    /// present in `self` but absent in `other`, so the divergence is finite
    /// — the filtered subset always has values drawn from the parent display
    /// in the EDA setting, but aggregates can produce genuinely new values.
    pub fn kl_divergence(&self, other: &ValueDistribution) -> f64 {
        const EPSILON: f64 = 1e-6;
        if self.is_empty() {
            return 0.0;
        }
        // BTreeMap iterates in key order, so the float accumulation order
        // is deterministic by construction (bit-exact reward reproducibility;
        // this used to sort a HashMap's entries before accumulating).
        let mut kl = 0.0;
        for (k, &p) in &self.probs {
            if p <= 0.0 {
                continue;
            }
            let q = other.prob(k).max(EPSILON);
            kl += p * (p / q).log2();
        }
        kl.max(0.0)
    }
}

impl DataFrame {
    /// Statistics for every column as a borrowed slice, computed once per
    /// frame and shared by clones (see `memo.rs` for the soundness argument).
    fn stats_slice(&self) -> &[ColumnStats] {
        self.memo().stats.get_or_init(|| {
            (0..self.n_cols())
                .map(|i| stats_of(self.column_at(i)))
                .collect()
        })
    }

    /// Descriptive statistics for one column.
    pub fn column_stats(&self, name: &str) -> Result<ColumnStats> {
        let idx = self.schema().index_of(name)?;
        Ok(self.stats_slice()[idx].clone())
    }

    /// Statistics for every column, in schema order.
    pub fn all_column_stats(&self) -> Vec<ColumnStats> {
        self.stats_slice().to_vec()
    }

    /// Value probability distribution of one column (non-null values).
    pub fn value_distribution(&self, name: &str) -> Result<ValueDistribution> {
        Ok((*self.value_distribution_shared(name)?).clone())
    }

    /// Like [`DataFrame::value_distribution`], but returns the memoized,
    /// `Arc`-shared distribution — the hot path for the KL-divergence
    /// interestingness reward, which queries the same (frame, attribute)
    /// pair once per step of every episode that visits the display.
    pub fn value_distribution_shared(&self, name: &str) -> Result<Arc<ValueDistribution>> {
        if let Some(d) = self.memo().distributions.lock().unwrap().get(name) {
            return Ok(Arc::clone(d));
        }
        let col = self.column(name)?;
        let dist = Arc::new(ValueDistribution::from_counts(&col.value_counts()));
        self.memo()
            .distributions
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert_with(|| Arc::clone(&dist));
        Ok(dist)
    }

    /// A per-column summary table (name, dtype, rows, nulls, distinct,
    /// entropy, mean, min, max) — the `describe()` overview an analyst
    /// opens a session with.
    pub fn describe(&self) -> DataFrame {
        use crate::column::Column;
        use crate::schema::{AttrRole, Field};
        use crate::value::DType;
        let n = self.n_cols();
        let mut names = Vec::with_capacity(n);
        let mut dtypes = Vec::with_capacity(n);
        let mut nulls = Vec::with_capacity(n);
        let mut distinct = Vec::with_capacity(n);
        let mut entropies = Vec::with_capacity(n);
        let mut means = Vec::with_capacity(n);
        let mut mins = Vec::with_capacity(n);
        let mut maxs = Vec::with_capacity(n);
        for (i, field) in self.schema().fields().iter().enumerate() {
            let col = self.column_at(i);
            let st = stats_of(col);
            names.push(Some(field.name.clone()));
            dtypes.push(Some(field.dtype.name()));
            nulls.push(Some(st.n_nulls as i64));
            distinct.push(Some(st.n_distinct as i64));
            entropies.push(Some(st.entropy));
            let summary = {
                let vals: Vec<f64> = col.iter().filter_map(|v| v.as_f64()).collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(NumericSummary::from_values(&vals))
                }
            };
            means.push(summary.map(|s| s.mean));
            mins.push(summary.map(|s| s.min));
            maxs.push(summary.map(|s| s.max));
        }
        DataFrame::new(vec![
            (Field::new("column", DType::Str, AttrRole::Text), {
                let mut c = crate::column::StrColumn::new();
                for v in &names {
                    c.push(v.as_deref());
                }
                Column::Str(c)
            }),
            (
                Field::new("dtype", DType::Str, AttrRole::Categorical),
                Column::from_strs(dtypes.into_iter()),
            ),
            (
                Field::new("nulls", DType::Int, AttrRole::Numeric),
                Column::from_ints(nulls),
            ),
            (
                Field::new("distinct", DType::Int, AttrRole::Numeric),
                Column::from_ints(distinct),
            ),
            (
                Field::new("entropy", DType::Float, AttrRole::Numeric),
                Column::from_floats(entropies),
            ),
            (
                Field::new("mean", DType::Float, AttrRole::Numeric),
                Column::from_floats(means),
            ),
            (
                Field::new("min", DType::Float, AttrRole::Numeric),
                Column::from_floats(mins),
            ),
            (
                Field::new("max", DType::Float, AttrRole::Numeric),
                Column::from_floats(maxs),
            ),
        ])
        .expect("describe schema is consistent")
    }

    /// Numeric summary (mean, variance) of one numeric column; `None` for
    /// non-numeric columns or when all values are null.
    pub fn numeric_summary(&self, name: &str) -> Result<Option<NumericSummary>> {
        let col = self.column(name)?;
        let vals: Vec<f64> = col.iter().filter_map(|v| v.as_f64()).collect();
        if vals.is_empty() {
            return Ok(None);
        }
        Ok(Some(NumericSummary::from_values(&vals)))
    }
}

/// Mean / variance / min / max of a numeric sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample size.
    pub n: usize,
}

impl NumericSummary {
    /// Compute from a non-empty slice.
    pub fn from_values(vals: &[f64]) -> Self {
        let n = vals.len();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let variance = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            mean,
            variance,
            min,
            max,
            n,
        }
    }
}

fn stats_of(col: &Column) -> ColumnStats {
    let counts = col.value_counts();
    ColumnStats {
        entropy: entropy_of_counts(counts.values()),
        n_distinct: counts.len(),
        n_nulls: col.null_count(),
        n_rows: col.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrRole;

    #[test]
    fn entropy_uniform_and_constant() {
        // Uniform over 4 values: entropy = 2 bits.
        let h = entropy_of_counts([10usize, 10, 10, 10].iter());
        assert!((h - 2.0).abs() < 1e-12);
        // Constant: 0 bits.
        let h = entropy_of_counts([42usize].iter());
        assert_eq!(h, 0.0);
        // Empty: 0 bits.
        assert_eq!(entropy_of_counts([].iter()), 0.0);
    }

    #[test]
    fn column_stats_counts() {
        let df = DataFrame::builder()
            .str(
                "s",
                AttrRole::Categorical,
                vec![Some("a"), Some("a"), Some("b"), None],
            )
            .build()
            .unwrap();
        let st = df.column_stats("s").unwrap();
        assert_eq!(st.n_distinct, 2);
        assert_eq!(st.n_nulls, 1);
        assert_eq!(st.n_rows, 4);
        assert!(st.entropy > 0.0);
        assert!(st.normalized_entropy() <= 1.0);
        assert!((st.null_ratio() - 0.25).abs() < 1e-12);
        assert!((st.distinct_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalized_entropy_of_constant_is_zero() {
        let st = ColumnStats {
            entropy: 0.0,
            n_distinct: 1,
            n_nulls: 0,
            n_rows: 5,
        };
        assert_eq!(st.normalized_entropy(), 0.0);
    }

    #[test]
    fn kl_divergence_identical_is_zero() {
        let mut c = BTreeMap::new();
        c.insert(ValueKey::Int(1), 5usize);
        c.insert(ValueKey::Int(2), 5usize);
        let d = ValueDistribution::from_counts(&c);
        assert!(d.kl_divergence(&d) < 1e-12);
    }

    #[test]
    fn kl_divergence_detects_shift() {
        let mut base = BTreeMap::new();
        base.insert(ValueKey::Int(1), 50usize);
        base.insert(ValueKey::Int(2), 50usize);
        let p_base = ValueDistribution::from_counts(&base);

        let mut skew = BTreeMap::new();
        skew.insert(ValueKey::Int(1), 99usize);
        skew.insert(ValueKey::Int(2), 1usize);
        let p_skew = ValueDistribution::from_counts(&skew);

        let kl = p_skew.kl_divergence(&p_base);
        assert!(kl > 0.5, "skewed vs uniform should diverge, got {kl}");
    }

    #[test]
    fn kl_divergence_missing_support_is_finite() {
        let mut a = BTreeMap::new();
        a.insert(ValueKey::Str("only-here".into()), 10usize);
        let pa = ValueDistribution::from_counts(&a);
        let empty = ValueDistribution::default();
        let kl = pa.kl_divergence(&empty);
        assert!(kl.is_finite());
        assert!(kl > 0.0);
    }

    #[test]
    fn numeric_summary_basics() {
        let s = NumericSummary::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        assert!((s.variance - 1.25).abs() < 1e-12);
    }

    #[test]
    fn numeric_summary_of_string_column_is_none() {
        let df = DataFrame::builder()
            .str("s", AttrRole::Text, vec![Some("a")])
            .build()
            .unwrap();
        assert!(df.numeric_summary("s").unwrap().is_none());
    }

    #[test]
    fn describe_covers_all_columns() {
        let df = DataFrame::builder()
            .str("name", AttrRole::Text, vec![Some("a"), Some("b"), None])
            .int("x", AttrRole::Numeric, vec![Some(1), Some(5), Some(3)])
            .build()
            .unwrap();
        let d = df.describe();
        assert_eq!(d.n_rows(), 2);
        assert_eq!(
            d.schema().names(),
            vec!["column", "dtype", "nulls", "distinct", "entropy", "mean", "min", "max"]
        );
        // String column: no numeric summary.
        assert!(d.value(0, "mean").unwrap().is_null());
        assert_eq!(d.value(0, "nulls").unwrap().as_f64(), Some(1.0));
        // Int column stats.
        assert_eq!(d.value(1, "mean").unwrap().as_f64(), Some(3.0));
        assert_eq!(d.value(1, "min").unwrap().as_f64(), Some(1.0));
        assert_eq!(d.value(1, "max").unwrap().as_f64(), Some(5.0));
        assert_eq!(d.value(1, "distinct").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn value_distribution_probs_sum_to_one() {
        let df = DataFrame::builder()
            .int("x", AttrRole::Numeric, (0..10).map(|i| Some(i % 3)))
            .build()
            .unwrap();
        let d = df.value_distribution("x").unwrap();
        let total: f64 = [0, 1, 2].iter().map(|&i| d.prob(&ValueKey::Int(i))).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(d.support_size(), 3);
    }
}
