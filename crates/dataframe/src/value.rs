//! Scalar values and data types.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Physical data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 string (dictionary encoded in storage).
    Str,
}

impl DType {
    /// Static name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DType::Int => "int",
            DType::Float => "float",
            DType::Bool => "bool",
            DType::Str => "str",
        }
    }

    /// True for `Int` and `Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Int | DType::Float)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! fmt_display_value {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Null => f.write_str("null"),
                Self::Int(v) => write!(f, "{v}"),
                Self::Float(v) => {
                    if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                }
                Self::Bool(v) => write!(f, "{v}"),
                Self::Str(s) => f.write_str(s),
            }
        }
    };
}

/// An owned scalar value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Missing value.
    Null,
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// String value.
    Str(String),
}

impl Value {
    /// Data type of the value, or `None` for nulls (which fit any type).
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DType::Int),
            Value::Float(_) => Some(DType::Float),
            Value::Bool(_) => Some(DType::Bool),
            Value::Str(_) => Some(DType::Str),
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, coercing integers to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Static name of the value's type for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
        }
    }

    /// Borrowed view of this value.
    pub fn as_ref(&self) -> ValueRef<'_> {
        match self {
            Value::Null => ValueRef::Null,
            Value::Int(v) => ValueRef::Int(*v),
            Value::Float(v) => ValueRef::Float(*v),
            Value::Bool(v) => ValueRef::Bool(*v),
            Value::Str(s) => ValueRef::Str(s),
        }
    }
}

impl fmt::Display for Value {
    fmt_display_value!();
}

/// A borrowed scalar value, as returned by row accessors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// Missing value.
    Null,
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// String value.
    Str(&'a str),
}

impl<'a> ValueRef<'a> {
    /// True if the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Numeric view, coercing integers to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ValueRef::Int(v) => Some(*v as f64),
            ValueRef::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&'a str> {
        match self {
            ValueRef::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Promote to an owned [`Value`].
    pub fn to_owned(&self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int(v) => Value::Int(*v),
            ValueRef::Float(v) => Value::Float(*v),
            ValueRef::Bool(v) => Value::Bool(*v),
            ValueRef::Str(s) => Value::Str((*s).to_string()),
        }
    }

    /// Hashable canonical key for grouping and counting.
    pub fn key(&self) -> ValueKey {
        match self {
            ValueRef::Null => ValueKey::Null,
            ValueRef::Int(v) => ValueKey::Int(*v),
            ValueRef::Float(v) => ValueKey::F64(canonical_f64_bits(*v)),
            ValueRef::Bool(v) => ValueKey::Bool(*v),
            ValueRef::Str(s) => ValueKey::Str((*s).to_string()),
        }
    }
}

impl fmt::Display for ValueRef<'_> {
    fmt_display_value!();
}

/// Canonicalize a float's bit pattern so that `-0.0 == 0.0` and all NaNs
/// collapse to one key.
fn canonical_f64_bits(v: f64) -> u64 {
    if v.is_nan() {
        f64::NAN.to_bits()
    } else if v == 0.0 {
        0.0f64.to_bits()
    } else {
        v.to_bits()
    }
}

/// A hashable, totally-ordered canonical form of a value, used as a grouping
/// key and for value-frequency counting.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueKey {
    /// Missing value.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value by canonical bit pattern.
    F64(u64),
    /// Boolean value.
    Bool(bool),
    /// String value.
    Str(String),
}

impl ValueKey {
    /// Recover a [`Value`] from the key.
    pub fn to_value(&self) -> Value {
        match self {
            ValueKey::Null => Value::Null,
            ValueKey::Int(v) => Value::Int(*v),
            ValueKey::F64(bits) => Value::Float(f64::from_bits(*bits)),
            ValueKey::Bool(v) => Value::Bool(*v),
            ValueKey::Str(s) => Value::Str(s.clone()),
        }
    }

    /// Rank used to order keys of different variants deterministically.
    fn variant_rank(&self) -> u8 {
        match self {
            ValueKey::Null => 0,
            ValueKey::Bool(_) => 1,
            ValueKey::Int(_) => 2,
            ValueKey::F64(_) => 3,
            ValueKey::Str(_) => 4,
        }
    }
}

impl Ord for ValueKey {
    fn cmp(&self, other: &Self) -> Ordering {
        use ValueKey::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (F64(a), F64(b)) => f64::from_bits(*a)
                .partial_cmp(&f64::from_bits(*b))
                .unwrap_or(Ordering::Equal),
            // Numeric cross-variant comparison keeps mixed int/float keys sane.
            (Int(a), F64(b)) => (*a as f64)
                .partial_cmp(&f64::from_bits(*b))
                .unwrap_or(Ordering::Equal),
            (F64(a), Int(b)) => f64::from_bits(*a)
                .partial_cmp(&(*b as f64))
                .unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

impl PartialOrd for ValueKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for ValueKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_value())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_dtype_and_null() {
        assert_eq!(Value::Int(1).dtype(), Some(DType::Int));
        assert_eq!(Value::Null.dtype(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Bool(false).is_null());
    }

    #[test]
    fn value_numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn value_key_float_canonicalization() {
        let a = ValueRef::Float(0.0).key();
        let b = ValueRef::Float(-0.0).key();
        assert_eq!(a, b);
        let n1 = ValueRef::Float(f64::NAN).key();
        let n2 = ValueRef::Float(-f64::NAN).key();
        assert_eq!(n1, n2);
    }

    #[test]
    fn value_key_ordering() {
        let mut keys = [
            ValueKey::Str("b".into()),
            ValueKey::Int(2),
            ValueKey::Null,
            ValueKey::Int(1),
            ValueKey::Str("a".into()),
        ];
        keys.sort();
        assert_eq!(keys[0], ValueKey::Null);
        assert_eq!(keys[1], ValueKey::Int(1));
        assert_eq!(keys[2], ValueKey::Int(2));
        assert_eq!(keys[3], ValueKey::Str("a".into()));
    }

    #[test]
    fn mixed_numeric_key_ordering() {
        let a = ValueKey::Int(2);
        let b = ValueKey::F64(2.5f64.to_bits());
        assert!(a < b);
        assert!(b > a);
    }

    #[test]
    fn display_round_trips() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(1.0).to_string(), "1.0");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(1.5f64)), Value::Float(1.5));
    }

    #[test]
    fn value_ref_round_trip() {
        let v = Value::Str("abc".into());
        let r = v.as_ref();
        assert_eq!(r.as_str(), Some("abc"));
        assert_eq!(r.to_owned(), v);
    }
}
