//! The [`DataFrame`]: an immutable, columnar, in-memory table.

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::filter::Predicate;
use crate::memo::FrameMemo;
use crate::schema::{AttrRole, Field, Schema};
use crate::value::{DType, Value, ValueRef};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An immutable columnar table.
///
/// Frames are cheap to clone (columns are shared via `Arc`); all mutating
/// operations return new frames. Row counts in the ATENA workloads are small
/// (≤ ~14k rows, Table 1 of the paper), so filters materialize row indices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataFrame {
    schema: Schema,
    columns: Vec<Arc<Column>>,
    n_rows: usize,
    /// Lazily computed derived statistics, shared by clones of this frame
    /// (immutability makes that sound; see `memo.rs`). Deserialized frames
    /// start with a cold memo.
    #[serde(skip)]
    memo: Arc<FrameMemo>,
}

impl DataFrame {
    /// Create an empty frame with no columns.
    pub fn empty() -> Self {
        Self {
            schema: Schema::default(),
            columns: Vec::new(),
            n_rows: 0,
            memo: Arc::default(),
        }
    }

    /// The per-frame memo of derived statistics (crate-internal).
    pub(crate) fn memo(&self) -> &FrameMemo {
        &self.memo
    }

    /// Look up — or build and memoize — a caller-defined value derived from
    /// this frame's content. The memo is shared by every clone of the frame,
    /// so downstream crates can hang their own per-frame caches off it.
    ///
    /// `key` must uniquely identify the derivation among values of type `T`
    /// (hash its parameters with [`crate::StableHasher`]); entries are also
    /// keyed by `T`'s type, so distinct types never collide. `build` must be
    /// a deterministic pure function of the frame's content — a memo hit
    /// returns bit-identical data to recomputation, which is what the
    /// determinism contract requires. `build` runs under the memo lock
    /// (exactly one build per key) and must not recurse into this method.
    pub fn memo_extension<T: Send + Sync + 'static>(
        &self,
        key: u64,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        let mut map = self.memo.extensions.lock().unwrap();
        let entry = map
            .entry((key, std::any::TypeId::of::<T>()))
            .or_insert_with(|| Arc::new(build()) as Arc<dyn std::any::Any + Send + Sync>);
        Arc::clone(entry)
            .downcast::<T>()
            .expect("entry is keyed by TypeId, so the downcast cannot fail")
    }

    /// Create a frame from (field, column) pairs, validating lengths and
    /// physical types.
    pub fn new(pairs: Vec<(Field, Column)>) -> Result<Self> {
        let n_rows = pairs.first().map_or(0, |(_, c)| c.len());
        let mut fields = Vec::with_capacity(pairs.len());
        let mut columns = Vec::with_capacity(pairs.len());
        for (field, column) in pairs {
            if column.len() != n_rows {
                return Err(DataFrameError::LengthMismatch {
                    expected: n_rows,
                    actual: column.len(),
                    column: field.name,
                });
            }
            if column.dtype() != field.dtype {
                return Err(DataFrameError::TypeMismatch {
                    expected: field.dtype.name(),
                    actual: column.dtype().name(),
                });
            }
            fields.push(field);
            columns.push(Arc::new(column));
        }
        Ok(Self {
            schema: Schema::new(fields)?,
            columns,
            n_rows,
            memo: Arc::default(),
        })
    }

    /// Builder-style construction used pervasively in tests and generators.
    pub fn builder() -> DataFrameBuilder {
        DataFrameBuilder::default()
    }

    /// The schema of the frame.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// True if the frame has zero rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Approximate resident heap bytes across all columns (plus a small
    /// fixed overhead per column for schema metadata). The dataset
    /// registry charges this figure against its memory budget.
    pub fn approx_bytes(&self) -> usize {
        const PER_COLUMN_OVERHEAD: usize = 64;
        self.columns
            .iter()
            .map(|c| c.approx_bytes() + PER_COLUMN_OVERHEAD)
            .sum()
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// Column by position.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Scalar value at (row, column-name).
    pub fn value(&self, row: usize, name: &str) -> Result<ValueRef<'_>> {
        self.column(name)?.try_get(row)
    }

    /// Indices of rows satisfying the predicate.
    pub fn filter_indices(&self, pred: &Predicate) -> Result<Vec<usize>> {
        let col = self.column(&pred.attr)?;
        pred.validate(col.dtype())?;
        let mut out = Vec::new();
        for i in 0..col.len() {
            if pred.matches(col.get(i)) {
                out.push(i);
            }
        }
        Ok(out)
    }

    /// New frame containing only rows satisfying the predicate.
    pub fn filter(&self, pred: &Predicate) -> Result<DataFrame> {
        let rows = self.filter_indices(pred)?;
        Ok(self.take(&rows))
    }

    /// Gather the given row indices into a new frame.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn take(&self, rows: &[usize]) -> DataFrame {
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.take(rows)))
            .collect();
        DataFrame {
            schema: self.schema.clone(),
            columns,
            n_rows: rows.len(),
            memo: Arc::default(),
        }
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let n = n.min(self.n_rows);
        let rows: Vec<usize> = (0..n).collect();
        self.take(&rows)
    }

    /// New frame with rows sorted by the given column (nulls last).
    pub fn sort_by(&self, name: &str, descending: bool) -> Result<DataFrame> {
        let col = self.column(name)?;
        let mut idx: Vec<usize> = (0..self.n_rows).collect();
        idx.sort_by(|&a, &b| {
            let (va, vb) = (col.get(a).key(), col.get(b).key());
            let ord = match (
                va == crate::value::ValueKey::Null,
                vb == crate::value::ValueKey::Null,
            ) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => {
                    if descending {
                        vb.cmp(&va)
                    } else {
                        va.cmp(&vb)
                    }
                }
            };
            ord.then(a.cmp(&b))
        });
        Ok(self.take(&idx))
    }

    /// Project a subset of columns into a new frame.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut fields = Vec::with_capacity(names.len());
        let mut columns = Vec::with_capacity(names.len());
        for &name in names {
            let idx = self.schema.index_of(name)?;
            fields.push(self.schema.field_at(idx).clone());
            columns.push(self.columns[idx].clone());
        }
        Ok(DataFrame {
            schema: Schema::new(fields)?,
            columns,
            n_rows: self.n_rows,
            memo: Arc::default(),
        })
    }

    /// One row as owned values, in schema order.
    pub fn row(&self, i: usize) -> Result<Vec<Value>> {
        if i >= self.n_rows {
            return Err(DataFrameError::RowOutOfBounds {
                index: i,
                len: self.n_rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.get(i).to_owned()).collect())
    }
}

impl fmt::Display for DataFrame {
    /// Render a compact table preview (up to 10 rows), used in notebooks.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview = 10.min(self.n_rows);
        let names = self.schema.names();
        // Column widths.
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(preview);
        for r in 0..preview {
            let row: Vec<String> = (0..self.n_cols())
                .map(|c| self.columns[c].get(r).to_string())
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        for (name, w) in names.iter().zip(&widths) {
            write!(f, "| {name:w$} ")?;
        }
        writeln!(f, "|")?;
        for w in &widths {
            write!(f, "|{}", "-".repeat(w + 2))?;
        }
        writeln!(f, "|")?;
        for row in &cells {
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, "| {cell:w$} ")?;
            }
            writeln!(f, "|")?;
        }
        if self.n_rows > preview {
            writeln!(f, "... {} rows total", self.n_rows)?;
        }
        Ok(())
    }
}

/// Incremental builder for [`DataFrame`].
#[derive(Default)]
pub struct DataFrameBuilder {
    pairs: Vec<(Field, Column)>,
    error: Option<DataFrameError>,
}

impl DataFrameBuilder {
    /// Add an integer column.
    pub fn int(
        mut self,
        name: &str,
        role: AttrRole,
        values: impl IntoIterator<Item = Option<i64>>,
    ) -> Self {
        self.pairs.push((
            Field::new(name, DType::Int, role),
            Column::from_ints(values),
        ));
        self
    }

    /// Add a float column.
    pub fn float(
        mut self,
        name: &str,
        role: AttrRole,
        values: impl IntoIterator<Item = Option<f64>>,
    ) -> Self {
        self.pairs.push((
            Field::new(name, DType::Float, role),
            Column::from_floats(values),
        ));
        self
    }

    /// Add a boolean column.
    pub fn bool(
        mut self,
        name: &str,
        role: AttrRole,
        values: impl IntoIterator<Item = Option<bool>>,
    ) -> Self {
        self.pairs.push((
            Field::new(name, DType::Bool, role),
            Column::from_bools(values),
        ));
        self
    }

    /// Add a string column.
    pub fn str<'a>(
        mut self,
        name: &str,
        role: AttrRole,
        values: impl IntoIterator<Item = Option<&'a str>>,
    ) -> Self {
        self.pairs.push((
            Field::new(name, DType::Str, role),
            Column::from_strs(values),
        ));
        self
    }

    /// Add a string column from owned strings.
    pub fn str_owned(
        mut self,
        name: &str,
        role: AttrRole,
        values: impl IntoIterator<Item = Option<String>>,
    ) -> Self {
        let mut col = crate::column::StrColumn::new();
        for v in values {
            col.push(v.as_deref());
        }
        self.pairs
            .push((Field::new(name, DType::Str, role), Column::Str(col)));
        self
    }

    /// Add a pre-built column.
    pub fn column(mut self, field: Field, column: Column) -> Self {
        self.pairs.push((field, column));
        self
    }

    /// Finish, validating lengths and duplicates.
    pub fn build(self) -> Result<DataFrame> {
        if let Some(e) = self.error {
            return Err(e);
        }
        DataFrame::new(self.pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::CmpOp;

    fn flights() -> DataFrame {
        DataFrame::builder()
            .str(
                "airline",
                AttrRole::Categorical,
                vec![Some("AA"), Some("DL"), Some("AA"), Some("UA"), None],
            )
            .int(
                "delay",
                AttrRole::Numeric,
                vec![Some(10), Some(-3), Some(45), Some(0), Some(7)],
            )
            .float(
                "distance",
                AttrRole::Numeric,
                vec![Some(500.0), Some(1200.0), Some(500.0), None, Some(800.0)],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let df = flights();
        assert_eq!(df.n_rows(), 5);
        assert_eq!(df.n_cols(), 3);
        assert_eq!(df.schema().names(), vec!["airline", "delay", "distance"]);
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = DataFrame::builder()
            .int("a", AttrRole::Numeric, vec![Some(1)])
            .int("b", AttrRole::Numeric, vec![Some(1), Some(2)])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataFrameError::LengthMismatch { .. }));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = DataFrame::builder()
            .int("a", AttrRole::Numeric, vec![Some(1)])
            .int("a", AttrRole::Numeric, vec![Some(2)])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataFrameError::DuplicateColumn(_)));
    }

    #[test]
    fn filter_numeric() {
        let df = flights();
        let out = df
            .filter(&Predicate::new("delay", CmpOp::Gt, 5i64))
            .unwrap();
        assert_eq!(out.n_rows(), 3); // 10, 45, 7
        assert_eq!(out.value(0, "delay").unwrap(), ValueRef::Int(10));
    }

    #[test]
    fn filter_string_eq() {
        let df = flights();
        let out = df
            .filter(&Predicate::new("airline", CmpOp::Eq, "AA"))
            .unwrap();
        assert_eq!(out.n_rows(), 2);
    }

    #[test]
    fn filter_missing_column() {
        let df = flights();
        let err = df
            .filter(&Predicate::new("nope", CmpOp::Eq, 1i64))
            .unwrap_err();
        assert!(matches!(err, DataFrameError::ColumnNotFound(_)));
    }

    #[test]
    fn filter_incompatible_op() {
        let df = flights();
        let err = df
            .filter(&Predicate::new("delay", CmpOp::Contains, "4"))
            .unwrap_err();
        assert!(matches!(err, DataFrameError::IncompatibleOp { .. }));
    }

    #[test]
    fn sort_nulls_last() {
        let df = flights();
        let sorted = df.sort_by("distance", false).unwrap();
        assert_eq!(sorted.value(0, "distance").unwrap(), ValueRef::Float(500.0));
        assert!(sorted.value(4, "distance").unwrap().is_null());
        let desc = df.sort_by("distance", true).unwrap();
        assert_eq!(desc.value(0, "distance").unwrap(), ValueRef::Float(1200.0));
        assert!(desc.value(4, "distance").unwrap().is_null());
    }

    #[test]
    fn select_and_head() {
        let df = flights();
        let sel = df.select(&["delay"]).unwrap();
        assert_eq!(sel.n_cols(), 1);
        assert_eq!(sel.n_rows(), 5);
        let h = df.head(2);
        assert_eq!(h.n_rows(), 2);
        assert_eq!(df.head(99).n_rows(), 5);
    }

    #[test]
    fn row_access() {
        let df = flights();
        let row = df.row(1).unwrap();
        assert_eq!(row[0], Value::Str("DL".into()));
        assert_eq!(row[1], Value::Int(-3));
        assert!(df.row(9).is_err());
    }

    #[test]
    fn display_renders_header() {
        let df = flights();
        let s = df.to_string();
        assert!(s.contains("airline"));
        assert!(s.contains("delay"));
    }
}
