//! Schema: named, typed fields with semantic roles.

use crate::error::{DataFrameError, Result};
use crate::value::DType;
use serde::{Deserialize, Serialize};

/// Semantic role of an attribute, used by the coherency rules of the reward
/// signal (e.g. "group-by on a continuous numerical attribute is incoherent",
/// "aggregating an identifier column is incoherent").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrRole {
    /// Continuous numeric measurement (delay minutes, packet length, ...).
    Numeric,
    /// Low-cardinality category (airline, protocol, day-of-week, ...).
    Categorical,
    /// Free-form text (URLs, info strings, ...).
    Text,
    /// Row or entity identifier (flight number, packet id, ...).
    Identifier,
    /// Timestamp-like ordinal.
    Temporal,
}

impl AttrRole {
    /// Static lowercase name used in schema listings and error messages.
    pub fn name(self) -> &'static str {
        match self {
            AttrRole::Numeric => "numeric",
            AttrRole::Categorical => "categorical",
            AttrRole::Text => "text",
            AttrRole::Identifier => "identifier",
            AttrRole::Temporal => "temporal",
        }
    }

    /// Heuristic role inference from physical type and cardinality, used when
    /// the caller does not annotate roles (e.g. CSV ingestion).
    pub fn infer(dtype: DType, n_distinct: usize, n_rows: usize) -> AttrRole {
        match dtype {
            DType::Bool => AttrRole::Categorical,
            DType::Str => {
                if n_rows > 0 && n_distinct * 2 >= n_rows && n_distinct > 20 {
                    AttrRole::Text
                } else {
                    AttrRole::Categorical
                }
            }
            DType::Int | DType::Float => {
                if n_rows > 0 && n_distinct * 2 >= n_rows && n_distinct > 20 {
                    AttrRole::Numeric
                } else if n_distinct <= 50 {
                    AttrRole::Categorical
                } else {
                    AttrRole::Numeric
                }
            }
        }
    }
}

impl std::fmt::Display for AttrRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, typed field of a dataframe.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Physical data type.
    pub dtype: DType,
    /// Semantic role for coherency rules.
    pub role: AttrRole,
}

impl Field {
    /// Create a field with an explicit role.
    pub fn new(name: impl Into<String>, dtype: DType, role: AttrRole) -> Self {
        Self {
            name: name.into(),
            dtype,
            role,
        }
    }
}

/// Ordered collection of fields.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Create a schema from fields, rejecting duplicate names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut seen = std::collections::BTreeSet::new();
        for f in &fields {
            if !seen.insert(f.name.as_str()) {
                return Err(DataFrameError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Self { fields })
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Positional index of a field by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| DataFrameError::ColumnNotFound(name.to_string()))
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Field by position.
    pub fn field_at(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Append a field, rejecting duplicates.
    pub fn push(&mut self, field: Field) -> Result<()> {
        if self.fields.iter().any(|f| f.name == field.name) {
            return Err(DataFrameError::DuplicateColumn(field.name));
        }
        self.fields.push(field);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("a", DType::Int, AttrRole::Numeric),
            Field::new("b", DType::Str, AttrRole::Categorical),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.field("a").unwrap().dtype, DType::Int);
        assert!(matches!(
            s.index_of("zzz"),
            Err(DataFrameError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn rejects_duplicates() {
        let err = Schema::new(vec![
            Field::new("x", DType::Int, AttrRole::Numeric),
            Field::new("x", DType::Str, AttrRole::Text),
        ])
        .unwrap_err();
        assert!(matches!(err, DataFrameError::DuplicateColumn(_)));

        let mut s = sample();
        assert!(s
            .push(Field::new("a", DType::Bool, AttrRole::Categorical))
            .is_err());
        assert!(s
            .push(Field::new("c", DType::Bool, AttrRole::Categorical))
            .is_ok());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn role_inference() {
        // High-cardinality string -> Text
        assert_eq!(AttrRole::infer(DType::Str, 900, 1000), AttrRole::Text);
        // Low-cardinality string -> Categorical
        assert_eq!(AttrRole::infer(DType::Str, 5, 1000), AttrRole::Categorical);
        // High-cardinality float -> Numeric
        assert_eq!(AttrRole::infer(DType::Float, 800, 1000), AttrRole::Numeric);
        // Small-domain int -> Categorical
        assert_eq!(AttrRole::infer(DType::Int, 7, 1000), AttrRole::Categorical);
        assert_eq!(AttrRole::infer(DType::Bool, 2, 10), AttrRole::Categorical);
    }
}
