//! Simulated analyst EDA traces (paper §6.1, baseline 2).
//!
//! The paper replays sessions recorded from experienced analysts pursuing a
//! known goal [42]. Those recordings are not redistributable, so we
//! simulate the *character* the paper attributes to them: goal-directed but
//! not demonstrative — analysts wander, repeat themselves, hit dead ends,
//! and never curate for a reader. Each trace interleaves steps drawn from
//! the dataset's goal-relevant move pool with exploratory noise and
//! backtracking.

use crate::spec::ExperimentalDataset;
use atena_dataframe::{AggFunc, CmpOp, Predicate, Value};
use atena_env::ResolvedOp;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the trace simulator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceConfig {
    /// Operations per trace.
    pub length: usize,
    /// Probability of taking the next goal-directed move (vs. wandering).
    pub goal_directedness: f64,
    /// Probability of a BACK when wandering.
    pub back_prob: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            length: 12,
            goal_directedness: 0.45,
            back_prob: 0.25,
            seed: 0,
        }
    }
}

/// Generate `n` simulated analyst traces for a dataset.
///
/// The goal-directed move pool is the union of the dataset's gold-standard
/// operations (what an expert knows is worth looking at); wandering draws
/// random-but-wellformed operations from the schema.
pub fn simulate_traces(
    dataset: &ExperimentalDataset,
    n: usize,
    config: TraceConfig,
) -> Vec<Vec<ResolvedOp>> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7ace);
    let pool: Vec<ResolvedOp> = dataset
        .gold_standards
        .iter()
        .flatten()
        .filter(|op| !matches!(op, ResolvedOp::Back))
        .cloned()
        .collect();

    (0..n)
        .map(|_| {
            let mut trace = Vec::with_capacity(config.length);
            // Analysts follow a rough plan: a shuffled copy of the pool.
            let mut plan = pool.clone();
            plan.shuffle(&mut rng);
            let mut plan_iter = plan.into_iter();
            while trace.len() < config.length {
                if rng.gen_bool(config.goal_directedness) {
                    if let Some(op) = plan_iter.next() {
                        // Analysts repeat themselves occasionally.
                        if rng.gen_bool(0.12) && !trace.is_empty() {
                            let dup: &ResolvedOp = &trace[rng.gen_range(0..trace.len())];
                            trace.push(dup.clone());
                        }
                        trace.push(op);
                        continue;
                    }
                }
                if rng.gen_bool(config.back_prob) {
                    trace.push(ResolvedOp::Back);
                } else {
                    trace.push(random_wander(dataset, &mut rng));
                }
            }
            trace.truncate(config.length);
            trace
        })
        .collect()
}

/// A random but type-well-formed operation over the dataset's schema.
fn random_wander(dataset: &ExperimentalDataset, rng: &mut StdRng) -> ResolvedOp {
    let schema = dataset.frame.schema();
    let fields = schema.fields();
    if rng.gen_bool(0.5) {
        // Random grouping: categorical key, numeric agg when possible.
        let key = fields[rng.gen_range(0..fields.len())].name.clone();
        let numeric: Vec<&str> = fields
            .iter()
            .filter(|f| f.dtype.is_numeric())
            .map(|f| f.name.as_str())
            .collect();
        let agg = if numeric.is_empty() {
            key.clone()
        } else {
            numeric[rng.gen_range(0..numeric.len())].to_string()
        };
        let func = [AggFunc::Count, AggFunc::Avg, AggFunc::Max][rng.gen_range(0..3)];
        ResolvedOp::Group { key, func, agg }
    } else {
        // Random equality filter on a frequent token.
        let field = &fields[rng.gen_range(0..fields.len())];
        let col = dataset.frame.column(&field.name).expect("schema field");
        let mut counts: Vec<(Value, usize)> = col
            .value_counts()
            .into_iter()
            .map(|(k, c)| (k.to_value(), c))
            .collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.to_string().cmp(&b.0.to_string())));
        counts.truncate(8);
        if counts.is_empty() {
            return ResolvedOp::Back;
        }
        let term = counts[rng.gen_range(0..counts.len())].0.clone();
        let op = if field.dtype.is_numeric() && rng.gen_bool(0.4) {
            if rng.gen_bool(0.5) {
                CmpOp::Ge
            } else {
                CmpOp::Le
            }
        } else {
            CmpOp::Eq
        };
        ResolvedOp::Filter(Predicate {
            attr: field.name.clone(),
            op,
            term,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyber::cyber2;
    use atena_core::Notebook;

    #[test]
    fn traces_have_requested_shape() {
        let d = cyber2();
        let traces = simulate_traces(&d, 5, TraceConfig::default());
        assert_eq!(traces.len(), 5);
        for t in &traces {
            assert_eq!(t.len(), 12);
        }
    }

    #[test]
    fn traces_are_goal_directed_but_noisy() {
        let d = cyber2();
        let traces = simulate_traces(&d, 10, TraceConfig::default());
        let pool: Vec<ResolvedOp> = d
            .gold_standards
            .iter()
            .flatten()
            .filter(|op| !matches!(op, ResolvedOp::Back))
            .cloned()
            .collect();
        let mut from_pool = 0usize;
        let mut total = 0usize;
        for t in &traces {
            for op in t {
                total += 1;
                if pool.contains(op) {
                    from_pool += 1;
                }
            }
        }
        let frac = from_pool as f64 / total as f64;
        assert!(frac > 0.25, "too little goal direction: {frac}");
        assert!(frac < 0.95, "traces should contain noise: {frac}");
    }

    #[test]
    fn traces_mostly_replay_cleanly() {
        let d = cyber2();
        let traces = simulate_traces(&d, 6, TraceConfig::default());
        for t in traces {
            let nb = Notebook::replay(&d.spec.name, &d.frame, &t);
            let invalid = nb
                .entries
                .iter()
                .filter(|e| !e.outcome.is_applied())
                .count();
            // Wandering can produce an occasional dead op, but most steps work.
            assert!(invalid <= 3, "{invalid} invalid ops in a 12-op trace");
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let d = cyber2();
        let a = simulate_traces(
            &d,
            3,
            TraceConfig {
                seed: 5,
                ..Default::default()
            },
        );
        let b = simulate_traces(
            &d,
            3,
            TraceConfig {
                seed: 5,
                ..Default::default()
            },
        );
        assert_eq!(a, b);
        let c = simulate_traces(
            &d,
            3,
            TraceConfig {
                seed: 6,
                ..Default::default()
            },
        );
        assert_ne!(a, c);
    }
}
