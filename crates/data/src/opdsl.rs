//! Tiny helpers for hand-authoring gold-standard operation sequences.

use atena_dataframe::{AggFunc, CmpOp, Predicate, Value};
use atena_env::ResolvedOp;

/// `FILTER(attr op term)`.
pub fn f(attr: &str, op: CmpOp, term: impl Into<Value>) -> ResolvedOp {
    ResolvedOp::Filter(Predicate::new(attr, op, term))
}

/// `GROUP(key, func, agg)`.
pub fn g(key: &str, func: AggFunc, agg: &str) -> ResolvedOp {
    ResolvedOp::Group {
        key: key.to_string(),
        func,
        agg: agg.to_string(),
    }
}

/// `BACK()`.
pub fn b() -> ResolvedOp {
    ResolvedOp::Back
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_env::OpType;

    #[test]
    fn dsl_builds_ops() {
        assert_eq!(f("x", CmpOp::Eq, 1i64).op_type(), OpType::Filter);
        assert_eq!(g("x", AggFunc::Count, "y").op_type(), OpType::Group);
        assert_eq!(b().op_type(), OpType::Back);
    }
}
