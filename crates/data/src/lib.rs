//! # atena-data
//!
//! The experimental datasets of the paper's evaluation (§6.1, Table 1),
//! rebuilt as deterministic synthetic generators (see DESIGN.md §3 for the
//! substitution rationale):
//!
//! - four **cyber-security captures** (ICMP range scan, remote code
//!   execution, phishing, TCP port scan) over a honeynet-style packet
//!   schema, with the challenge "official solutions" planted as
//!   machine-checkable [`Insight`]s;
//! - four **flight-delay subsets** over a Kaggle-2015-style schema with
//!   planted delay phenomena;
//! - hand-authored **gold-standard notebooks** (5–7 per dataset) expressed
//!   in the supported operation set;
//! - a **simulated analyst-trace** generator reproducing the
//!   goal-directed-but-uncurated character of the recorded sessions the
//!   paper replays.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cyber;
pub mod flights;
mod insights;
mod opdsl;
mod packets;
mod spec;
mod traces;

pub use cyber::{all_cyber, cyber1, cyber2, cyber3, cyber4};
pub use flights::{all_flights, flights1, flights2, flights3, flights4};
pub use insights::{insight_coverage, Insight, InsightCheck};
pub use opdsl::{b, f, g};
pub use packets::{background_traffic, build_frame, internal_host, Packet};
pub use spec::{Collection, DatasetSpec, ExperimentalDataset};
pub use traces::{simulate_traces, TraceConfig};

/// All eight experimental datasets, in Table 1 order.
pub fn all_datasets() -> Vec<ExperimentalDataset> {
    let mut v = all_cyber();
    v.extend(all_flights());
    v
}

/// Look up a dataset by its stable id (`cyber1` … `flights4`).
pub fn dataset_by_id(id: &str) -> Option<ExperimentalDataset> {
    all_datasets().into_iter().find(|d| d.spec.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_datasets_in_table1_order() {
        let all = all_datasets();
        assert_eq!(all.len(), 8);
        let ids: Vec<&str> = all.iter().map(|d| d.spec.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "cyber1", "cyber2", "cyber3", "cyber4", "flights1", "flights2", "flights3",
                "flights4"
            ]
        );
        let rows: Vec<usize> = all.iter().map(|d| d.spec.rows).collect();
        assert_eq!(rows, vec![8648, 348, 745, 13625, 5661, 8172, 1082, 2175]);
        for d in &all {
            assert_eq!(d.frame.n_rows(), d.spec.rows, "{}", d.spec.id);
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(dataset_by_id("cyber3").is_some());
        assert!(dataset_by_id("nope").is_none());
    }

    #[test]
    fn focal_attrs_match_paper() {
        let c = dataset_by_id("cyber1").unwrap();
        assert_eq!(c.focal_attrs(), vec!["source_ip", "destination_ip"]);
        let f = dataset_by_id("flights2").unwrap();
        assert_eq!(f.focal_attrs(), vec!["departure_delay", "arrival_delay"]);
    }
}
