//! Dataset specifications and the bundled experimental artifacts.

use crate::insights::Insight;
use atena_dataframe::DataFrame;
use atena_env::ResolvedOp;
use serde::{Deserialize, Serialize};

/// Which collection a dataset belongs to (paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collection {
    /// Cyber-security challenge captures (Table 1, Cyber #1–#4).
    Cyber,
    /// Flight-delay subsets (Table 1, Flights #1–#4).
    Flights,
}

impl Collection {
    /// The focal attributes used in the paper's experiments (§6.1):
    /// `source_ip`/`destination_ip` for cyber, the delay columns for
    /// flights.
    pub fn focal_attrs(&self) -> Vec<String> {
        match self {
            Collection::Cyber => vec!["source_ip".into(), "destination_ip".into()],
            Collection::Flights => {
                vec!["departure_delay".into(), "arrival_delay".into()]
            }
        }
    }
}

/// Metadata of an experimental dataset (one Table 1 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Stable id, e.g. `cyber1`.
    pub id: String,
    /// Display name, e.g. `Cyber #1`.
    pub name: String,
    /// Table 1 description.
    pub description: String,
    /// Row count (matches Table 1 exactly).
    pub rows: usize,
    /// Collection.
    pub collection: Collection,
}

/// A fully materialized experimental dataset: data, planted insights,
/// gold-standard notebooks, and simulated analyst traces.
pub struct ExperimentalDataset {
    /// Metadata.
    pub spec: DatasetSpec,
    /// The data.
    pub frame: DataFrame,
    /// The planted insight list (the "official solution").
    pub insights: Vec<Insight>,
    /// Gold-standard notebooks: curated operation sequences authored to
    /// guide a reader through the planted phenomena (5–7 per dataset).
    pub gold_standards: Vec<Vec<ResolvedOp>>,
    /// The exploration goal shown to analysts (and used by the trace
    /// simulator).
    pub goal: String,
}

impl ExperimentalDataset {
    /// Focal attributes for this dataset.
    pub fn focal_attrs(&self) -> Vec<String> {
        self.spec.collection.focal_attrs()
    }
}
