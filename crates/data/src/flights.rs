//! The four flight-delay datasets (Table 1): synthetic subsets shaped like
//! the Kaggle 2015 flight-delays database, each with planted delay
//! phenomena, gold-standard notebooks, and the shared exploration goal of
//! characterizing flight delays.

use crate::insights::{Insight, InsightCheck};
use crate::opdsl::{b, f, g};
use crate::spec::{Collection, DatasetSpec, ExperimentalDataset};
use atena_dataframe::{AggFunc, AttrRole, CmpOp, DataFrame, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MONTHS: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];
const DAYS: [&str; 7] = [
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
];

/// One flight record.
#[derive(Debug, Clone)]
struct FlightRow {
    month: &'static str,
    day_of_week: &'static str,
    airline: &'static str,
    flight_number: i64,
    origin: String,
    destination: String,
    scheduled_hour: i64,
    departure_delay: i64,
    arrival_delay: i64,
    distance: i64,
    air_time: i64,
    cancelled: bool,
}

fn build_frame(rows: &[FlightRow]) -> DataFrame {
    DataFrame::builder()
        .str(
            "month",
            AttrRole::Categorical,
            rows.iter().map(|r| Some(r.month)),
        )
        .str(
            "day_of_week",
            AttrRole::Categorical,
            rows.iter().map(|r| Some(r.day_of_week)),
        )
        .str(
            "airline",
            AttrRole::Categorical,
            rows.iter().map(|r| Some(r.airline)),
        )
        .int(
            "flight_number",
            AttrRole::Identifier,
            rows.iter().map(|r| Some(r.flight_number)),
        )
        .str_owned(
            "origin_airport",
            AttrRole::Categorical,
            rows.iter().map(|r| Some(r.origin.clone())),
        )
        .str_owned(
            "destination_airport",
            AttrRole::Categorical,
            rows.iter().map(|r| Some(r.destination.clone())),
        )
        .int(
            "scheduled_departure",
            AttrRole::Categorical,
            rows.iter().map(|r| Some(r.scheduled_hour)),
        )
        .int(
            "departure_delay",
            AttrRole::Numeric,
            rows.iter().map(|r| Some(r.departure_delay)),
        )
        .int(
            "arrival_delay",
            AttrRole::Numeric,
            rows.iter().map(|r| Some(r.arrival_delay)),
        )
        .int(
            "distance",
            AttrRole::Numeric,
            rows.iter().map(|r| Some(r.distance)),
        )
        .int(
            "air_time",
            AttrRole::Numeric,
            rows.iter().map(|r| Some(r.air_time)),
        )
        .bool(
            "cancelled",
            AttrRole::Categorical,
            rows.iter().map(|r| Some(r.cancelled)),
        )
        .build()
        .expect("flight schema is consistent")
}

fn spec(id: &str, name: &str, description: &str, rows: usize) -> DatasetSpec {
    DatasetSpec {
        id: id.into(),
        name: name.into(),
        description: description.into(),
        rows,
        collection: Collection::Flights,
    }
}

/// Baseline delay noise in minutes.
fn base_delay(rng: &mut StdRng) -> i64 {
    // Mostly on time, occasionally late: a clipped exponential-ish tail.
    let u: f64 = rng.gen();
    if u < 0.55 {
        rng.gen_range(-8..5)
    } else if u < 0.9 {
        rng.gen_range(5..30)
    } else {
        rng.gen_range(30..120)
    }
}

/// Flights #1 — 5661 rows: American Airlines flights on Sundays.
///
/// Planted phenomena: June has the worst average departure delay; among
/// origins, ORD is the delay hotspot; evening departures (hour 19) are worse
/// than mornings.
pub fn flights1() -> ExperimentalDataset {
    const ROWS: usize = 5661;
    let mut rng = StdRng::seed_from_u64(0xF1);
    let origins = ["DFW", "ORD", "MIA", "LAX", "JFK", "PHX", "CLT"];
    let dests = ["DFW", "ORD", "MIA", "LAX", "JFK", "SEA", "BOS", "DEN"];
    let mut rows = Vec::with_capacity(ROWS);
    for i in 0..ROWS {
        let month = MONTHS[rng.gen_range(0..12)];
        let origin = origins[rng.gen_range(0..origins.len())].to_string();
        let hour = rng.gen_range(6..23);
        let mut dep = base_delay(&mut rng);
        if month == "June" {
            dep += rng.gen_range(25..45);
        }
        if origin == "ORD" {
            dep += rng.gen_range(12..30);
        }
        if hour >= 18 {
            dep += rng.gen_range(5..15);
        }
        let distance = rng.gen_range(300..2600);
        rows.push(FlightRow {
            month,
            day_of_week: "Sunday",
            airline: "AA",
            flight_number: 1000 + (i as i64 % 900),
            origin,
            destination: dests[rng.gen_range(0..dests.len())].to_string(),
            scheduled_hour: hour,
            departure_delay: dep,
            arrival_delay: dep + rng.gen_range(-12..8),
            distance,
            air_time: distance / 8 + rng.gen_range(-10..10),
            cancelled: rng.gen_bool(0.015),
        });
    }
    let frame = build_frame(&rows);

    let insights = vec![
        Insight::new(
            "flights1.june-worst",
            "June has the longest average departure delay of all months.",
            InsightCheck::ExtremeGroup {
                key: "month".into(),
                agg: "departure_delay".into(),
                value: Value::Str("June".into()),
            },
        ),
        Insight::new(
            "flights1.ord-hotspot",
            "ORD departures suffer the worst delays among origin airports.",
            InsightCheck::ExtremeGroup {
                key: "origin_airport".into(),
                agg: "departure_delay".into(),
                value: Value::Str("ORD".into()),
            },
        ),
        Insight::new(
            "flights1.drill-june",
            "The June subset is inspected in isolation.",
            InsightCheck::DrilledInto {
                attr: "month".into(),
                value: Value::Str("June".into()),
            },
        ),
        Insight::new(
            "flights1.hourly-pattern",
            "Delays grow through the day (evening departures are worst).",
            InsightCheck::Examined {
                attr: "scheduled_departure".into(),
            },
        ),
        Insight::new(
            "flights1.delay-focus",
            "Departure delay is the quantity under study.",
            InsightCheck::Examined {
                attr: "departure_delay".into(),
            },
        ),
        Insight::new(
            "flights1.drill-ord",
            "ORD flights are inspected in isolation.",
            InsightCheck::DrilledInto {
                attr: "origin_airport".into(),
                value: Value::Str("ORD".into()),
            },
        ),
    ];

    let gold_standards = vec![
        vec![
            g("month", AggFunc::Avg, "departure_delay"),
            f("month", CmpOp::Eq, "June"),
            g("origin_airport", AggFunc::Avg, "departure_delay"),
            b(),
            b(),
            g("scheduled_departure", AggFunc::Avg, "departure_delay"),
        ],
        vec![
            g("origin_airport", AggFunc::Avg, "departure_delay"),
            f("origin_airport", CmpOp::Eq, "ORD"),
            g("month", AggFunc::Avg, "departure_delay"),
            g("scheduled_departure", AggFunc::Avg, "departure_delay"),
        ],
        vec![
            g("month", AggFunc::Avg, "departure_delay"),
            f("month", CmpOp::Eq, "June"),
            f("origin_airport", CmpOp::Eq, "ORD"),
            g("scheduled_departure", AggFunc::Avg, "departure_delay"),
            b(),
            b(),
            g("destination_airport", AggFunc::Avg, "arrival_delay"),
        ],
        vec![
            g("scheduled_departure", AggFunc::Avg, "departure_delay"),
            f("scheduled_departure", CmpOp::Ge, 18i64),
            g("origin_airport", AggFunc::Avg, "departure_delay"),
            b(),
            g("month", AggFunc::Avg, "departure_delay"),
        ],
        vec![
            g("month", AggFunc::Count, "departure_delay"),
            g("month", AggFunc::Avg, "departure_delay"),
            b(),
            b(),
            f("departure_delay", CmpOp::Ge, 60i64),
            g("origin_airport", AggFunc::Count, "departure_delay"),
            g("month", AggFunc::Count, "departure_delay"),
        ],
    ];

    ExperimentalDataset {
        spec: spec("flights1", "Flights #1", "AA Flights on Sundays", ROWS),
        frame,
        insights,
        gold_standards,
        goal: "investigate the causes of flight delays".into(),
    }
}

/// Flights #2 — 8172 rows: flights departing from Boston.
///
/// Planted phenomena: B6 (JetBlue) is the most delay-prone airline; winter
/// months (January/February) are worst; cancellations cluster in February.
pub fn flights2() -> ExperimentalDataset {
    const ROWS: usize = 8172;
    let mut rng = StdRng::seed_from_u64(0xF2);
    let airlines = ["B6", "DL", "AA", "UA", "WN", "AS"];
    let dests = [
        "JFK", "DCA", "ORD", "ATL", "SFO", "LAX", "MCO", "FLL", "DEN",
    ];
    let mut rows = Vec::with_capacity(ROWS);
    for i in 0..ROWS {
        let month = MONTHS[rng.gen_range(0..12)];
        let airline =
            airlines[(rng.gen_range(0.0f64..1.0).powi(2) * airlines.len() as f64) as usize];
        let mut dep = base_delay(&mut rng);
        if airline == "B6" {
            dep += rng.gen_range(15..35);
        }
        if month == "January" {
            dep += rng.gen_range(22..38);
        } else if month == "February" {
            dep += rng.gen_range(10..20);
        }
        let cancelled = rng.gen_bool(if month == "February" { 0.08 } else { 0.01 });
        let distance = rng.gen_range(180..2700);
        rows.push(FlightRow {
            month,
            day_of_week: DAYS[rng.gen_range(0..7)],
            airline,
            flight_number: 2000 + (i as i64 % 1100),
            origin: "BOS".to_string(),
            destination: dests[rng.gen_range(0..dests.len())].to_string(),
            scheduled_hour: rng.gen_range(5..23),
            departure_delay: dep,
            arrival_delay: dep + rng.gen_range(-10..10),
            distance,
            air_time: distance / 8 + rng.gen_range(-10..10),
            cancelled,
        });
    }
    let frame = build_frame(&rows);

    let insights = vec![
        Insight::new(
            "flights2.b6-worst",
            "JetBlue (B6) has the worst average departure delay.",
            InsightCheck::ExtremeGroup {
                key: "airline".into(),
                agg: "departure_delay".into(),
                value: Value::Str("B6".into()),
            },
        ),
        Insight::new(
            "flights2.winter",
            "Winter months carry the longest delays.",
            InsightCheck::ExtremeGroup {
                key: "month".into(),
                agg: "departure_delay".into(),
                value: Value::Str("January".into()),
            },
        ),
        Insight::new(
            "flights2.drill-b6",
            "The JetBlue subset is inspected in isolation.",
            InsightCheck::DrilledInto {
                attr: "airline".into(),
                value: Value::Str("B6".into()),
            },
        ),
        Insight::new(
            "flights2.cancellations",
            "Cancellations are examined (they cluster in February).",
            InsightCheck::Examined {
                attr: "cancelled".into(),
            },
        ),
        Insight::new(
            "flights2.delay-focus",
            "Departure delay is the quantity under study.",
            InsightCheck::Examined {
                attr: "departure_delay".into(),
            },
        ),
        Insight::new(
            "flights2.by-destination",
            "Delays are broken down by destination.",
            InsightCheck::Examined {
                attr: "destination_airport".into(),
            },
        ),
    ];

    let gold_standards = vec![
        vec![
            g("airline", AggFunc::Avg, "departure_delay"),
            f("airline", CmpOp::Eq, "B6"),
            g("month", AggFunc::Avg, "departure_delay"),
            b(),
            b(),
            g("destination_airport", AggFunc::Avg, "departure_delay"),
        ],
        vec![
            g("month", AggFunc::Avg, "departure_delay"),
            f("month", CmpOp::Eq, "January"),
            g("airline", AggFunc::Avg, "departure_delay"),
            b(),
            b(),
            f("cancelled", CmpOp::Eq, true),
            g("month", AggFunc::Count, "departure_delay"),
        ],
        vec![
            g("airline", AggFunc::Avg, "departure_delay"),
            g("airline", AggFunc::Count, "departure_delay"),
            b(),
            b(),
            f("departure_delay", CmpOp::Ge, 45i64),
            g("airline", AggFunc::Count, "departure_delay"),
            g("month", AggFunc::Count, "departure_delay"),
        ],
        vec![
            g("destination_airport", AggFunc::Avg, "departure_delay"),
            b(),
            g("day_of_week", AggFunc::Avg, "departure_delay"),
            b(),
            g("airline", AggFunc::Avg, "arrival_delay"),
            f("airline", CmpOp::Eq, "B6"),
            g("destination_airport", AggFunc::Avg, "arrival_delay"),
        ],
        vec![
            f("cancelled", CmpOp::Eq, true),
            g("month", AggFunc::Count, "flight_number"),
            g("airline", AggFunc::Count, "flight_number"),
            b(),
            b(),
            b(),
            g("month", AggFunc::Avg, "departure_delay"),
        ],
    ];

    ExperimentalDataset {
        spec: spec("flights2", "Flights #2", "Flights departing from BOS", ROWS),
        frame,
        insights,
        gold_standards,
        goal: "investigate the causes of flight delays".into(),
    }
}

/// Flights #3 — 1082 rows: the SFO → LAX shuttle.
///
/// Planted phenomena: delays peak in the evening (hour 20); UA is the worst
/// of the three carriers; Friday is the worst day.
pub fn flights3() -> ExperimentalDataset {
    const ROWS: usize = 1082;
    let mut rng = StdRng::seed_from_u64(0xF3);
    let airlines = ["UA", "WN", "AS"];
    let mut rows = Vec::with_capacity(ROWS);
    for i in 0..ROWS {
        let airline = airlines[rng.gen_range(0..3)];
        let day = DAYS[rng.gen_range(0..7)];
        let hour = rng.gen_range(6..23);
        let mut dep = base_delay(&mut rng);
        if hour >= 18 {
            dep += rng.gen_range(15..35);
        }
        if airline == "UA" {
            dep += rng.gen_range(8..20);
        }
        if day == "Friday" {
            dep += rng.gen_range(5..18);
        }
        rows.push(FlightRow {
            month: MONTHS[rng.gen_range(0..12)],
            day_of_week: day,
            airline,
            flight_number: 3000 + (i as i64 % 60),
            origin: "SFO".to_string(),
            destination: "LAX".to_string(),
            scheduled_hour: hour,
            departure_delay: dep,
            arrival_delay: dep + rng.gen_range(-8..6),
            distance: 337,
            air_time: 55 + rng.gen_range(-6..10),
            cancelled: rng.gen_bool(0.01),
        });
    }
    let frame = build_frame(&rows);

    let insights = vec![
        Insight::new(
            "flights3.evening-peak",
            "Evening departures (hour 20+) carry the worst delays.",
            InsightCheck::DrilledInto {
                attr: "scheduled_departure".into(),
                value: Value::Int(18),
            },
        ),
        Insight::new(
            "flights3.ua-worst",
            "United (UA) is the most delayed carrier on the route.",
            InsightCheck::ExtremeGroup {
                key: "airline".into(),
                agg: "departure_delay".into(),
                value: Value::Str("UA".into()),
            },
        ),
        Insight::new(
            "flights3.friday",
            "Friday is the worst day of the week.",
            InsightCheck::ExtremeGroup {
                key: "day_of_week".into(),
                agg: "departure_delay".into(),
                value: Value::Str("Friday".into()),
            },
        ),
        Insight::new(
            "flights3.hour-examined",
            "The hourly pattern is examined.",
            InsightCheck::Examined {
                attr: "scheduled_departure".into(),
            },
        ),
        Insight::new(
            "flights3.delay-focus",
            "Departure delay is the quantity under study.",
            InsightCheck::Examined {
                attr: "departure_delay".into(),
            },
        ),
    ];

    let gold_standards = vec![
        vec![
            g("scheduled_departure", AggFunc::Avg, "departure_delay"),
            f("scheduled_departure", CmpOp::Ge, 18i64),
            g("airline", AggFunc::Avg, "departure_delay"),
            b(),
            b(),
            g("day_of_week", AggFunc::Avg, "departure_delay"),
        ],
        vec![
            g("airline", AggFunc::Avg, "departure_delay"),
            f("airline", CmpOp::Eq, "UA"),
            g("scheduled_departure", AggFunc::Avg, "departure_delay"),
            b(),
            g("day_of_week", AggFunc::Avg, "departure_delay"),
        ],
        vec![
            g("day_of_week", AggFunc::Avg, "departure_delay"),
            f("day_of_week", CmpOp::Eq, "Friday"),
            g("airline", AggFunc::Avg, "departure_delay"),
            g("scheduled_departure", AggFunc::Avg, "departure_delay"),
        ],
        vec![
            f("departure_delay", CmpOp::Ge, 30i64),
            g("scheduled_departure", AggFunc::Count, "flight_number"),
            g("airline", AggFunc::Count, "flight_number"),
            b(),
            b(),
            b(),
            g("airline", AggFunc::Avg, "arrival_delay"),
        ],
        vec![
            g("month", AggFunc::Avg, "departure_delay"),
            b(),
            g("scheduled_departure", AggFunc::Avg, "departure_delay"),
            f("scheduled_departure", CmpOp::Ge, 20i64),
            g("airline", AggFunc::Avg, "departure_delay"),
        ],
    ];

    ExperimentalDataset {
        spec: spec("flights3", "Flights #3", "From SFO to LAX", ROWS),
        frame,
        insights,
        gold_standards,
        goal: "investigate the causes of flight delays".into(),
    }
}

/// Flights #4 — 2175 rows: short, night-time flights.
///
/// Planted phenomena: Spirit (NK) is by far the most delayed; delays shrink
/// after midnight; cancellations are rare.
pub fn flights4() -> ExperimentalDataset {
    const ROWS: usize = 2175;
    let mut rng = StdRng::seed_from_u64(0xF4);
    let airlines = ["NK", "WN", "DL", "AA", "F9"];
    let pairs = [
        ("LAS", "LAX"),
        ("MDW", "STL"),
        ("DAL", "HOU"),
        ("PHX", "SAN"),
        ("ATL", "BNA"),
        ("DEN", "SLC"),
    ];
    let mut rows = Vec::with_capacity(ROWS);
    for i in 0..ROWS {
        let airline = airlines[rng.gen_range(0..airlines.len())];
        // Night hours: 22, 23, 0..5.
        let hour = *[22i64, 23, 0, 1, 2, 3, 4, 5]
            .get(rng.gen_range(0..8))
            .unwrap();
        let (o, d) = pairs[rng.gen_range(0..pairs.len())];
        let mut dep = base_delay(&mut rng);
        if airline == "NK" {
            dep += rng.gen_range(20..45);
        }
        if hour <= 5 {
            dep -= rng.gen_range(0..10);
        }
        let distance = rng.gen_range(150..500);
        rows.push(FlightRow {
            month: MONTHS[rng.gen_range(0..12)],
            day_of_week: DAYS[rng.gen_range(0..7)],
            airline,
            flight_number: 4000 + (i as i64 % 500),
            origin: o.to_string(),
            destination: d.to_string(),
            scheduled_hour: hour,
            departure_delay: dep,
            arrival_delay: dep + rng.gen_range(-10..5),
            distance,
            air_time: distance / 7 + rng.gen_range(-8..8),
            cancelled: rng.gen_bool(0.008),
        });
    }
    let frame = build_frame(&rows);

    let insights = vec![
        Insight::new(
            "flights4.nk-worst",
            "Spirit (NK) is by far the most delayed carrier.",
            InsightCheck::ExtremeGroup {
                key: "airline".into(),
                agg: "departure_delay".into(),
                value: Value::Str("NK".into()),
            },
        ),
        Insight::new(
            "flights4.drill-nk",
            "The Spirit subset is inspected in isolation.",
            InsightCheck::DrilledInto {
                attr: "airline".into(),
                value: Value::Str("NK".into()),
            },
        ),
        Insight::new(
            "flights4.night-hours",
            "The late-night hourly pattern is examined.",
            InsightCheck::Examined {
                attr: "scheduled_departure".into(),
            },
        ),
        Insight::new(
            "flights4.routes",
            "Delays are broken down by route (origin airport).",
            InsightCheck::Examined {
                attr: "origin_airport".into(),
            },
        ),
        Insight::new(
            "flights4.delay-focus",
            "Departure delay is the quantity under study.",
            InsightCheck::Examined {
                attr: "departure_delay".into(),
            },
        ),
    ];

    let gold_standards = vec![
        vec![
            g("airline", AggFunc::Avg, "departure_delay"),
            f("airline", CmpOp::Eq, "NK"),
            g("origin_airport", AggFunc::Avg, "departure_delay"),
            b(),
            b(),
            g("scheduled_departure", AggFunc::Avg, "departure_delay"),
        ],
        vec![
            g("scheduled_departure", AggFunc::Avg, "departure_delay"),
            b(),
            g("airline", AggFunc::Avg, "departure_delay"),
            f("airline", CmpOp::Eq, "NK"),
            g("scheduled_departure", AggFunc::Avg, "departure_delay"),
        ],
        vec![
            g("origin_airport", AggFunc::Avg, "departure_delay"),
            f("departure_delay", CmpOp::Ge, 30i64),
            g("airline", AggFunc::Count, "flight_number"),
            b(),
            g("origin_airport", AggFunc::Count, "flight_number"),
        ],
        vec![
            g("airline", AggFunc::Avg, "arrival_delay"),
            g("airline", AggFunc::Avg, "departure_delay"),
            b(),
            b(),
            f("airline", CmpOp::Eq, "NK"),
            g("day_of_week", AggFunc::Avg, "departure_delay"),
        ],
        vec![
            g("day_of_week", AggFunc::Avg, "departure_delay"),
            b(),
            g("airline", AggFunc::Avg, "departure_delay"),
            f("airline", CmpOp::Eq, "NK"),
            g("origin_airport", AggFunc::Count, "departure_delay"),
        ],
    ];

    ExperimentalDataset {
        spec: spec("flights4", "Flights #4", "Short, night-time flights", ROWS),
        frame,
        insights,
        gold_standards,
        goal: "investigate the causes of flight delays".into(),
    }
}

/// All four flight datasets.
pub fn all_flights() -> Vec<ExperimentalDataset> {
    vec![flights1(), flights2(), flights3(), flights4()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insights::insight_coverage;
    use atena_core::Notebook;

    #[test]
    fn row_counts_match_table1() {
        assert_eq!(flights1().frame.n_rows(), 5661);
        assert_eq!(flights2().frame.n_rows(), 8172);
        assert_eq!(flights3().frame.n_rows(), 1082);
        assert_eq!(flights4().frame.n_rows(), 2175);
    }

    #[test]
    fn subset_constraints_hold() {
        let f1 = flights1();
        let days = f1.frame.column("day_of_week").unwrap().value_counts();
        assert_eq!(days.len(), 1, "Flights #1 is Sundays only");
        let airlines = f1.frame.column("airline").unwrap().value_counts();
        assert_eq!(airlines.len(), 1, "Flights #1 is AA only");

        let f2 = flights2();
        assert_eq!(f2.frame.column("origin_airport").unwrap().n_distinct(), 1);

        let f3 = flights3();
        assert_eq!(f3.frame.column("origin_airport").unwrap().n_distinct(), 1);
        assert_eq!(
            f3.frame.column("destination_airport").unwrap().n_distinct(),
            1
        );

        let f4 = flights4();
        let dist = f4.frame.numeric_summary("distance").unwrap().unwrap();
        assert!(dist.max < 500.0, "Flights #4 is short-haul");
        let hours = f4
            .frame
            .column("scheduled_departure")
            .unwrap()
            .value_counts();
        for k in hours.keys() {
            let atena_dataframe::ValueKey::Int(h) = k else {
                panic!()
            };
            assert!(*h >= 22 || *h <= 5, "night hours only, got {h}");
        }
    }

    #[test]
    fn planted_effects_measurable() {
        let f1 = flights1();
        let by_month = f1
            .frame
            .group_aggregate(&["month"], AggFunc::Avg, "departure_delay")
            .unwrap();
        let mut june = f64::NAN;
        let mut others_max = f64::MIN;
        for r in 0..by_month.n_rows() {
            let m = by_month
                .value(r, "month")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            let v = by_month
                .value(r, "AVG(departure_delay)")
                .unwrap()
                .as_f64()
                .unwrap();
            if m == "June" {
                june = v;
            } else {
                others_max = others_max.max(v);
            }
        }
        assert!(
            june > others_max,
            "June {june} should exceed all others ({others_max})"
        );
    }

    #[test]
    fn golds_apply_and_cover() {
        for d in all_flights() {
            let mut best = 0.0f64;
            for (i, gold) in d.gold_standards.iter().enumerate() {
                let nb = Notebook::replay(&d.spec.name, &d.frame, gold);
                assert!(
                    nb.entries.iter().all(|e| e.outcome.is_applied()),
                    "{} gold #{i} has invalid ops",
                    d.spec.id
                );
                best = best.max(insight_coverage(&nb, &d.insights));
            }
            assert!(best >= 0.6, "{}: best gold coverage {best:.2}", d.spec.id);
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(
            flights3().frame.to_csv_string(),
            flights3().frame.to_csv_string()
        );
    }
}
