//! The four cyber-security datasets (Table 1): synthetic honeynet-style
//! captures, each conveying one underlying attack, with the attack's
//! "official solution" planted as machine-checkable insights and 5–7
//! hand-authored gold-standard notebooks per dataset.

use crate::insights::{Insight, InsightCheck};
use crate::opdsl::{b, f, g};
use crate::packets::{background_traffic, build_frame, internal_host, Packet};
use crate::spec::{Collection, DatasetSpec, ExperimentalDataset};
use atena_dataframe::{AggFunc, CmpOp, Value};
use atena_env::ResolvedOp;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ATTACKER: &str = "203.0.113.66";
const VICTIM: &str = "10.0.0.7";

fn spec(id: &str, name: &str, description: &str, rows: usize) -> DatasetSpec {
    DatasetSpec {
        id: id.into(),
        name: name.into(),
        description: description.into(),
        rows,
        collection: Collection::Cyber,
    }
}

/// Cyber #1 — 8648 rows: an ICMP scan on an IP range.
///
/// The attacker pings every address of `10.0.1.0/24` plus the internal
/// hosts; a handful of live hosts answer (the victim organization's exposed
/// addresses). Background web traffic fills the rest.
pub fn cyber1() -> ExperimentalDataset {
    const ROWS: usize = 8648;
    let mut rng = StdRng::seed_from_u64(0xC1);
    let mut packets = Vec::with_capacity(ROWS);

    // The sweep: 254 range addresses × ~22 probes spread over 20 minutes.
    let n_scan = 5600usize;
    for i in 0..n_scan {
        let dst = format!("10.0.1.{}", (i % 254) + 1);
        packets.push(Packet {
            time: 1800 + (i as i64) / 5,
            source_ip: ATTACKER.to_string(),
            destination_ip: dst,
            protocol: "icmp",
            source_port: None,
            destination_port: None,
            length: 74,
            tcp_flags: None,
            info: "Echo (ping) request".to_string(),
        });
    }
    // Replies from the 12 live (exposed) hosts.
    let n_replies = 648usize;
    for i in 0..n_replies {
        let live = format!(
            "10.0.1.{}",
            [4, 9, 17, 23, 42, 57, 88, 101, 137, 180, 201, 230][i % 12]
        );
        packets.push(Packet {
            time: 1801 + (i as i64) / 2,
            source_ip: live,
            destination_ip: ATTACKER.to_string(),
            protocol: "icmp",
            source_port: None,
            destination_port: None,
            length: 74,
            tcp_flags: None,
            info: "Echo (ping) reply".to_string(),
        });
    }
    packets.extend(background_traffic(
        ROWS - n_scan - n_replies,
        0,
        7200,
        &mut rng,
    ));
    let frame = build_frame(packets);
    debug_assert_eq!(frame.n_rows(), ROWS);

    let insights = vec![
        Insight::new(
            "cyber1.icmp-dominates",
            "The capture is dominated by ICMP traffic — unusual for an office network.",
            InsightCheck::DominantGroup {
                key: "protocol".into(),
                value: Value::Str("icmp".into()),
                min_share: 0.5,
            },
        ),
        Insight::new(
            "cyber1.attacker-ip",
            "A single external source, 203.0.113.66, issues most of the traffic (the attacker).",
            InsightCheck::DominantGroup {
                key: "source_ip".into(),
                value: Value::Str(ATTACKER.into()),
                min_share: 0.5,
            },
        ),
        Insight::new(
            "cyber1.drill-attacker",
            "Isolating the attacker's packets reveals the scan.",
            InsightCheck::DrilledInto {
                attr: "source_ip".into(),
                value: Value::Str(ATTACKER.into()),
            },
        ),
        Insight::new(
            "cyber1.range-sweep",
            "The attacker touches hundreds of destination addresses — a range sweep of 10.0.1.0/24.",
            InsightCheck::ManyGroups {
                key: "destination_ip".into(),
                min_groups: 200,
                context_attr: Some(("source_ip".into(), Value::Str(ATTACKER.into()))),
            },
        ),
        Insight::new(
            "cyber1.echo-requests",
            "The scan consists of ICMP echo (ping) requests.",
            InsightCheck::DominantGroup {
                key: "info".into(),
                value: Value::Str("Echo (ping) request".into()),
                min_share: 0.5,
            },
        ),
        Insight::new(
            "cyber1.exposed-hosts",
            "Only about a dozen hosts reply — the organization's exposed addresses.",
            InsightCheck::AtMostGroups {
                key: "source_ip".into(),
                max_groups: 13,
                context_attr: Some(("destination_ip".into(), Value::Str(ATTACKER.into()))),
            },
        ),
        Insight::new(
            "cyber1.drill-icmp",
            "Filtering to ICMP isolates the scan traffic.",
            InsightCheck::DrilledInto {
                attr: "protocol".into(),
                value: Value::Str("icmp".into()),
            },
        ),
        Insight::new(
            "cyber1.timing",
            "The temporal dimension of the capture is examined (the sweep is a burst).",
            InsightCheck::Examined { attr: "time".into() },
        ),
        Insight::new(
            "cyber1.packet-size",
            "Packet lengths are examined (scan probes are uniform 74-byte frames).",
            InsightCheck::Examined { attr: "length".into() },
        ),
    ];

    let gold_standards = vec![
        // G1: protocol overview -> drill into icmp -> who sends it -> sweep.
        vec![
            g("protocol", AggFunc::Count, "length"),
            f("protocol", CmpOp::Eq, "icmp"),
            g("source_ip", AggFunc::Count, "length"),
            b(),
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("destination_ip", AggFunc::Count, "length"),
            b(),
            g("info", AggFunc::Count, "time"),
        ],
        // G2: source-first path.
        vec![
            g("source_ip", AggFunc::Count, "length"),
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("protocol", AggFunc::Count, "length"),
            g("destination_ip", AggFunc::Count, "length"),
            b(),
            b(),
            b(),
            f("destination_ip", CmpOp::Eq, ATTACKER),
            g("source_ip", AggFunc::Count, "length"),
        ],
        // G3: info-text first.
        vec![
            g("info", AggFunc::Count, "length"),
            f("info", CmpOp::Contains, "Echo"),
            g("source_ip", AggFunc::Count, "length"),
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("destination_ip", AggFunc::Count, "time"),
        ],
        // G4: replies path (exposed hosts).
        vec![
            g("protocol", AggFunc::Count, "length"),
            f("protocol", CmpOp::Eq, "icmp"),
            f("destination_ip", CmpOp::Eq, ATTACKER),
            g("source_ip", AggFunc::Count, "length"),
            b(),
            b(),
            g("info", AggFunc::Count, "length"),
        ],
        // G5: sizes and timing flavour.
        vec![
            g("protocol", AggFunc::Avg, "length"),
            f("protocol", CmpOp::Eq, "icmp"),
            g("source_ip", AggFunc::Count, "time"),
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("destination_ip", AggFunc::Count, "length"),
            b(),
            f("time", CmpOp::Ge, 1800i64),
            g("protocol", AggFunc::Count, "length"),
        ],
        // G6: compact essential path.
        vec![
            g("protocol", AggFunc::Count, "length"),
            g("source_ip", AggFunc::Count, "length"),
            b(),
            b(),
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("destination_ip", AggFunc::Count, "length"),
        ],
    ];

    ExperimentalDataset {
        spec: spec("cyber1", "Cyber #1", "ICMP scan on IP range", ROWS),
        frame,
        insights,
        gold_standards,
        goal: "reveal the underlying network attack".into(),
    }
}

/// Cyber #2 — 348 rows: a remote-code-execution attack over HTTP/SMB.
pub fn cyber2() -> ExperimentalDataset {
    const ROWS: usize = 348;
    let mut rng = StdRng::seed_from_u64(0xC2);
    let mut packets = Vec::with_capacity(ROWS);

    // Exploit session: attacker probes the victim's web server, then sends
    // the RCE payload against port 445 and spawns a reverse shell on 4444.
    for i in 0..60 {
        packets.push(Packet {
            time: 900 + i,
            source_ip: ATTACKER.to_string(),
            destination_ip: VICTIM.to_string(),
            protocol: "http",
            source_port: Some(51000 + (i % 4)),
            destination_port: Some(80),
            length: 420 + (i % 7) * 13,
            tcp_flags: Some("PSH-ACK"),
            info: if i % 3 == 0 {
                "GET /cgi-bin/../../windows/system32/cmd.exe?/c+whoami HTTP/1.1".to_string()
            } else {
                "GET /admin/login.php HTTP/1.1".to_string()
            },
        });
    }
    for i in 0..50 {
        packets.push(Packet {
            time: 980 + i,
            source_ip: ATTACKER.to_string(),
            destination_ip: VICTIM.to_string(),
            protocol: "tcp",
            source_port: Some(51900),
            destination_port: Some(445),
            length: 1460,
            tcp_flags: Some("PSH-ACK"),
            info: "SMB exploit payload (EternalBlue-style overflow)".to_string(),
        });
    }
    for i in 0..38 {
        packets.push(Packet {
            time: 1040 + i,
            source_ip: VICTIM.to_string(),
            destination_ip: ATTACKER.to_string(),
            protocol: "tcp",
            source_port: Some(49321),
            destination_port: Some(4444),
            length: 180 + (i % 9) * 21,
            tcp_flags: Some("PSH-ACK"),
            info: "reverse shell channel".to_string(),
        });
    }
    packets.extend(background_traffic(ROWS - 60 - 50 - 38, 0, 2400, &mut rng));
    let frame = build_frame(packets);
    debug_assert_eq!(frame.n_rows(), ROWS);

    let insights =
        vec![
        Insight::new(
            "cyber2.attacker-ip",
            "203.0.113.66 originates the bulk of the traffic (the attacker).",
            InsightCheck::DominantGroup {
                key: "source_ip".into(),
                value: Value::Str(ATTACKER.into()),
                min_share: 0.3,
            },
        ),
        Insight::new(
            "cyber2.victim-targeted",
            "The attack targets a single host, 10.0.0.7.",
            InsightCheck::DominantGroup {
                key: "destination_ip".into(),
                value: Value::Str(VICTIM.into()),
                min_share: 0.3,
            },
        ),
        Insight::new(
            "cyber2.drill-attacker",
            "Drilling into the attacker isolates the exploitation session.",
            InsightCheck::DrilledInto {
                attr: "source_ip".into(),
                value: Value::Str(ATTACKER.into()),
            },
        ),
        Insight::new(
            "cyber2.cmd-exe",
            "HTTP requests carry a command-execution payload (cmd.exe path traversal).",
            InsightCheck::DrilledInto {
                attr: "info".into(),
                value: Value::Str("cmd.exe".into()),
            },
        ),
        Insight::new(
            "cyber2.smb-port",
            "The exploit is delivered to port 445 (SMB).",
            InsightCheck::DrilledInto {
                attr: "destination_port".into(),
                value: Value::Int(445),
            },
        ),
        Insight::new(
            "cyber2.reverse-shell",
            "The victim opens an outbound channel to the attacker on port 4444 (reverse shell).",
            InsightCheck::DrilledInto {
                attr: "destination_port".into(),
                value: Value::Int(4444),
            },
        ),
        Insight::new(
            "cyber2.victim-drill",
            "Traffic from the victim is inspected (the compromise evidence).",
            InsightCheck::DrilledInto {
                attr: "source_ip".into(),
                value: Value::Str(VICTIM.into()),
            },
        ),
        Insight::new(
            "cyber2.ports-overview",
            "Destination ports are surveyed, revealing the unusual 445/4444 pair.",
            InsightCheck::Examined { attr: "destination_port".into() },
        ),
        Insight::new(
            "cyber2.payload-size",
            "The exploit packets are maximal-size frames (payload delivery).",
            InsightCheck::ExtremeGroup {
                key: "destination_port".into(),
                agg: "length".into(),
                value: Value::Int(445),
            },
        ),
        Insight::new(
            "cyber2.protocols",
            "The protocol mix (http + tcp) of the attack is examined.",
            InsightCheck::Examined { attr: "protocol".into() },
        ),
    ];

    let gold_standards = vec![
        vec![
            g("source_ip", AggFunc::Count, "length"),
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("destination_port", AggFunc::Count, "length"),
            f("destination_port", CmpOp::Eq, 445i64),
            b(),
            f("info", CmpOp::Contains, "cmd.exe"),
        ],
        vec![
            g("destination_ip", AggFunc::Count, "length"),
            f("destination_ip", CmpOp::Eq, VICTIM),
            g("protocol", AggFunc::Count, "length"),
            g("destination_port", AggFunc::Avg, "length"),
            b(),
            b(),
            b(),
            f("source_ip", CmpOp::Eq, VICTIM),
            g("destination_port", AggFunc::Count, "length"),
            f("destination_port", CmpOp::Eq, 4444i64),
        ],
        vec![
            g("protocol", AggFunc::Count, "length"),
            f("protocol", CmpOp::Eq, "http"),
            f("info", CmpOp::Contains, "cmd.exe"),
            g("source_ip", AggFunc::Count, "length"),
            b(),
            b(),
            b(),
            f("destination_port", CmpOp::Eq, 4444i64),
        ],
        vec![
            g("destination_port", AggFunc::Count, "length"),
            f("destination_port", CmpOp::Eq, 445i64),
            g("source_ip", AggFunc::Count, "length"),
            b(),
            g("length", AggFunc::Count, "time"),
            b(),
            b(),
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("destination_port", AggFunc::Count, "length"),
        ],
        vec![
            g("source_ip", AggFunc::Count, "length"),
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("protocol", AggFunc::Count, "length"),
            f("protocol", CmpOp::Eq, "http"),
            g("info", AggFunc::Count, "length"),
            b(),
            b(),
            b(),
            b(),
            f("destination_ip", CmpOp::Eq, VICTIM),
            g("destination_port", AggFunc::Count, "length"),
        ],
    ];

    ExperimentalDataset {
        spec: spec("cyber2", "Cyber #2", "Remote code execution attack", ROWS),
        frame,
        insights,
        gold_standards,
        goal: "reveal the underlying network attack".into(),
    }
}

/// Cyber #3 — 745 rows: a web-based phishing attack.
pub fn cyber3() -> ExperimentalDataset {
    const ROWS: usize = 745;
    let mut rng = StdRng::seed_from_u64(0xC3);
    let mut packets = Vec::with_capacity(ROWS);
    let phish_host = "198.51.100.23";

    // Phishing mail blast, DNS lookups of the lookalike domain, credential
    // POSTs from the victims who clicked.
    for i in 0..90 {
        packets.push(Packet {
            time: 300 + i * 2,
            source_ip: phish_host.to_string(),
            destination_ip: internal_host(i as usize),
            protocol: "smtp",
            source_port: Some(25),
            destination_port: Some(25),
            length: 800 + (i % 13) * 31,
            tcp_flags: Some("PSH-ACK"),
            info: "Subject: Urgent - verify your payroll account".to_string(),
        });
    }
    for i in 0..170 {
        packets.push(Packet {
            time: 700 + i,
            source_ip: internal_host(i as usize % 9),
            destination_ip: "10.0.0.53".to_string(),
            protocol: "dns",
            source_port: Some(52000 + (i % 30)),
            destination_port: Some(53),
            length: 78,
            tcp_flags: None,
            info: "Standard query A paypa1-secure-login.com".to_string(),
        });
    }
    for i in 0..120 {
        packets.push(Packet {
            time: 900 + i,
            source_ip: internal_host(i as usize % 9),
            destination_ip: phish_host.to_string(),
            protocol: "http",
            source_port: Some(53000 + (i % 40)),
            destination_port: Some(80),
            length: 350 + (i % 11) * 17,
            tcp_flags: Some("PSH-ACK"),
            info: if i % 2 == 0 {
                "POST /login.php (username&password) HTTP/1.1".to_string()
            } else {
                "GET /account/verify HTTP/1.1".to_string()
            },
        });
    }
    packets.extend(background_traffic(ROWS - 90 - 170 - 120, 0, 3000, &mut rng));
    let frame = build_frame(packets);
    debug_assert_eq!(frame.n_rows(), ROWS);

    let insights = vec![
        Insight::new(
            "cyber3.phish-host",
            "198.51.100.23 both sends the mail blast and receives the stolen credentials.",
            InsightCheck::DrilledInto {
                attr: "source_ip".into(),
                value: Value::Str(phish_host.into()),
            },
        ),
        Insight::new(
            "cyber3.mail-blast",
            "An SMTP blast with an 'urgent payroll' subject hits many employees.",
            InsightCheck::DrilledInto {
                attr: "protocol".into(),
                value: Value::Str("smtp".into()),
            },
        ),
        Insight::new(
            "cyber3.lookalike-domain",
            "DNS shows lookups of the typosquatted domain paypa1-secure-login.com.",
            InsightCheck::DrilledInto {
                attr: "info".into(),
                value: Value::Str("paypa1".into()),
            },
        ),
        Insight::new(
            "cyber3.credential-posts",
            "Several victims POST credentials to the phishing site.",
            InsightCheck::DrilledInto {
                attr: "info".into(),
                value: Value::Str("POST".into()),
            },
        ),
        Insight::new(
            "cyber3.victims",
            "Roughly nine internal hosts interact with the phishing infrastructure.",
            InsightCheck::AtMostGroups {
                key: "source_ip".into(),
                max_groups: 10,
                context_attr: Some(("destination_ip".into(), Value::Str(phish_host.into()))),
            },
        ),
        Insight::new(
            "cyber3.protocol-mix",
            "The smtp→dns→http protocol sequence of the campaign is surveyed.",
            InsightCheck::Examined {
                attr: "protocol".into(),
            },
        ),
        Insight::new(
            "cyber3.drill-phish-dst",
            "Traffic toward the phishing host is isolated.",
            InsightCheck::DrilledInto {
                attr: "destination_ip".into(),
                value: Value::Str(phish_host.into()),
            },
        ),
        Insight::new(
            "cyber3.dns-volume",
            "DNS activity is examined (the click wave).",
            InsightCheck::DrilledInto {
                attr: "protocol".into(),
                value: Value::Str("dns".into()),
            },
        ),
        Insight::new(
            "cyber3.timeline",
            "The mail → lookup → credential-post timeline is examined.",
            InsightCheck::Examined {
                attr: "time".into(),
            },
        ),
    ];

    let gold_standards = vec![
        vec![
            g("protocol", AggFunc::Count, "length"),
            f("protocol", CmpOp::Eq, "smtp"),
            g("source_ip", AggFunc::Count, "time"),
            f("source_ip", CmpOp::Eq, phish_host),
            b(),
            b(),
            b(),
            b(),
            f("destination_ip", CmpOp::Eq, phish_host),
            g("source_ip", AggFunc::Count, "length"),
            f("info", CmpOp::Contains, "POST"),
        ],
        vec![
            g("destination_ip", AggFunc::Count, "length"),
            f("destination_ip", CmpOp::Eq, phish_host),
            g("source_ip", AggFunc::Count, "time"),
            g("info", AggFunc::Count, "length"),
            b(),
            b(),
            b(),
            f("info", CmpOp::Contains, "POST"),
            g("source_ip", AggFunc::Count, "length"),
            b(),
            b(),
            f("protocol", CmpOp::Eq, "smtp"),
        ],
        vec![
            g("info", AggFunc::Count, "length"),
            f("info", CmpOp::Contains, "paypa1"),
            g("source_ip", AggFunc::Count, "time"),
            b(),
            b(),
            f("info", CmpOp::Contains, "POST"),
            g("source_ip", AggFunc::Count, "length"),
            b(),
            b(),
            f("protocol", CmpOp::Eq, "dns"),
            g("source_ip", AggFunc::Count, "length"),
            b(),
            f("source_ip", CmpOp::Eq, phish_host),
        ],
        vec![
            g("protocol", AggFunc::Count, "length"),
            f("protocol", CmpOp::Eq, "http"),
            f("info", CmpOp::Contains, "POST"),
            g("source_ip", AggFunc::Count, "time"),
            b(),
            b(),
            b(),
            b(),
            f("destination_ip", CmpOp::Eq, phish_host),
            g("source_ip", AggFunc::Count, "length"),
            b(),
            b(),
            f("protocol", CmpOp::Eq, "smtp"),
        ],
        vec![
            f("source_ip", CmpOp::Eq, phish_host),
            g("protocol", AggFunc::Count, "length"),
            g("destination_ip", AggFunc::Count, "time"),
            b(),
            b(),
            b(),
            f("destination_ip", CmpOp::Eq, phish_host),
            g("source_ip", AggFunc::Count, "length"),
            f("info", CmpOp::Contains, "POST"),
        ],
    ];

    ExperimentalDataset {
        spec: spec("cyber3", "Cyber #3", "Web-based phishing attack", ROWS),
        frame,
        insights,
        gold_standards,
        goal: "reveal the underlying network attack".into(),
    }
}

/// Cyber #4 — 13625 rows: a TCP port scan against one host.
pub fn cyber4() -> ExperimentalDataset {
    const ROWS: usize = 13625;
    let mut rng = StdRng::seed_from_u64(0xC4);
    let mut packets = Vec::with_capacity(ROWS);

    // SYN scan: 9000 probes over ports 1..9000 against the victim, RST from
    // closed ports, SYN-ACK from the few open services.
    let n_syn = 9000usize;
    for i in 0..n_syn {
        packets.push(Packet {
            time: 3600 + (i as i64) / 20,
            source_ip: ATTACKER.to_string(),
            destination_ip: VICTIM.to_string(),
            protocol: "tcp",
            source_port: Some(61000 + (i as i64 % 8)),
            destination_port: Some((i as i64 % 9000) + 1),
            length: 60,
            tcp_flags: Some("SYN"),
            info: "port probe".to_string(),
        });
    }
    let open_ports = [22i64, 80, 443, 3306];
    let n_synack = 400usize;
    for i in 0..n_synack {
        packets.push(Packet {
            time: 3601 + (i as i64) / 4,
            source_ip: VICTIM.to_string(),
            destination_ip: ATTACKER.to_string(),
            protocol: "tcp",
            source_port: Some(open_ports[i % open_ports.len()]),
            destination_port: Some(61000 + (i as i64 % 8)),
            length: 60,
            tcp_flags: Some("SYN-ACK"),
            info: "open port response".to_string(),
        });
    }
    let n_rst = 2200usize;
    for i in 0..n_rst {
        packets.push(Packet {
            time: 3601 + (i as i64) / 10,
            source_ip: VICTIM.to_string(),
            destination_ip: ATTACKER.to_string(),
            protocol: "tcp",
            source_port: Some((i as i64 % 8999) + 2),
            destination_port: Some(61000 + (i as i64 % 8)),
            length: 54,
            tcp_flags: Some("RST-ACK"),
            info: "closed port".to_string(),
        });
    }
    packets.extend(background_traffic(
        ROWS - n_syn - n_synack - n_rst,
        0,
        7200,
        &mut rng,
    ));
    let frame = build_frame(packets);
    debug_assert_eq!(frame.n_rows(), ROWS);

    let insights = vec![
        Insight::new(
            "cyber4.syn-dominates",
            "SYN-only segments dominate the capture — the signature of a SYN scan.",
            InsightCheck::DominantGroup {
                key: "tcp_flags".into(),
                value: Value::Str("SYN".into()),
                min_share: 0.5,
            },
        ),
        Insight::new(
            "cyber4.attacker-ip",
            "The scan originates from 203.0.113.66.",
            InsightCheck::DominantGroup {
                key: "source_ip".into(),
                value: Value::Str(ATTACKER.into()),
                min_share: 0.5,
            },
        ),
        Insight::new(
            "cyber4.single-victim",
            "All probes target one host, 10.0.0.7.",
            InsightCheck::DominantGroup {
                key: "destination_ip".into(),
                value: Value::Str(VICTIM.into()),
                min_share: 0.5,
            },
        ),
        Insight::new(
            "cyber4.port-sweep",
            "Thousands of distinct destination ports are probed.",
            InsightCheck::ManyGroups {
                key: "destination_port".into(),
                min_groups: 1000,
                context_attr: Some(("source_ip".into(), Value::Str(ATTACKER.into()))),
            },
        ),
        Insight::new(
            "cyber4.drill-attacker",
            "The attacker's traffic is isolated.",
            InsightCheck::DrilledInto {
                attr: "source_ip".into(),
                value: Value::Str(ATTACKER.into()),
            },
        ),
        Insight::new(
            "cyber4.open-ports",
            "The victim answers with SYN-ACK from only a few ports (the open services).",
            InsightCheck::AtMostGroups {
                key: "source_port".into(),
                max_groups: 5,
                context_attr: Some(("tcp_flags".into(), Value::Str("SYN-ACK".into()))),
            },
        ),
        Insight::new(
            "cyber4.rst-wall",
            "Closed ports answer with RST-ACK segments.",
            InsightCheck::DrilledInto {
                attr: "tcp_flags".into(),
                value: Value::Str("RST-ACK".into()),
            },
        ),
        Insight::new(
            "cyber4.flag-mix",
            "The TCP flag distribution is surveyed.",
            InsightCheck::Examined {
                attr: "tcp_flags".into(),
            },
        ),
        Insight::new(
            "cyber4.probe-size",
            "The probes are minimal 60-byte segments.",
            InsightCheck::Examined {
                attr: "length".into(),
            },
        ),
        Insight::new(
            "cyber4.timing",
            "The scan's burst timing is examined.",
            InsightCheck::Examined {
                attr: "time".into(),
            },
        ),
    ];

    let gold_standards = vec![
        vec![
            g("tcp_flags", AggFunc::Count, "length"),
            f("tcp_flags", CmpOp::Eq, "SYN"),
            g("source_ip", AggFunc::Count, "length"),
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("destination_port", AggFunc::Count, "length"),
            b(),
            b(),
            b(),
            b(),
            f("tcp_flags", CmpOp::Eq, "SYN-ACK"),
            g("source_port", AggFunc::Count, "length"),
        ],
        vec![
            g("source_ip", AggFunc::Count, "length"),
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("destination_ip", AggFunc::Count, "length"),
            g("destination_port", AggFunc::Count, "length"),
            b(),
            b(),
            b(),
            f("source_ip", CmpOp::Eq, VICTIM),
            g("tcp_flags", AggFunc::Count, "length"),
        ],
        vec![
            g("destination_ip", AggFunc::Count, "length"),
            f("destination_ip", CmpOp::Eq, VICTIM),
            g("tcp_flags", AggFunc::Count, "length"),
            g("destination_port", AggFunc::Count, "time"),
            b(),
            b(),
            b(),
            f("tcp_flags", CmpOp::Eq, "SYN-ACK"),
            g("source_port", AggFunc::Count, "length"),
        ],
        vec![
            g("protocol", AggFunc::Count, "length"),
            f("protocol", CmpOp::Eq, "tcp"),
            g("tcp_flags", AggFunc::Count, "length"),
            f("tcp_flags", CmpOp::Eq, "RST-ACK"),
            g("source_ip", AggFunc::Count, "length"),
            b(),
            b(),
            f("tcp_flags", CmpOp::Eq, "SYN"),
            g("source_ip", AggFunc::Count, "length"),
        ],
        vec![
            g("tcp_flags", AggFunc::Avg, "length"),
            f("tcp_flags", CmpOp::Eq, "SYN"),
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("destination_port", AggFunc::Count, "length"),
            b(),
            g("time", AggFunc::Count, "length"),
        ],
        vec![
            f("source_ip", CmpOp::Eq, ATTACKER),
            g("destination_port", AggFunc::Count, "length"),
            b(),
            g("tcp_flags", AggFunc::Count, "length"),
            b(),
            b(),
            f("tcp_flags", CmpOp::Eq, "SYN-ACK"),
            g("source_port", AggFunc::Count, "length"),
        ],
    ];

    ExperimentalDataset {
        spec: spec("cyber4", "Cyber #4", "TCP port scan", ROWS),
        frame,
        insights,
        gold_standards,
        goal: "reveal the underlying network attack".into(),
    }
}

/// All four cyber datasets.
pub fn all_cyber() -> Vec<ExperimentalDataset> {
    vec![cyber1(), cyber2(), cyber3(), cyber4()]
}

/// Resolve one op list (used in tests).
#[allow(dead_code)]
fn ops_len(ops: &[ResolvedOp]) -> usize {
    ops.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insights::insight_coverage;
    use atena_core::Notebook;

    #[test]
    fn row_counts_match_table1() {
        assert_eq!(cyber1().frame.n_rows(), 8648);
        assert_eq!(cyber2().frame.n_rows(), 348);
        assert_eq!(cyber3().frame.n_rows(), 745);
        assert_eq!(cyber4().frame.n_rows(), 13625);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = cyber2();
        let b = cyber2();
        assert_eq!(a.frame.to_csv_string(), b.frame.to_csv_string());
    }

    #[test]
    fn insight_counts_in_paper_range() {
        // Paper: solutions contain between 9 and 15 insights.
        for d in all_cyber() {
            assert!(
                (9..=15).contains(&d.insights.len()),
                "{} has {} insights",
                d.spec.id,
                d.insights.len()
            );
            assert!(
                (5..=7).contains(&d.gold_standards.len()),
                "{} has {} golds",
                d.spec.id,
                d.gold_standards.len()
            );
        }
    }

    #[test]
    fn gold_notebooks_apply_cleanly_and_cover_insights() {
        for d in all_cyber() {
            let mut best = 0.0f64;
            for (i, gold) in d.gold_standards.iter().enumerate() {
                let nb = Notebook::replay(&d.spec.name, &d.frame, gold);
                let n_invalid = nb
                    .entries
                    .iter()
                    .filter(|e| !e.outcome.is_applied())
                    .count();
                assert_eq!(
                    n_invalid,
                    0,
                    "{} gold #{i} has invalid ops: {:?}",
                    d.spec.id,
                    nb.entries
                        .iter()
                        .filter(|e| !e.outcome.is_applied())
                        .map(|e| format!("{} ({:?})", e.op, e.outcome))
                        .collect::<Vec<_>>()
                );
                best = best.max(insight_coverage(&nb, &d.insights));
            }
            assert!(
                best >= 0.6,
                "{}: best gold coverage only {best:.2}",
                d.spec.id
            );
        }
    }

    #[test]
    fn union_of_golds_covers_nearly_all_insights() {
        for d in all_cyber() {
            let notebooks: Vec<Notebook> = d
                .gold_standards
                .iter()
                .map(|g| Notebook::replay(&d.spec.name, &d.frame, g))
                .collect();
            let covered = d
                .insights
                .iter()
                .filter(|i| notebooks.iter().any(|nb| i.check.satisfied_by(nb)))
                .count();
            assert!(
                covered as f64 / d.insights.len() as f64 >= 0.85,
                "{}: union coverage {covered}/{}",
                d.spec.id,
                d.insights.len()
            );
        }
    }

    #[test]
    fn attack_structure_planted() {
        let d = cyber1();
        let protos = d.frame.column("protocol").unwrap().value_counts();
        let icmp = protos[&atena_dataframe::ValueKey::Str("icmp".into())];
        assert!(icmp as f64 / d.frame.n_rows() as f64 > 0.5);

        let d4 = cyber4();
        let flags = d4.frame.column("tcp_flags").unwrap().value_counts();
        let syn = flags[&atena_dataframe::ValueKey::Str("SYN".into())];
        assert!(syn as f64 / d4.frame.n_rows() as f64 > 0.5);
    }
}
