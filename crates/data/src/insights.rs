//! Planted insights with machine-checkable predicates.
//!
//! The paper's cyber datasets come with official challenge solutions listing
//! 9–15 relevant insights each; the user study (Figure 4b) counts how many
//! a viewer gathers from a notebook. Our synthetic datasets plant the
//! phenomena *and* encode each insight as a predicate over notebook views,
//! so insight coverage is measured automatically.

use atena_core::{Notebook, NotebookEntry};
use atena_dataframe::{Value, ValueKey};
use serde::{Deserialize, Serialize};

/// A machine-checkable condition over a single notebook view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InsightCheck {
    /// A view grouped by `key` exists in which the largest group is `value`
    /// and holds at least `min_share` of the underlying rows — e.g. "the
    /// traffic is dominated by ICMP".
    DominantGroup {
        /// Group-by attribute.
        key: String,
        /// Expected top group.
        value: Value,
        /// Minimum share of underlying rows.
        min_share: f64,
    },
    /// A view exists whose filters include `attr == value` — the notebook
    /// drilled into the entity (e.g. the attacker's IP address).
    DrilledInto {
        /// Filtered attribute.
        attr: String,
        /// The value drilled into (matched against the predicate term).
        value: Value,
    },
    /// A view grouped by `key` (possibly after filters) shows at least
    /// `min_groups` distinct groups — e.g. "the scan touches many
    /// destination addresses".
    ManyGroups {
        /// Group-by attribute.
        key: String,
        /// Minimum number of groups.
        min_groups: usize,
        /// Only count views whose filters mention this attribute=value
        /// context (None = any view).
        context_attr: Option<(String, Value)>,
    },
    /// A view grouped by `key` with an aggregate column over `agg` exists in
    /// which `value` attains the extreme (max) aggregate — e.g. "June has
    /// the longest average delay".
    ExtremeGroup {
        /// Group-by attribute.
        key: String,
        /// Aggregated attribute (any aggregate function counts).
        agg: String,
        /// The group expected to attain the maximum.
        value: Value,
    },
    /// A view grouped by `key` under a filter context shows at most
    /// `max_groups` groups — e.g. "only a handful of hosts replied to the
    /// scan (the exposed addresses)".
    AtMostGroups {
        /// Group-by attribute.
        key: String,
        /// Maximum number of groups.
        max_groups: usize,
        /// Required filter context `attr == value`.
        context_attr: Option<(String, Value)>,
    },
    /// Some view examines `attr` at all — grouped by it or filtered on it.
    Examined {
        /// The attribute.
        attr: String,
    },
}

impl InsightCheck {
    /// True if a single notebook view satisfies the check.
    pub fn satisfied_by_entry(&self, entry: &NotebookEntry) -> bool {
        if !entry.outcome.is_applied() {
            return false;
        }
        let display = &entry.display;
        match self {
            InsightCheck::DominantGroup {
                key,
                value,
                min_share,
            } => {
                if !display.spec.group_keys.contains(key) {
                    return false;
                }
                let result = &display.result;
                let Ok(key_col) = result.column(key) else {
                    return false;
                };
                let Ok(count_col) = result.column("count") else {
                    return false;
                };
                let total: f64 = count_col.iter().filter_map(|v| v.as_f64()).sum();
                if total <= 0.0 {
                    return false;
                }
                let mut best: Option<(f64, ValueKey)> = None;
                for r in 0..result.n_rows() {
                    let c = count_col.get(r).as_f64().unwrap_or(0.0);
                    if best.as_ref().is_none_or(|(b, _)| c > *b) {
                        best = Some((c, key_col.get(r).key()));
                    }
                }
                match best {
                    Some((c, k)) => k == value.as_ref().key() && c / total >= *min_share,
                    None => false,
                }
            }
            InsightCheck::DrilledInto { attr, value } => display
                .spec
                .predicates
                .iter()
                .any(|p| &p.attr == attr && p.term == *value),
            InsightCheck::ManyGroups {
                key,
                min_groups,
                context_attr,
            } => {
                if !display.spec.group_keys.contains(key) {
                    return false;
                }
                if let Some((ca, cv)) = context_attr {
                    let in_context = display
                        .spec
                        .predicates
                        .iter()
                        .any(|p| &p.attr == ca && p.term == *cv);
                    if !in_context {
                        return false;
                    }
                }
                display
                    .grouping
                    .as_ref()
                    .is_some_and(|g| g.n_groups >= *min_groups)
            }
            InsightCheck::ExtremeGroup { key, agg, value } => {
                if !display.spec.group_keys.contains(key) {
                    return false;
                }
                let result = &display.result;
                let Ok(key_col) = result.column(key) else {
                    return false;
                };
                // Find any aggregate column over `agg`.
                let agg_col = result
                    .schema()
                    .fields()
                    .iter()
                    .find(|f| f.name.ends_with(&format!("({agg})")) && f.name != "count")
                    .and_then(|f| result.column(&f.name).ok());
                let Some(agg_col) = agg_col else { return false };
                let mut best: Option<(f64, ValueKey)> = None;
                for r in 0..result.n_rows() {
                    let Some(v) = agg_col.get(r).as_f64() else {
                        continue;
                    };
                    if best.as_ref().is_none_or(|(b, _)| v > *b) {
                        best = Some((v, key_col.get(r).key()));
                    }
                }
                best.is_some_and(|(_, k)| k == value.as_ref().key())
            }
            InsightCheck::AtMostGroups {
                key,
                max_groups,
                context_attr,
            } => {
                if !display.spec.group_keys.contains(key) {
                    return false;
                }
                if let Some((ca, cv)) = context_attr {
                    let in_context = display
                        .spec
                        .predicates
                        .iter()
                        .any(|p| &p.attr == ca && p.term == *cv);
                    if !in_context {
                        return false;
                    }
                }
                display
                    .grouping
                    .as_ref()
                    .is_some_and(|g| g.n_groups > 0 && g.n_groups <= *max_groups)
            }
            InsightCheck::Examined { attr } => {
                display.spec.group_keys.contains(attr)
                    || display.spec.predicates.iter().any(|p| &p.attr == attr)
                    || display.spec.aggregations.iter().any(|(_, a)| a == attr)
            }
        }
    }

    /// True if any view of the notebook satisfies the check.
    pub fn satisfied_by(&self, notebook: &Notebook) -> bool {
        notebook.entries.iter().any(|e| self.satisfied_by_entry(e))
    }
}

/// A planted insight: description plus its predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Insight {
    /// Stable identifier, e.g. `cyber1.attacker-ip`.
    pub id: String,
    /// Human-readable statement (what the challenge solution would list).
    pub description: String,
    /// The predicate.
    pub check: InsightCheck,
}

impl Insight {
    /// Construct an insight.
    pub fn new(id: &str, description: &str, check: InsightCheck) -> Self {
        Self {
            id: id.to_string(),
            description: description.to_string(),
            check,
        }
    }
}

/// Fraction of `insights` a notebook surfaces (Figure 4b's measure).
pub fn insight_coverage(notebook: &Notebook, insights: &[Insight]) -> f64 {
    if insights.is_empty() {
        return 0.0;
    }
    let hits = insights
        .iter()
        .filter(|i| i.check.satisfied_by(notebook))
        .count();
    hits as f64 / insights.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::{AggFunc, AttrRole, CmpOp, DataFrame, Predicate};
    use atena_env::ResolvedOp;

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "proto",
                AttrRole::Categorical,
                (0..100).map(|i| Some(if i < 70 { "icmp" } else { "tcp" })),
            )
            .str(
                "src",
                AttrRole::Categorical,
                (0..100).map(|i| Some(if i < 70 { "attacker" } else { "normal" })),
            )
            .int(
                "len",
                AttrRole::Numeric,
                (0..100).map(|i| Some(if i < 70 { 64 } else { 1200 })),
            )
            .build()
            .unwrap()
    }

    fn notebook() -> Notebook {
        Notebook::replay(
            "t",
            &base(),
            &[
                ResolvedOp::Group {
                    key: "proto".into(),
                    func: AggFunc::Count,
                    agg: "len".into(),
                },
                ResolvedOp::Filter(Predicate::new("src", CmpOp::Eq, "attacker")),
                ResolvedOp::Group {
                    key: "src".into(),
                    func: AggFunc::Avg,
                    agg: "len".into(),
                },
            ],
        )
    }

    #[test]
    fn dominant_group_detected() {
        let nb = notebook();
        let check = InsightCheck::DominantGroup {
            key: "proto".into(),
            value: Value::Str("icmp".into()),
            min_share: 0.6,
        };
        assert!(check.satisfied_by(&nb));
        let wrong = InsightCheck::DominantGroup {
            key: "proto".into(),
            value: Value::Str("tcp".into()),
            min_share: 0.6,
        };
        assert!(!wrong.satisfied_by(&nb));
        // Within the attacker-filtered views icmp reaches 100%, so the
        // share test must be evaluated against the unfiltered overview only.
        let overview = Notebook::replay(
            "t",
            &base(),
            &[ResolvedOp::Group {
                key: "proto".into(),
                func: AggFunc::Count,
                agg: "len".into(),
            }],
        );
        let too_high = InsightCheck::DominantGroup {
            key: "proto".into(),
            value: Value::Str("icmp".into()),
            min_share: 0.9,
        };
        assert!(!too_high.satisfied_by(&overview));
    }

    #[test]
    fn drilled_into_detected() {
        let nb = notebook();
        let check = InsightCheck::DrilledInto {
            attr: "src".into(),
            value: Value::Str("attacker".into()),
        };
        assert!(check.satisfied_by(&nb));
        let miss = InsightCheck::DrilledInto {
            attr: "src".into(),
            value: Value::Str("nobody".into()),
        };
        assert!(!miss.satisfied_by(&nb));
    }

    #[test]
    fn extreme_group_detected() {
        let nb = notebook();
        // After the filter, the grouped AVG(len) view only has "attacker";
        // its avg (64) attains the max trivially.
        let check = InsightCheck::ExtremeGroup {
            key: "src".into(),
            agg: "len".into(),
            value: Value::Str("attacker".into()),
        };
        assert!(check.satisfied_by(&nb));
    }

    #[test]
    fn examined_detected() {
        let nb = notebook();
        assert!(InsightCheck::Examined {
            attr: "proto".into()
        }
        .satisfied_by(&nb));
        assert!(InsightCheck::Examined { attr: "len".into() }.satisfied_by(&nb));
        // No view touches a nonexistent column.
        assert!(!InsightCheck::Examined { attr: "zzz".into() }.satisfied_by(&nb));
    }

    #[test]
    fn many_groups_with_context() {
        let nb = notebook();
        let check = InsightCheck::ManyGroups {
            key: "src".into(),
            min_groups: 1,
            context_attr: Some(("src".into(), Value::Str("attacker".into()))),
        };
        assert!(check.satisfied_by(&nb));
        let wrong_ctx = InsightCheck::ManyGroups {
            key: "src".into(),
            min_groups: 1,
            context_attr: Some(("src".into(), Value::Str("normal".into()))),
        };
        assert!(!wrong_ctx.satisfied_by(&nb));
    }

    #[test]
    fn coverage_fraction() {
        let nb = notebook();
        let insights = vec![
            Insight::new(
                "a",
                "icmp dominates",
                InsightCheck::DominantGroup {
                    key: "proto".into(),
                    value: Value::Str("icmp".into()),
                    min_share: 0.5,
                },
            ),
            Insight::new(
                "b",
                "never found",
                InsightCheck::Examined {
                    attr: "missing".into(),
                },
            ),
        ];
        assert!((insight_coverage(&nb, &insights) - 0.5).abs() < 1e-12);
        assert_eq!(insight_coverage(&nb, &[]), 0.0);
    }
}
