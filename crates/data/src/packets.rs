//! Shared packet-capture machinery for the cyber-security dataset
//! generators: a honeynet-style schema and a background-traffic generator
//! with heavy-tailed (Zipf-like) token frequencies — the structure the
//! logarithmic term binning exploits.

use atena_dataframe::{AttrRole, DataFrame};
use rand::rngs::StdRng;
use rand::Rng;

/// One packet row of the capture schema.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Seconds offset from capture start.
    pub time: i64,
    /// Source IP address.
    pub source_ip: String,
    /// Destination IP address.
    pub destination_ip: String,
    /// Protocol label (tcp/udp/icmp/http/dns/smtp).
    pub protocol: &'static str,
    /// Source port (null for icmp).
    pub source_port: Option<i64>,
    /// Destination port (null for icmp).
    pub destination_port: Option<i64>,
    /// Frame length in bytes.
    pub length: i64,
    /// TCP flags (null for non-tcp).
    pub tcp_flags: Option<&'static str>,
    /// Free-text info column (wireshark-style).
    pub info: String,
}

/// Build the capture dataframe from packets, sorted by time.
pub fn build_frame(mut packets: Vec<Packet>) -> DataFrame {
    packets.sort_by_key(|p| p.time);
    DataFrame::builder()
        .int(
            "time",
            AttrRole::Temporal,
            packets.iter().map(|p| Some(p.time)),
        )
        .str_owned(
            "source_ip",
            AttrRole::Categorical,
            packets.iter().map(|p| Some(p.source_ip.clone())),
        )
        .str_owned(
            "destination_ip",
            AttrRole::Categorical,
            packets.iter().map(|p| Some(p.destination_ip.clone())),
        )
        .str(
            "protocol",
            AttrRole::Categorical,
            packets.iter().map(|p| Some(p.protocol)),
        )
        .int(
            "source_port",
            AttrRole::Categorical,
            packets.iter().map(|p| p.source_port),
        )
        .int(
            "destination_port",
            AttrRole::Categorical,
            packets.iter().map(|p| p.destination_port),
        )
        .int(
            "length",
            AttrRole::Numeric,
            packets.iter().map(|p| Some(p.length)),
        )
        .str(
            "tcp_flags",
            AttrRole::Categorical,
            packets.iter().map(|p| p.tcp_flags),
        )
        .str_owned(
            "info",
            AttrRole::Text,
            packets.iter().map(|p| Some(p.info.clone())),
        )
        .build()
        .expect("capture schema is consistent")
}

/// Internal hosts of the simulated network.
pub fn internal_host(i: usize) -> String {
    format!("10.0.0.{}", (i % 20) + 1)
}

/// Generate `n` packets of plausible background traffic: web-heavy TCP with
/// DNS lookups and the occasional SMTP, Zipf-skewed host activity.
pub fn background_traffic(n: usize, t0: i64, duration: i64, rng: &mut StdRng) -> Vec<Packet> {
    let external = [
        "93.184.216.34",
        "142.250.74.78",
        "151.101.1.140",
        "104.16.132.229",
        "40.97.153.146",
    ];
    let mut packets = Vec::with_capacity(n);
    for _ in 0..n {
        // Zipf-ish host selection: low indices far more active.
        let host_rank = (rng.gen_range(0.0f64..1.0).powi(3) * 20.0) as usize;
        let host = internal_host(host_rank);
        let ext = external[(rng.gen_range(0.0f64..1.0).powi(2) * external.len() as f64) as usize]
            .to_string();
        let t = t0 + rng.gen_range(0..duration.max(1));
        let roll: f64 = rng.gen();
        let outbound = rng.gen_bool(0.6);
        let (src, dst) = if outbound { (host, ext) } else { (ext, host) };
        let p = if roll < 0.45 {
            Packet {
                time: t,
                source_ip: src,
                destination_ip: dst,
                protocol: "tcp",
                source_port: Some(rng.gen_range(49152..65535)),
                destination_port: Some(
                    *[443i64, 443, 80, 22, 8080]
                        .get(rng.gen_range(0..5))
                        .unwrap(),
                ),
                length: 60 + rng.gen_range(0..1400),
                tcp_flags: Some(["ACK", "PSH-ACK", "SYN", "FIN-ACK"][rng.gen_range(0..4)]),
                info: "tcp segment".to_string(),
            }
        } else if roll < 0.70 {
            Packet {
                time: t,
                source_ip: src,
                destination_ip: dst,
                protocol: "http",
                source_port: Some(rng.gen_range(49152..65535)),
                destination_port: Some(80),
                length: 200 + rng.gen_range(0..1200),
                tcp_flags: Some("PSH-ACK"),
                info: format!(
                    "GET /{} HTTP/1.1",
                    [
                        "index.html",
                        "news",
                        "api/v1/items",
                        "images/logo.png",
                        "search?q=rust"
                    ][rng.gen_range(0..5)]
                ),
            }
        } else if roll < 0.90 {
            Packet {
                time: t,
                source_ip: src,
                destination_ip: dst,
                protocol: "dns",
                source_port: Some(rng.gen_range(49152..65535)),
                destination_port: Some(53),
                length: 60 + rng.gen_range(0..120),
                tcp_flags: None,
                info: format!(
                    "Standard query A {}",
                    [
                        "example.com",
                        "google.com",
                        "github.com",
                        "cdn.site.net",
                        "mail.corp.local"
                    ][rng.gen_range(0..5)]
                ),
            }
        } else {
            Packet {
                time: t,
                source_ip: src,
                destination_ip: dst,
                protocol: "smtp",
                source_port: Some(rng.gen_range(49152..65535)),
                destination_port: Some(25),
                length: 100 + rng.gen_range(0..800),
                tcp_flags: Some("PSH-ACK"),
                info: "MAIL FROM".to_string(),
            }
        };
        packets.push(p);
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn background_traffic_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let packets = background_traffic(500, 0, 3600, &mut rng);
        assert_eq!(packets.len(), 500);
        let frame = build_frame(packets);
        assert_eq!(frame.n_rows(), 500);
        assert_eq!(frame.n_cols(), 9);
        // TCP/HTTP dominate; ICMP absent from background.
        let protos = frame.column("protocol").unwrap().value_counts();
        assert!(protos.len() >= 3);
        assert!(!protos.contains_key(&atena_dataframe::ValueKey::Str("icmp".into())));
        // ICMP-free background has ports everywhere.
        assert_eq!(frame.column("source_port").unwrap().null_count(), 0);
    }

    #[test]
    fn host_activity_is_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let packets = background_traffic(2000, 0, 3600, &mut rng);
        let frame = build_frame(packets);
        let counts = frame.column("source_ip").unwrap().value_counts();
        let max = counts.values().copied().max().unwrap();
        let min = counts.values().copied().min().unwrap();
        assert!(max > min * 3, "expected skew, got max {max} min {min}");
    }

    #[test]
    fn frame_is_time_sorted() {
        let mut rng = StdRng::seed_from_u64(2);
        let frame = build_frame(background_traffic(300, 100, 500, &mut rng));
        let col = frame.column("time").unwrap();
        let mut prev = i64::MIN;
        for v in col.iter() {
            let t = v.as_f64().unwrap() as i64;
            assert!(t >= prev);
            prev = t;
        }
    }
}
