//! `atena-lint` — static enforcement of the determinism & soundness contract.
//!
//! The workspace's core invariant (DESIGN.md §4h–§4m) is that parallelism,
//! batching, caching, and tracing are *execution-only*: transcripts,
//! checkpoints, and HTTP responses stay bit-identical regardless of worker
//! count or cache state. The runtime determinism grids in
//! `tests/determinism.rs` verify this after the fact on exercised paths;
//! this crate rejects the common ways of breaking it *by construction*, on
//! every path, before anything runs.
//!
//! Five rule families, applied per crate tier (see [`Config`]):
//!
//! * **hash-order** — `HashMap`/`HashSet` in semantic crates, where
//!   iteration order would leak into results. Use `BTreeMap`/`BTreeSet`
//!   or annotate a provably lookup-only use.
//! * **wall-clock** — `Instant::now` / `SystemTime::now` /
//!   `available_parallelism` outside telemetry/bench/runtime/server
//!   execution crates.
//! * **rng-discipline** — `splitmix64` or ad-hoc seed construction outside
//!   the registered counter-derived stream constructors in
//!   `crates/runtime/src/lib.rs` (ENV/INIT/EVAL tags).
//! * **panic-path** — `unwrap`/`expect`/`panic!`/unguarded indexing in the
//!   server request path and batch leader/follower code, where a panic
//!   poisons a pooled worker.
//! * **unsafe-inventory** — `unsafe` outside the allowlisted SIMD/signal
//!   modules, `unsafe` without a `// SAFETY:` comment, and crate roots
//!   missing `#![forbid(unsafe_code)]`.
//!
//! Suppression is explicit only: an inline
//! `// atena-lint: allow(<rule>) — <reason>` annotation (reason mandatory,
//! applies to its own line and the next), or an entry in the checked-in
//! ratchet baseline (`lint-baseline.json`), which caps the number of
//! tolerated findings per `(file, rule)` so new violations always fail CI.

#![forbid(unsafe_code)]

pub mod json;
pub mod strip;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// The five rule families. Order here is the severity-agnostic report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    HashOrder,
    WallClock,
    RngDiscipline,
    PanicPath,
    UnsafeInventory,
}

impl Rule {
    pub const ALL: [Rule; 5] = [
        Rule::HashOrder,
        Rule::WallClock,
        Rule::RngDiscipline,
        Rule::PanicPath,
        Rule::UnsafeInventory,
    ];

    pub fn id(self) -> &'static str {
        match self {
            Rule::HashOrder => "hash-order",
            Rule::WallClock => "wall-clock",
            Rule::RngDiscipline => "rng-discipline",
            Rule::PanicPath => "panic-path",
            Rule::UnsafeInventory => "unsafe-inventory",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    pub fn summary(self) -> &'static str {
        match self {
            Rule::HashOrder => "no HashMap/HashSet in semantic crates (iteration order leaks)",
            Rule::WallClock => "no wall-clock reads outside execution-layer crates",
            Rule::RngDiscipline => {
                "seeds come only from the registered runtime stream constructors"
            }
            Rule::PanicPath => "no unwrap/expect/panic/unguarded indexing in pooled request paths",
            Rule::UnsafeInventory => "unsafe only in allowlisted modules, with SAFETY comments",
        }
    }
}

// ---------------------------------------------------------------------------
// Findings & report
// ---------------------------------------------------------------------------

/// Disposition of a finding after annotations and the baseline are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Unsuppressed — fails the check.
    New,
    /// Suppressed by an inline `allow` annotation with a reason.
    Allowed,
    /// Covered by the checked-in ratchet baseline.
    Baselined,
}

impl Status {
    pub fn id(self) -> &'static str {
        match self {
            Status::New => "new",
            Status::Allowed => "allowed",
            Status::Baselined => "baselined",
        }
    }
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
    pub status: Status,
    /// Annotation reason, for `Status::Allowed`.
    pub reason: Option<String>,
}

/// Result of a workspace (or single-source) scan.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    pub fn count(&self, status: Status) -> usize {
        self.findings.iter().filter(|f| f.status == status).count()
    }

    pub fn new_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.status == Status::New)
    }

    /// Machine-readable report, stable field order, one parseable document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"version\":1,\"files_scanned\":{},\"rules_checked\":{},\"summary\":{{\"new\":{},\"allowed\":{},\"baselined\":{}}},\"findings\":[",
            self.files_scanned,
            Rule::ALL.len(),
            self.count(Status::New),
            self.count(Status::Allowed),
            self.count(Status::Baselined),
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"status\":\"{}\",\"message\":\"{}\"",
                json::escape(&f.file),
                f.line,
                f.rule.id(),
                f.status.id(),
                json::escape(&f.message),
            );
            if let Some(reason) = &f.reason {
                let _ = write!(out, ",\"reason\":\"{}\"", json::escape(reason));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Human-readable report: new findings first (the actionable set), then
    /// suppressed ones, then a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.findings.iter().filter(|f| f.status == Status::New) {
            let _ = writeln!(
                out,
                "{}:{}: [{}] {}",
                f.file,
                f.line,
                f.rule.id(),
                f.message
            );
        }
        for f in self.findings.iter().filter(|f| f.status != Status::New) {
            let _ = write!(
                out,
                "{}:{}: [{}] ({}) {}",
                f.file,
                f.line,
                f.rule.id(),
                f.status.id(),
                f.message
            );
            if let Some(reason) = &f.reason {
                let _ = write!(out, " — {reason}");
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "atena-lint: {} finding(s) — {} new, {} allowed, {} baselined; {} file(s) scanned, {} rule(s) checked",
            self.findings.len(),
            self.count(Status::New),
            self.count(Status::Allowed),
            self.count(Status::Baselined),
            self.files_scanned,
            Rule::ALL.len(),
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Baseline (ratchet)
// ---------------------------------------------------------------------------

/// The checked-in ratchet: per `(file, rule)`, how many findings are
/// tolerated as legacy. Findings beyond the cap stay `New` and fail the
/// check, so counts can only go down without an explicit regeneration.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Baseline {
    pub entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Parse `lint-baseline.json`:
    /// `{"version":1,"entries":[{"file":..,"rule":..,"count":..}, ...]}`.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let doc = json::parse(src)?;
        if doc.get("version").and_then(|v| v.as_u64()) != Some(1) {
            return Err("baseline: unsupported or missing version".into());
        }
        let mut entries = BTreeMap::new();
        for e in doc
            .get("entries")
            .and_then(|v| v.as_arr())
            .ok_or("baseline: missing entries array")?
        {
            let file = e
                .get("file")
                .and_then(|v| v.as_str())
                .ok_or("baseline entry: missing file")?;
            let rule = e
                .get("rule")
                .and_then(|v| v.as_str())
                .ok_or("baseline entry: missing rule")?;
            if Rule::from_id(rule).is_none() {
                return Err(format!("baseline entry: unknown rule {rule:?}"));
            }
            let count = e
                .get("count")
                .and_then(|v| v.as_u64())
                .ok_or("baseline entry: missing count")? as usize;
            entries.insert((file.to_string(), rule.to_string()), count);
        }
        Ok(Baseline { entries })
    }

    pub fn to_json(&self) -> String {
        if self.entries.is_empty() {
            return String::from("{\n  \"version\": 1,\n  \"entries\": []\n}\n");
        }
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, ((file, rule), count)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": \"{}\", \"rule\": \"{}\", \"count\": {}}}",
                json::escape(file),
                json::escape(rule),
                count
            );
        }
        if !self.entries.is_empty() {
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Baseline that exactly covers the report's `New` findings.
    pub fn from_report(report: &Report) -> Baseline {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in report.new_findings() {
            *entries
                .entry((f.file.clone(), f.rule.id().to_string()))
                .or_default() += 1;
        }
        Baseline { entries }
    }

    /// Mark up to `count` `New` findings per `(file, rule)` as `Baselined`,
    /// in line order; the excess stays `New`.
    pub fn apply(&self, findings: &mut [Finding]) {
        let mut remaining = self.entries.clone();
        for f in findings.iter_mut() {
            if f.status != Status::New {
                continue;
            }
            let key = (f.file.clone(), f.rule.id().to_string());
            if let Some(n) = remaining.get_mut(&key) {
                if *n > 0 {
                    *n -= 1;
                    f.status = Status::Baselined;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config & file classification
// ---------------------------------------------------------------------------

/// Crate tiers, for reporting. Rule applicability is driven by the explicit
/// sets in [`Config`]; a crate can be semantic for one rule and
/// execution-exempt for another (e.g. `batch`: hash-order applies, its
/// `Instant` flush deadlines do not count as wall-clock violations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    Semantic,
    Execution,
    Vendored,
    Test,
}

#[derive(Debug, Clone)]
pub struct FileClass {
    /// Crate directory name (`dataframe`, `server`, ...); `None` for files
    /// outside `crates/` and `shims/` other than the root crate (`atena`).
    pub crate_dir: Option<String>,
    pub tier: Tier,
    /// True for `src/lib.rs` of some crate (root-attribute checks apply).
    pub crate_root: bool,
}

/// Rule scoping for one workspace. [`Config::workspace_default`] encodes the
/// ATENA tree; tests construct narrower configs against fixture paths.
#[derive(Debug, Clone)]
pub struct Config {
    /// hash-order applies to these crate dirs.
    pub semantic_crates: Vec<&'static str>,
    /// wall-clock is permitted in these crate dirs (execution layer).
    pub wallclock_exempt_crates: Vec<&'static str>,
    /// rng-discipline permits seed construction only in these files.
    pub rng_allowed_files: Vec<&'static str>,
    /// panic-path applies to these files (pooled request/leader paths).
    pub panic_path_files: Vec<&'static str>,
    /// unsafe is permitted (with SAFETY comments) only in these files.
    pub unsafe_allowed_files: Vec<&'static str>,
    /// Crate dirs whose roots may omit `#![forbid(unsafe_code)]` because
    /// they contain allowlisted unsafe modules.
    pub forbid_exempt_crates: Vec<&'static str>,
}

impl Config {
    pub fn workspace_default() -> Config {
        Config {
            semantic_crates: vec!["dataframe", "env", "reward", "rl", "core", "batch"],
            wallclock_exempt_crates: vec![
                "telemetry",
                "bench",
                "benchmark",
                "runtime",
                "server",
                "batch",
            ],
            rng_allowed_files: vec!["crates/runtime/src/lib.rs"],
            panic_path_files: vec![
                "crates/server/src/lib.rs",
                "crates/server/src/http.rs",
                "crates/server/src/engine.rs",
                "crates/server/src/pool.rs",
                "crates/server/src/signal.rs",
                "crates/batch/src/lib.rs",
            ],
            unsafe_allowed_files: vec!["crates/nn/src/tensor.rs", "crates/server/src/signal.rs"],
            forbid_exempt_crates: vec!["nn", "server"],
        }
    }

    fn is_semantic(&self, class: &FileClass) -> bool {
        class
            .crate_dir
            .as_deref()
            .is_some_and(|c| self.semantic_crates.contains(&c))
    }

    fn is_wallclock_exempt(&self, class: &FileClass) -> bool {
        class
            .crate_dir
            .as_deref()
            .is_some_and(|c| self.wallclock_exempt_crates.contains(&c))
    }
}

/// Classify a workspace-relative path (`crates/env/src/cache.rs`).
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    // Anything under a tests/, benches/, examples/, or fixtures/ directory is
    // test-tier and exempt from every rule (the per-line `#[cfg(test)]`
    // exemption handles inline test modules).
    if parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples" | "fixtures"))
    {
        return FileClass {
            crate_dir: None,
            tier: Tier::Test,
            crate_root: false,
        };
    }
    let (crate_dir, vendored, root_src) = match parts.as_slice() {
        ["crates", dir, rest @ ..] => (Some((*dir).to_string()), false, rest),
        ["shims", dir, rest @ ..] => (Some((*dir).to_string()), true, rest),
        // The workspace root crate (`atena`) lives at src/.
        ["src", ..] => (Some("atena".to_string()), false, &parts[..]),
        _ => (None, false, &parts[..]),
    };
    let crate_root = matches!(root_src, ["src", "lib.rs"]);
    let tier = if vendored {
        Tier::Vendored
    } else {
        Tier::Execution
    };
    FileClass {
        crate_dir,
        tier,
        crate_root,
    }
}

// ---------------------------------------------------------------------------
// Per-source scan
// ---------------------------------------------------------------------------

/// True when `word` occurs in `code` with non-identifier characters (or
/// boundaries) on both sides.
fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

fn find_word(code: &str, word: &str) -> Option<usize> {
    let b = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let end = at + word.len();
        let after_ok = end >= b.len() || !is_ident(b[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Unguarded-index heuristic: `ident[expr]` where `expr` names at least one
/// identifier and is not a range (`..`). Literal indices, slices, attribute
/// brackets, array types/literals, and macro brackets don't match.
fn unguarded_index(code: &str) -> bool {
    let b = code.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'[' && i > 0 && (is_ident(b[i - 1]) || b[i - 1] == b')' || b[i - 1] == b']') {
            // Find the matching close bracket.
            let mut depth = 1;
            let mut j = i + 1;
            while j < b.len() && depth > 0 {
                match b[j] {
                    b'[' => depth += 1,
                    b']' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let inner = &b[i + 1..j.saturating_sub(1).max(i + 1)];
            let is_range = inner.windows(2).any(|w| w == b"..");
            let has_ident = inner.iter().any(|&c| c.is_ascii_alphabetic() || c == b'_');
            if !is_range && has_ident {
                return true;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    false
}

fn push(findings: &mut Vec<Finding>, file: &str, line: usize, rule: Rule, message: String) {
    findings.push(Finding {
        file: file.to_string(),
        line,
        rule,
        message,
        status: Status::New,
        reason: None,
    });
}

/// Scan one source file. `rel` is the workspace-relative path used for tier
/// classification; findings come back annotated (`Allowed`) but not
/// baselined — [`Baseline::apply`] is a separate step.
pub fn scan_source(rel: &str, src: &str, config: &Config) -> Vec<Finding> {
    let class = classify(rel);
    if class.tier == Tier::Test {
        return Vec::new();
    }
    let lines = strip::preprocess(src);

    // Annotations: `allow` on line N covers lines N and N+1.
    let mut allows: BTreeMap<(usize, Rule), String> = BTreeMap::new();
    for (idx, line) in lines.iter().enumerate() {
        if let Some((rule_id, reason)) = strip::parse_allow(&line.comment) {
            if reason.is_empty() {
                continue; // reasons are mandatory; a bare allow suppresses nothing
            }
            if let Some(rule) = Rule::from_id(&rule_id) {
                allows.insert((idx + 1, rule), reason.clone());
                allows.insert((idx + 2, rule), reason);
            }
        }
    }

    let mut findings = Vec::new();
    let vendored = class.tier == Tier::Vendored;
    let crate_name = class.crate_dir.clone().unwrap_or_default();

    // Crate roots must forbid unsafe unless the crate hosts allowlisted
    // unsafe modules. Applies to shims too — vendored code is exempt from
    // style rules, not from the unsafe inventory.
    if class.crate_root
        && !config.forbid_exempt_crates.contains(&crate_name.as_str())
        && !lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"))
    {
        push(
            &mut findings,
            rel,
            1,
            Rule::UnsafeInventory,
            format!("crate root of `{crate_name}` missing #![forbid(unsafe_code)]"),
        );
    }

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();

        // unsafe-inventory applies everywhere, including vendored shims.
        if has_word(code, "unsafe") {
            if !config.unsafe_allowed_files.contains(&rel) {
                push(
                    &mut findings,
                    rel,
                    lineno,
                    Rule::UnsafeInventory,
                    "`unsafe` outside the allowlisted modules".to_string(),
                );
            } else {
                // A SAFETY comment may sit above an attribute stack
                // (`#[cfg]`, `#[target_feature]`), so look back a few lines.
                let documented = lines[idx.saturating_sub(5)..=idx]
                    .iter()
                    .any(|l| l.comment.contains("SAFETY:"));
                if !documented {
                    push(
                        &mut findings,
                        rel,
                        lineno,
                        Rule::UnsafeInventory,
                        "`unsafe` without a `// SAFETY:` comment on or above it".to_string(),
                    );
                }
            }
        }
        if vendored {
            continue; // shims get only the unsafe inventory
        }

        if config.is_semantic(&class) {
            for ty in ["HashMap", "HashSet"] {
                if has_word(code, ty) {
                    push(
                        &mut findings,
                        rel,
                        lineno,
                        Rule::HashOrder,
                        format!(
                            "`{ty}` in semantic crate `{crate_name}`: iteration order is nondeterministic; use BTreeMap/BTreeSet or sort before iterating"
                        ),
                    );
                }
            }
        }

        if !config.is_wallclock_exempt(&class) {
            for pat in ["Instant::now", "SystemTime::now"] {
                if code.contains(pat) {
                    push(
                        &mut findings,
                        rel,
                        lineno,
                        Rule::WallClock,
                        format!("`{pat}` outside the execution layer: wall-clock reads must not influence results"),
                    );
                }
            }
            if has_word(code, "available_parallelism") {
                push(
                    &mut findings,
                    rel,
                    lineno,
                    Rule::WallClock,
                    "`available_parallelism` outside the execution layer: worker count is execution-only".to_string(),
                );
            }
        }

        if !config.rng_allowed_files.contains(&rel) {
            for pat in ["splitmix64", "thread_rng", "from_entropy"] {
                if has_word(code, pat) {
                    push(
                        &mut findings,
                        rel,
                        lineno,
                        Rule::RngDiscipline,
                        format!(
                            "`{pat}` outside the registered stream constructors (crates/runtime/src/lib.rs ENV/INIT/EVAL tags)"
                        ),
                    );
                }
            }
            if code.contains("rand::random") {
                push(
                    &mut findings,
                    rel,
                    lineno,
                    Rule::RngDiscipline,
                    "`rand::random` draws from an unregistered global stream".to_string(),
                );
            }
        }

        if config.panic_path_files.contains(&rel) {
            for pat in [
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ] {
                if code.contains(pat) {
                    push(
                        &mut findings,
                        rel,
                        lineno,
                        Rule::PanicPath,
                        format!("`{pat}` in a pooled worker path: a panic poisons the worker; return a typed error"),
                    );
                }
            }
            if unguarded_index(code) {
                push(
                    &mut findings,
                    rel,
                    lineno,
                    Rule::PanicPath,
                    "unguarded index `[..]` in a pooled worker path can panic; use `.get()` or document the invariant".to_string(),
                );
            }
        }
    }

    // Apply annotations.
    for f in &mut findings {
        if let Some(reason) = allows.get(&(f.line, f.rule)) {
            f.status = Status::Allowed;
            f.reason = Some(reason.clone());
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

fn walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every `.rs` file under `root` (skipping `target/` and dotdirs),
/// apply `baseline`, and return the sorted report.
pub fn check_workspace(
    root: &Path,
    config: &Config,
    baseline: &Baseline,
) -> std::io::Result<Report> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    let mut rels: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rels.sort();

    let mut report = Report::default();
    for rel in &rels {
        let src = std::fs::read_to_string(root.join(rel))?;
        report.findings.extend(scan_source(rel, &src, config));
    }
    report.files_scanned = rels.len();
    baseline.apply(&mut report.findings);
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::workspace_default()
    }

    #[test]
    fn hash_order_flags_semantic_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(scan_source("crates/env/src/x.rs", src, &cfg()).len(), 1);
        assert!(scan_source("crates/telemetry/src/x.rs", src, &cfg()).is_empty());
        assert!(scan_source("crates/env/tests/x.rs", src, &cfg()).is_empty());
    }

    #[test]
    fn annotation_with_reason_suppresses() {
        let src = "use std::collections::HashMap; // atena-lint: allow(hash-order) — lookup only\n";
        let f = scan_source("crates/env/src/x.rs", src, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].status, Status::Allowed);
        assert_eq!(f[0].reason.as_deref(), Some("lookup only"));
    }

    #[test]
    fn annotation_without_reason_does_not_suppress() {
        let src = "use std::collections::HashMap; // atena-lint: allow(hash-order)\n";
        let f = scan_source("crates/env/src/x.rs", src, &cfg());
        assert_eq!(f[0].status, Status::New);
    }

    #[test]
    fn annotation_covers_next_line() {
        let src =
            "// atena-lint: allow(wall-clock) — telemetry sampling\nlet t = Instant::now();\n";
        let f = scan_source("crates/env/src/x.rs", src, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].status, Status::Allowed);
    }

    #[test]
    fn unguarded_index_heuristic() {
        assert!(unguarded_index("let x = results[my_idx];"));
        assert!(unguarded_index("self.slab[slot].take()"));
        assert!(!unguarded_index("let x = buf[0];"));
        assert!(!unguarded_index("let s = &xs[start..end];"));
        assert!(!unguarded_index("#[derive(Debug)]"));
        assert!(!unguarded_index("let a: [f32; 4] = make();"));
        assert!(!unguarded_index("vec![0u8; 16]"));
    }

    #[test]
    fn baseline_ratchets() {
        let src = "use std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let mut findings = scan_source("crates/env/src/x.rs", src, &cfg());
        let mut baseline = Baseline::default();
        baseline
            .entries
            .insert(("crates/env/src/x.rs".into(), "hash-order".into()), 1);
        baseline.apply(&mut findings);
        assert_eq!(findings[0].status, Status::Baselined);
        assert_eq!(findings[1].status, Status::New);
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let mut b = Baseline::default();
        b.entries.insert(("a/b.rs".into(), "panic-path".into()), 3);
        b.entries
            .insert(("c — d.rs".into(), "hash-order".into()), 1);
        assert_eq!(Baseline::parse(&b.to_json()).unwrap(), b);
    }
}
