//! Lexical preprocessing for the lint pass.
//!
//! Rust source is split into per-line *code* and *comment* channels: string,
//! raw-string, byte-string, and char literals are blanked out of the code
//! channel (so a pattern mentioned inside a string never matches), while
//! comment text is preserved separately (so `// SAFETY:` and
//! `// atena-lint: allow(...)` annotations stay inspectable). A second pass
//! tracks brace depth to mark every line inside a `#[cfg(test)]` item, which
//! the rules treat as exempt.
//!
//! This is deliberately a lexer, not a parser: it only needs to be right
//! about where comments, literals, and braces are, which a character-level
//! state machine handles for the entire workspace (including the shims).

/// One physical source line after lexical preprocessing.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments and string/char literal contents removed.
    pub code: String,
    /// Concatenated comment text that appeared on this line.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

enum State {
    Code,
    LineComment,
    /// Nested block comments; Rust allows `/* /* */ */`.
    Block(u32),
    /// Ordinary `"..."` or `b"..."` string literal.
    Str,
    /// Raw string `r##"..."##` with the given number of `#`s.
    RawStr(usize),
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length of the char literal starting at `b[0] == b'\''`, or `None` when the
/// quote starts a lifetime instead. Handles escapes (`'\n'`, `'\u{1F600}'`)
/// and multibyte chars; lifetimes are always ASCII identifiers, so a quote
/// not closed immediately after one scalar value is a lifetime.
fn char_literal_len(b: &[u8]) -> Option<usize> {
    debug_assert_eq!(b.first(), Some(&b'\''));
    match b.get(1) {
        Some(b'\\') => {
            // Escaped: scan to the closing quote.
            let mut i = 2;
            while i < b.len() {
                if b[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if b[i] == b'\'' {
                    return Some(i + 1);
                }
                i += 1;
            }
            None
        }
        Some(&c) if c >= 0x80 => {
            // Multibyte scalar: skip its UTF-8 continuation bytes.
            let mut i = 2;
            while i < b.len() && (b[i] & 0xC0) == 0x80 {
                i += 1;
            }
            (b.get(i) == Some(&b'\'')).then_some(i + 1)
        }
        Some(_) => (b.get(2) == Some(&b'\'')).then_some(3),
        None => None,
    }
}

/// If `b` starts a raw (byte) string opener (`r"`, `r#"`, `br##"`, ...),
/// returns `(bytes_to_skip, hash_count)`.
fn raw_str_open(b: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    if b.get(i) == Some(&b'b') {
        i += 1;
    }
    if b.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    (b.get(i) == Some(&b'"')).then_some((i + 1, hashes))
}

/// Split `src` into preprocessed lines (see module docs).
pub fn preprocess(src: &str) -> Vec<Line> {
    let b = src.as_bytes();
    let mut lines: Vec<Line> = Vec::new();
    let mut code: Vec<u8> = Vec::new();
    let mut comment: Vec<u8> = Vec::new();
    let mut state = State::Code;
    let mut i = 0;

    macro_rules! flush_line {
        () => {
            lines.push(Line {
                code: String::from_utf8_lossy(&code).into_owned(),
                comment: String::from_utf8_lossy(&comment).into_owned(),
                in_test: false,
            });
            code.clear();
            comment.clear();
        };
    }

    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::Block(1);
                    i += 2;
                    continue;
                }
                if c == b'"' {
                    state = State::Str;
                    code.push(b' ');
                    i += 1;
                    continue;
                }
                // Raw strings and byte strings — only when the prefix letter
                // isn't the tail of an identifier (e.g. `for r in rows`).
                if (c == b'r' || c == b'b') && !code.last().copied().is_some_and(is_ident_byte) {
                    if let Some((skip, hashes)) = raw_str_open(&b[i..]) {
                        state = State::RawStr(hashes);
                        code.push(b' ');
                        i += skip;
                        continue;
                    }
                    if c == b'b' && b.get(i + 1) == Some(&b'"') {
                        state = State::Str;
                        code.push(b' ');
                        i += 2;
                        continue;
                    }
                    if c == b'b' && b.get(i + 1) == Some(&b'\'') {
                        if let Some(len) = char_literal_len(&b[i + 1..]) {
                            code.push(b' ');
                            i += 1 + len;
                            continue;
                        }
                    }
                }
                if c == b'\'' {
                    if let Some(len) = char_literal_len(&b[i..]) {
                        code.push(b' ');
                        i += len;
                        continue;
                    }
                    // Lifetime: keep the tick so `'a` stays visible as code.
                    code.push(b'\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::Block(depth) => {
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::Block(depth + 1);
                    i += 2;
                    continue;
                }
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                comment.push(c);
                i += 1;
            }
            State::Str => {
                if c == b'\\' {
                    i += 2;
                    continue;
                }
                if c == b'"' {
                    state = State::Code;
                    i += 1;
                    continue;
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == b'"' {
                    let tail = &b[i + 1..];
                    if tail.len() >= hashes && tail[..hashes].iter().all(|&h| h == b'#') {
                        state = State::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        flush_line!();
    }

    mark_test_regions(&mut lines);
    lines
}

/// Mark lines inside `#[cfg(test)]` items by tracking brace depth. An
/// armed attribute latches onto the next `{` at the current depth; a `;`
/// before any brace disarms it (e.g. `#[cfg(test)] use foo;`). Out-of-line
/// `#[cfg(test)] mod x;` modules are not followed — the workspace keeps its
/// test modules inline.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut region_depth: Option<i64> = None;
    for line in lines.iter_mut() {
        if region_depth.is_some() {
            line.in_test = true;
        }
        if line.code.contains("cfg(test)") || line.code.contains("cfg(all(test") {
            armed = true;
            line.in_test = true;
        }
        if armed && region_depth.is_none() {
            line.in_test = true;
        }
        for ch in line.code.bytes() {
            match ch {
                b'{' => {
                    if armed && region_depth.is_none() {
                        region_depth = Some(depth);
                        armed = false;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    if region_depth == Some(depth) {
                        region_depth = None;
                    }
                }
                b';' => {
                    if armed && region_depth.is_none() {
                        armed = false;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Parse an `atena-lint: allow(<rule>) — <reason>` annotation out of comment
/// text. Returns `(rule_id, reason)`; a missing or empty reason yields an
/// empty string, which the caller rejects (reasons are mandatory).
pub fn parse_allow(comment: &str) -> Option<(String, String)> {
    let idx = comment.find("atena-lint:")?;
    let rest = comment[idx + "atena-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | ','))
        .trim()
        .to_string();
    Some((rule, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let lines = preprocess("let x = \"HashMap\"; // HashMap in comment\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap in comment"));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let lines = preprocess("let x = r#\"Instant::now()\"#; let y = 1;\n");
        assert!(!lines[0].code.contains("Instant::now"));
        assert!(lines[0].code.contains("let y = 1;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = preprocess("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(lines[0].code.contains("<'a>"));
        assert!(!lines[0].code.contains("'x'"));
    }

    #[test]
    fn escaped_char_literal() {
        let lines = preprocess("let q = '\\''; let u = '\\u{1F600}'; let ok = 1;\n");
        assert!(lines[0].code.contains("let ok = 1;"));
    }

    #[test]
    fn block_comments_nest() {
        let lines = preprocess("/* outer /* inner */ still */ let z = 2;\n");
        assert!(lines[0].code.contains("let z = 2;"));
        assert!(lines[0].comment.contains("inner"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let m = 1; }\n}\nfn after() {}\n";
        let lines = preprocess(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_test_use_item_disarms() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() { let x = 1; }\n";
        let lines = preprocess(src);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn parse_allow_grammar() {
        let (rule, reason) =
            parse_allow(" atena-lint: allow(hash-order) — lookup-only dictionary index").unwrap();
        assert_eq!(rule, "hash-order");
        assert_eq!(reason, "lookup-only dictionary index");
        let (_, reason) = parse_allow(" atena-lint: allow(wall-clock)").unwrap();
        assert!(reason.is_empty());
        assert!(parse_allow("just a comment").is_none());
    }
}
