//! `atena-lint` CLI — see `atena-lint help`.
//!
//! Exit codes: 0 = clean (no new findings), 1 = new findings, 2 = usage or
//! I/O error. `--write-baseline` regenerates the ratchet and exits 0.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use atena_lint::{check_workspace, find_workspace_root, Baseline, Config, Rule};

const USAGE: &str = "\
atena-lint — determinism & soundness static analysis for the ATENA workspace

USAGE:
    atena-lint check [--root <dir>] [--baseline <file>] [--format text|json]
                     [--write-baseline] [--metrics-out <file>]
    atena-lint rules
    atena-lint help

OPTIONS (check):
    --root <dir>         workspace root (default: nearest [workspace] Cargo.toml)
    --baseline <file>    ratchet baseline (default: <root>/lint-baseline.json)
    --format text|json   report format (default: text)
    --write-baseline     regenerate the baseline from current findings, exit 0
    --metrics-out <file> emit lint.* counters as JSONL telemetry
                         (also honors ATENA_METRICS_OUT)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for r in Rule::ALL {
                println!("{:<16} {}", r.id(), r.summary());
            }
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("atena-lint: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut write_baseline = false;
    let mut metrics_out: Option<PathBuf> = std::env::var_os("ATENA_METRICS_OUT").map(Into::into);

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        macro_rules! value {
            () => {
                match it.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("atena-lint: {arg} requires a value\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            };
        }
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(value!())),
            "--baseline" => baseline_path = Some(PathBuf::from(value!())),
            "--format" => format = value!().clone(),
            "--write-baseline" => write_baseline = true,
            "--metrics-out" => metrics_out = Some(PathBuf::from(value!())),
            other => {
                eprintln!("atena-lint: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !matches!(format.as_str(), "text" | "json") {
        eprintln!("atena-lint: --format must be text or json");
        return ExitCode::from(2);
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("atena-lint: could not locate a [workspace] Cargo.toml; pass --root");
            return ExitCode::from(2);
        }
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("atena-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        // Missing baseline = empty ratchet: every finding counts as new.
        Err(_) => Baseline::default(),
    };

    let config = Config::workspace_default();
    let report = match check_workspace(&root, &config, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("atena-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        // Regenerate from scratch: re-run with an empty ratchet so previously
        // baselined findings are counted again rather than dropped.
        let fresh = match check_workspace(&root, &config, &Baseline::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("atena-lint: scan failed: {e}");
                return ExitCode::from(2);
            }
        };
        let regenerated = Baseline::from_report(&fresh);
        if let Err(e) = std::fs::write(&baseline_path, regenerated.to_json()) {
            eprintln!("atena-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "atena-lint: wrote {} ({} entries)",
            baseline_path.display(),
            regenerated.entries.len()
        );
        return ExitCode::SUCCESS;
    }

    match format.as_str() {
        "json" => println!("{}", report.to_json()),
        _ => print!("{}", report.render_text()),
    }

    if let Some(path) = metrics_out {
        let registry = atena_telemetry::global();
        if let Err(e) = registry.set_jsonl_sink(&path) {
            eprintln!(
                "atena-lint: cannot open metrics sink {}: {e}",
                path.display()
            );
        } else {
            use atena_lint::Status;
            registry
                .counter("lint.findings_total")
                .add(report.findings.len() as u64);
            registry
                .counter("lint.findings_new")
                .add(report.count(Status::New) as u64);
            registry
                .counter("lint.findings_allowed")
                .add(report.count(Status::Allowed) as u64);
            registry
                .counter("lint.findings_baselined")
                .add(report.count(Status::Baselined) as u64);
            registry
                .counter("lint.rules_checked")
                .add(Rule::ALL.len() as u64);
            registry
                .counter("lint.files_scanned")
                .add(report.files_scanned as u64);
            registry.flush();
        }
    }

    if report.new_findings().next().is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
