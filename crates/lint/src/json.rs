//! Minimal JSON support for the baseline file and `--format json` output.
//!
//! Hand-rolled like the rest of the workspace's serialization (the serde
//! shims exist for library crates; tooling stays dependency-free). The
//! parser accepts the full JSON grammar the lint emits — objects, arrays,
//! strings with escapes, integers/floats, booleans, null — which is enough
//! to round-trip baselines and reports.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are kept in sorted order, which also
/// makes re-serialization deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Escape `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing content at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return String::from_utf8(out).map_err(|e| e.to_string());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0C),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            let ch = char::from_u32(code).unwrap_or('\u{FFFD}');
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    out.push(self.b[self.i]);
                    self.i += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basics() {
        let v = parse(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Num(-3.0)));
    }

    #[test]
    fn escape_and_parse_inverse() {
        let s = "line\n\"quoted\" — em\tdash";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
    }
}
