//! Fixture: panics and unguarded indexing in a pooled request path.
//! Scanned under a fake `crates/server/src/http.rs` path.

pub fn handle(results: Vec<Option<u32>>, my_idx: usize) -> u32 {
    let first = results.first().cloned().expect("at least one result");
    let _ = first;
    let mine = results[my_idx].unwrap();
    if mine == 0 {
        panic!("zero result");
    }
    match mine {
        u32::MAX => unreachable!(),
        v => v,
    }
}

pub fn guarded(results: &[u32], idx: usize) -> Option<u32> {
    // Slices and literal indices don't trip the heuristic.
    let _head = &results[..1.min(results.len())];
    results.get(idx).copied()
}
