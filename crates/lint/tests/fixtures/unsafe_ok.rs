//! Fixture: documented unsafe, scanned under the allowlisted
//! `crates/nn/src/tensor.rs` path.

pub fn documented(ptr: *const u8) -> u8 {
    // SAFETY: caller guarantees `ptr` is valid for reads.
    unsafe { *ptr }
}

// SAFETY: callers must verify the target feature at runtime; the comment
// may sit above an attribute stack like this one.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
pub unsafe fn above_attributes() {}
