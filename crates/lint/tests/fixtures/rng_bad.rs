//! Fixture: RNG discipline violations — ad-hoc seed construction outside
//! the registered runtime stream constructors.

pub fn adhoc_seed(x: u64) -> u64 {
    splitmix64(x ^ 0xdeadbeef)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x
}

pub fn global_stream() -> u64 {
    let _ = rand::thread_rng();
    rand::random()
}
