//! Fixture: the clean counterparts — BTreeMap, an annotated lookup-only
//! HashMap, and a HashMap confined to a test module.

use std::collections::BTreeMap;
// atena-lint: allow(hash-order) — lookup-only index, never iterated
use std::collections::HashMap;

pub fn ordered_iteration() -> Vec<String> {
    let mut m: BTreeMap<String, u64> = BTreeMap::new();
    m.insert("a".into(), 1);
    m.iter().map(|(k, _)| k.clone()).collect()
}

// atena-lint: allow(hash-order) — probe by key, no iteration
pub fn probe_only(index: &HashMap<String, usize>, key: &str) -> Option<usize> {
    index.get(key).copied()
}

pub fn mentions_in_strings() -> &'static str {
    "HashMap and HashSet inside a string literal are not code"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_tier_is_exempt() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
