//! Fixture: unsafe outside the allowlist and undocumented unsafe.

pub fn sneaky(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}
