//! Fixture: wall-clock reads in semantic code.

use std::time::{Instant, SystemTime};

pub fn timed_step() -> f64 {
    let start = Instant::now();
    let _ = SystemTime::now();
    start.elapsed().as_secs_f64()
}

pub fn auto_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
