//! Fixture: hash-order violations in a semantic crate.
//! Scanned by the golden tests under a fake `crates/env/src/` path; this
//! file is never compiled.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn leaky_iteration() -> Vec<String> {
    let mut m: HashMap<String, u64> = HashMap::new();
    m.insert("a".into(), 1);
    m.iter().map(|(k, _)| k.clone()).collect()
}

pub fn set_in_signature(s: &HashSet<u32>) -> usize {
    s.len()
}
