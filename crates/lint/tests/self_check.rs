//! Dogfood: the workspace itself must be lint-clean modulo the checked-in
//! baseline. A failure here means a change introduced a determinism or
//! soundness hazard (or needs an explicit `allow` annotation / baseline
//! regeneration) — the same gate CI enforces via `atena-lint -- check`.

use std::path::Path;

use atena_lint::{check_workspace, Baseline, Config, Status};

#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint")
        .to_path_buf();
    assert!(root.join("Cargo.toml").exists(), "bad root: {root:?}");

    let baseline_path = root.join("lint-baseline.json");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).expect("lint-baseline.json parses"),
        Err(_) => Baseline::default(),
    };

    let report = check_workspace(&root, &Config::workspace_default(), &baseline)
        .expect("workspace scan succeeds");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {} files",
        report.files_scanned
    );

    let new: Vec<String> = report
        .new_findings()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule.id(), f.message))
        .collect();
    assert!(
        new.is_empty(),
        "workspace has {} new lint finding(s):\n{}\nfix them, annotate with \
         `// atena-lint: allow(<rule>) — <reason>`, or regenerate the baseline \
         (`cargo run -p atena-lint -- check --write-baseline`)",
        new.len(),
        new.join("\n")
    );

    // The dogfooded annotations must all carry reasons (Allowed implies a
    // parsed, non-empty reason by construction — assert it stays that way).
    assert!(report
        .findings
        .iter()
        .filter(|f| f.status == Status::Allowed)
        .all(|f| f.reason.as_deref().is_some_and(|r| !r.is_empty())));
}
