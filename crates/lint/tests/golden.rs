//! Fixture-driven golden tests: every rule family must flag the seeded
//! violations at the right `file:line`, honor `allow` annotations, respect
//! the test tier, and round-trip baselines through JSON.
//!
//! Fixtures live under `tests/fixtures/` and are never compiled; they are
//! fed to `scan_source` under fake workspace-relative paths so the tier
//! logic sees them as production code.

use atena_lint::{json, scan_source, Baseline, Config, Report, Rule, Status};

const HASH_ORDER_BAD: &str = include_str!("fixtures/hash_order_bad.rs");
const HASH_ORDER_OK: &str = include_str!("fixtures/hash_order_ok.rs");
const WALL_CLOCK_BAD: &str = include_str!("fixtures/wall_clock_bad.rs");
const RNG_BAD: &str = include_str!("fixtures/rng_bad.rs");
const PANIC_PATH_BAD: &str = include_str!("fixtures/panic_path_bad.rs");
const UNSAFE_BAD: &str = include_str!("fixtures/unsafe_bad.rs");
const UNSAFE_OK: &str = include_str!("fixtures/unsafe_ok.rs");

fn cfg() -> Config {
    Config::workspace_default()
}

/// `(line, rule)` pairs of the findings, sorted.
fn flagged(rel: &str, src: &str) -> Vec<(usize, Rule)> {
    let mut v: Vec<(usize, Rule)> = scan_source(rel, src, &cfg())
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect();
    v.sort();
    v
}

#[test]
fn hash_order_bad_lines() {
    assert_eq!(
        flagged("crates/env/src/fixture.rs", HASH_ORDER_BAD),
        vec![
            (5, Rule::HashOrder),
            (6, Rule::HashOrder),
            (9, Rule::HashOrder),
            (14, Rule::HashOrder),
        ]
    );
}

#[test]
fn hash_order_ok_is_clean_modulo_allows() {
    let findings = scan_source("crates/env/src/fixture.rs", HASH_ORDER_OK, &cfg());
    assert!(
        findings.iter().all(|f| f.status == Status::Allowed),
        "unexpected new findings: {findings:?}"
    );
    // The two annotated HashMap uses are reported as allowed, with reasons.
    assert_eq!(findings.len(), 2);
    assert!(findings.iter().all(|f| f.reason.is_some()));
}

#[test]
fn hash_order_only_in_semantic_crates() {
    assert!(flagged("crates/telemetry/src/fixture.rs", HASH_ORDER_BAD).is_empty());
    assert!(flagged("crates/env/tests/fixture.rs", HASH_ORDER_BAD).is_empty());
    assert!(flagged("shims/rand/src/fixture.rs", HASH_ORDER_BAD).is_empty());
}

#[test]
fn wall_clock_bad_lines() {
    assert_eq!(
        flagged("crates/reward/src/fixture.rs", WALL_CLOCK_BAD),
        vec![
            (6, Rule::WallClock),
            (7, Rule::WallClock),
            (12, Rule::WallClock),
        ]
    );
    // Execution-layer crates may read the clock.
    assert!(flagged("crates/runtime/src/fixture.rs", WALL_CLOCK_BAD).is_empty());
    assert!(flagged("crates/server/src/fixture.rs", WALL_CLOCK_BAD).is_empty());
}

#[test]
fn rng_bad_lines() {
    assert_eq!(
        flagged("crates/rl/src/fixture.rs", RNG_BAD),
        vec![
            (5, Rule::RngDiscipline),
            (8, Rule::RngDiscipline),
            (14, Rule::RngDiscipline),
            (15, Rule::RngDiscipline),
        ]
    );
    // The registered stream-constructor file is the one place this is fine.
    assert!(flagged("crates/runtime/src/lib.rs", RNG_BAD)
        .iter()
        .all(|(_, r)| *r != Rule::RngDiscipline));
}

#[test]
fn panic_path_bad_lines() {
    let got = flagged("crates/server/src/http.rs", PANIC_PATH_BAD);
    assert_eq!(
        got,
        vec![
            (5, Rule::PanicPath),  // .expect(
            (7, Rule::PanicPath),  // .unwrap()
            (7, Rule::PanicPath),  // results[my_idx]
            (9, Rule::PanicPath),  // panic!
            (12, Rule::PanicPath), // unreachable!
        ]
    );
    // Outside the pooled paths the same code is not panic-path's business.
    assert!(flagged("crates/cli/src/fixture.rs", PANIC_PATH_BAD).is_empty());
}

#[test]
fn unsafe_inventory_lines() {
    assert_eq!(
        flagged("crates/env/src/danger.rs", UNSAFE_BAD),
        vec![(4, Rule::UnsafeInventory)]
    );
    // Allowlisted module with SAFETY comments (including above an
    // attribute stack) is clean.
    assert!(flagged("crates/nn/src/tensor.rs", UNSAFE_OK).is_empty());
    // The same documented code outside the allowlist is still flagged.
    assert_eq!(
        flagged("crates/env/src/danger.rs", UNSAFE_OK),
        vec![(6, Rule::UnsafeInventory), (13, Rule::UnsafeInventory)]
    );
}

#[test]
fn crate_root_forbid_check() {
    let with = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    let without = "pub fn f() {}\n";
    assert!(scan_source("crates/reward/src/lib.rs", with, &cfg()).is_empty());
    let f = scan_source("crates/reward/src/lib.rs", without, &cfg());
    assert_eq!(f.len(), 1);
    assert_eq!((f[0].line, f[0].rule), (1, Rule::UnsafeInventory));
    // Crates hosting allowlisted unsafe are exempt from the root attribute.
    assert!(scan_source("crates/nn/src/lib.rs", without, &cfg()).is_empty());
    // Shims are not exempt: vendored code skips style rules, not the
    // unsafe inventory.
    assert_eq!(
        scan_source("shims/rand/src/lib.rs", without, &cfg()).len(),
        1
    );
}

#[test]
fn baseline_round_trips_through_json_report() {
    // Build a report over a seeded-bad fixture, derive a baseline from it,
    // serialize both, parse them back, and check the ratchet zeroes out.
    let mut report = Report::default();
    report.findings = scan_source("crates/env/src/fixture.rs", HASH_ORDER_BAD, &cfg());
    report.files_scanned = 1;
    assert_eq!(report.count(Status::New), 4);

    let baseline = Baseline::from_report(&report);
    let reparsed = Baseline::parse(&baseline.to_json()).expect("baseline JSON parses");
    assert_eq!(reparsed, baseline);

    reparsed.apply(&mut report.findings);
    assert_eq!(report.count(Status::New), 0);
    assert_eq!(report.count(Status::Baselined), 4);

    // The JSON report agrees with itself after a parse round-trip.
    let doc = json::parse(&report.to_json()).expect("report JSON parses");
    assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(1));
    let summary = doc.get("summary").expect("summary present");
    assert_eq!(summary.get("new").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(summary.get("baselined").and_then(|v| v.as_u64()), Some(4));
    assert_eq!(
        doc.get("findings")
            .and_then(|v| v.as_arr())
            .map(|a| a.len()),
        Some(4)
    );
    for f in doc.get("findings").and_then(|v| v.as_arr()).unwrap() {
        assert_eq!(f.get("rule").and_then(|v| v.as_str()), Some("hash-order"));
        assert_eq!(f.get("status").and_then(|v| v.as_str()), Some("baselined"));
    }

    // Ratchet semantics: one more finding than the baseline covers → new.
    let mut extra = scan_source("crates/env/src/fixture.rs", HASH_ORDER_BAD, &cfg());
    extra.push(atena_lint::Finding {
        file: "crates/env/src/fixture.rs".into(),
        line: 99,
        rule: Rule::HashOrder,
        message: "synthetic".into(),
        status: Status::New,
        reason: None,
    });
    baseline.apply(&mut extra);
    assert_eq!(extra.iter().filter(|f| f.status == Status::New).count(), 1);
}
