//! Observability for the ATENA workspace: spans, metrics, leveled logging,
//! and a machine-readable JSONL event sink.
//!
//! Everything here is hand-rolled on `std` — no external dependencies — so
//! the crate stays tiny and builds in the offline environment.
//!
//! # Architecture
//!
//! * [`MetricsRegistry`] owns named [`Counter`]s, [`Gauge`]s, and
//!   [`Histogram`]s (fixed log-scale buckets). Handles are cheap `Arc`
//!   clones and safe to update from rollout worker threads.
//! * [`Span`] is a drop-timer: it measures a region and records the elapsed
//!   seconds into a histogram on the registry.
//! * The leveled logger (`error!`/`warn!`/`info!`/`debug!`) writes
//!   human-readable lines to stderr, gated by [`set_level`] /
//!   the `ATENA_LOG` environment variable.
//! * An optional JSONL sink ([`MetricsRegistry::set_jsonl_sink`]) receives
//!   machine-readable events, one JSON object per line, with the stable
//!   schema `{ts, kind, name, value, labels}`.
//!
//! Most code talks to the process-wide registry via [`global`]; tests build
//! private [`MetricsRegistry`] instances to stay isolated.
//!
//! The [`trace`] module adds structured tracing on top: trace ids,
//! hierarchical timed spans with attributes, a bounded span ring, and JSONL
//! trace export (see DESIGN.md §4j).

#![forbid(unsafe_code)]

pub mod trace;

pub use trace::{
    tracer, tracer_arc, ActiveTrace, SpanGuard, SpanRecord, TraceCounts, Tracer, DEFAULT_SPAN_RING,
    ROOT_SPAN_ID,
};

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------------------
// Leveled logging
// ---------------------------------------------------------------------------

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 0,
    /// Degraded but continuing.
    Warn = 1,
    /// Progress and lifecycle messages (default).
    Info = 2,
    /// High-volume diagnostics.
    Debug = 3,
}

impl Level {
    /// Canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a level name (case-insensitive). `None` for unknown names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// 255 = "not initialized yet; consult ATENA_LOG on first use".
static MAX_LEVEL: AtomicU8 = AtomicU8::new(255);

fn load_level() -> u8 {
    let current = MAX_LEVEL.load(Ordering::Relaxed);
    if current != 255 {
        return current;
    }
    let initial = std::env::var("ATENA_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info) as u8;
    // Racing initializers compute the same value; last store wins harmlessly.
    MAX_LEVEL.store(initial, Ordering::Relaxed);
    initial
}

/// Set the process-wide maximum level (overrides `ATENA_LOG`).
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current maximum level.
pub fn max_level() -> Level {
    match load_level() {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether a message at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= load_level()
}

/// Core log entry point; prefer the `error!`/`warn!`/`info!`/`debug!` macros.
///
/// Writes a human-readable line to stderr and, when the global registry has
/// a JSONL sink attached, a `kind: "log"` event to it.
pub fn log(level: Level, message: &str) {
    if !enabled(level) {
        return;
    }
    let ts = unix_ts();
    eprintln!("[{ts:14.3} {:5}] {message}", level.as_str());
    global().emit_event(Event {
        ts,
        kind: "log",
        name: level.as_str().to_string(),
        value: 1.0,
        labels: vec![("message".to_string(), message.to_string())],
    });
}

/// Log at [`Level::Error`]. Takes `format!` arguments.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log($crate::Level::Error, &format!($($arg)*)) };
}

/// Log at [`Level::Warn`]. Takes `format!` arguments.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log($crate::Level::Warn, &format!($($arg)*)) };
}

/// Log at [`Level::Info`]. Takes `format!` arguments.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log($crate::Level::Info, &format!($($arg)*)) };
}

/// Log at [`Level::Debug`]. Takes `format!` arguments.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log($crate::Level::Debug, &format!($($arg)*)) };
}

/// Seconds since the Unix epoch, as f64 (millisecond-ish precision is plenty).
pub fn unix_ts() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Resident-set size of this process in bytes, or `None` where no probe is
/// available. Reads `/proc/self/status` (`VmRSS`, reported in kB, no
/// page-size assumption) and falls back to `/proc/self/statm` (resident
/// pages, assuming 4 KiB pages — correct for the default page size on
/// x86-64 and aarch64 Linux). Soak harnesses sample this through the
/// server's `/v1/metrics` gauge to assert flat memory; it is observational
/// only and must never influence results.
pub fn rss_bytes() -> Option<u64> {
    if let Some(kb) = std::fs::read_to_string("/proc/self/status")
        .ok()
        .as_deref()
        .and_then(vmrss_kb)
    {
        return Some(kb * 1024);
    }
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// Parse the `VmRSS:` line (value in kB) out of `/proc/self/status` text.
fn vmrss_kb(status: &str) -> Option<u64> {
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

// ---------------------------------------------------------------------------
// Events and the JSONL sink
// ---------------------------------------------------------------------------

/// One machine-readable telemetry event. Serialized as a single JSON line
/// with the stable schema `{ts, kind, name, value, labels}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Unix timestamp (seconds).
    pub ts: f64,
    /// Event family: `counter`, `gauge`, `histogram`, `iteration`,
    /// `episode`, `log`, ...
    pub kind: &'static str,
    /// Metric or record name, dot-separated (`train.steps_per_sec`).
    pub name: String,
    /// Primary numeric payload.
    pub value: f64,
    /// Secondary string key/value pairs.
    pub labels: Vec<(String, String)>,
}

impl Event {
    /// Render as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ts\":");
        push_f64(&mut out, self.ts);
        out.push_str(",\"kind\":");
        push_json_str(&mut out, self.kind);
        out.push_str(",\"name\":");
        push_json_str(&mut out, &self.name);
        out.push_str(",\"value\":");
        push_f64(&mut out, self.value);
        out.push_str(",\"labels\":{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            push_json_str(&mut out, v);
        }
        out.push_str("}}");
        out
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// Monotonically increasing event count. Cheap to clone; updates are atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins float value (temperature, learning rate, ...).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log-scale buckets in every histogram (plus an overflow bucket).
pub const HISTOGRAM_BUCKETS: usize = 36;

/// Smallest histogram bucket upper bound, in the metric's own unit. With
/// doubling buckets this spans `1e-7 .. ~3.4` — for latencies in seconds
/// that is 100ns up to a few seconds, with everything larger in overflow.
pub const HISTOGRAM_FIRST_BOUND: f64 = 1e-7;

/// Fixed log₂-scale histogram: bucket `i` counts samples in
/// `(bound(i-1), bound(i)]` where `bound(i) = HISTOGRAM_FIRST_BOUND * 2^i`.
/// The final slot counts overflow. Also tracks count, sum, min, and max.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    count: AtomicU64,
    /// f64 bits, CAS-accumulated.
    sum: AtomicU64,
    /// f64 bits.
    min: AtomicU64,
    /// f64 bits.
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    }
}

impl Histogram {
    /// Upper bound of bucket `i` (inclusive). `None` for the overflow slot.
    pub fn bucket_bound(i: usize) -> Option<f64> {
        if i < HISTOGRAM_BUCKETS {
            Some(HISTOGRAM_FIRST_BOUND * (1u64 << i) as f64)
        } else {
            None
        }
    }

    /// Index of the bucket a sample falls into.
    pub fn bucket_index(v: f64) -> usize {
        if !(v > HISTOGRAM_FIRST_BOUND) {
            // NaN, negatives, and anything at or below the first bound.
            return 0;
        }
        let ratio = v / HISTOGRAM_FIRST_BOUND;
        let idx = ratio.log2().ceil() as usize;
        idx.min(HISTOGRAM_BUCKETS)
    }

    /// Record one sample.
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let inner = &*self.0;
        inner.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        cas_f64(&inner.sum, |s| s + v);
        cas_f64(&inner.min, |m| m.min(v));
        cas_f64(&inner.max, |m| m.max(v));
    }

    /// Record a duration, in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum.load(Ordering::Relaxed))
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        let v = f64::from_bits(self.0.min.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        let v = f64::from_bits(self.0.max.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    /// Approximate quantile from bucket upper bounds (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Some(
                    Self::bucket_bound(i)
                        .unwrap_or(f64::INFINITY)
                        .min(self.max()?),
                );
            }
        }
        self.max()
    }

    /// Per-bucket counts (including the final overflow slot).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

fn cas_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

// ---------------------------------------------------------------------------
// Span timer
// ---------------------------------------------------------------------------

/// Drop-timer: measures a region and records the elapsed seconds into a
/// [`Histogram`] when dropped (or explicitly via [`Span::finish`]).
#[must_use = "a Span measures until it is dropped; binding to _ drops immediately"]
pub struct Span {
    start: Instant,
    target: Option<Histogram>,
}

impl Span {
    /// Start timing into `histogram`.
    pub fn enter(histogram: Histogram) -> Span {
        Span {
            start: Instant::now(),
            target: Some(histogram),
        }
    }

    /// Start a detached timer (elapsed can be read, nothing is recorded).
    pub fn detached() -> Span {
        Span {
            start: Instant::now(),
            target: None,
        }
    }

    /// Seconds since the span started.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stop now, record, and return the elapsed seconds.
    pub fn finish(mut self) -> f64 {
        let elapsed = self.elapsed();
        if let Some(h) = self.target.take() {
            h.record(elapsed);
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(h) = self.target.take() {
            h.record(self.elapsed());
        }
    }
}

/// Time a closure into `histogram`, returning its result.
pub fn time<R>(histogram: &Histogram, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    histogram.record_duration(start.elapsed());
    out
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe home for named metrics plus an optional JSONL event sink.
///
/// Handle lookups take a short mutex; the returned handles update lock-free,
/// so hot paths should look up once and reuse the handle.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Metrics>,
    sink: Mutex<Option<BufWriter<File>>>,
}

impl MetricsRegistry {
    /// Empty registry with no sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("telemetry registry poisoned");
        m.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("telemetry registry poisoned");
        m.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("telemetry registry poisoned");
        m.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Attach a JSONL sink; subsequent events append to `path` (truncating
    /// any previous content).
    pub fn set_jsonl_sink(&self, path: &Path) -> std::io::Result<()> {
        let file = File::create(path)?;
        *self.sink.lock().expect("telemetry sink poisoned") = Some(BufWriter::new(file));
        Ok(())
    }

    /// Whether a JSONL sink is attached.
    pub fn has_sink(&self) -> bool {
        self.sink.lock().expect("telemetry sink poisoned").is_some()
    }

    /// Write one event to the JSONL sink, if attached. Never blocks metric
    /// updates; I/O errors are reported once on stderr and then ignored.
    pub fn emit_event(&self, event: Event) {
        let mut guard = self.sink.lock().expect("telemetry sink poisoned");
        if let Some(w) = guard.as_mut() {
            let line = event.to_json_line();
            if writeln!(w, "{line}").is_err() {
                eprintln!("[telemetry] JSONL sink write failed; disabling sink");
                *guard = None;
            }
        }
    }

    /// Convenience: build and emit an event stamped with the current time.
    pub fn emit(&self, kind: &'static str, name: &str, value: f64, labels: &[(&str, String)]) {
        if !self.has_sink() {
            return;
        }
        self.emit_event(Event {
            ts: unix_ts(),
            kind,
            name: name.to_string(),
            value,
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Emit the current value of every registered metric as `counter` /
    /// `gauge` / `histogram` events, then flush the sink. Histograms emit
    /// `<name>.count`, `<name>.mean`, `<name>.p50`, and `<name>.p99`.
    pub fn flush(&self) {
        if !self.has_sink() {
            return;
        }
        let snapshot: Vec<Event> = {
            let ts = unix_ts();
            let m = self.metrics.lock().expect("telemetry registry poisoned");
            let mut events = Vec::new();
            for (name, c) in &m.counters {
                events.push(Event {
                    ts,
                    kind: "counter",
                    name: name.clone(),
                    value: c.get() as f64,
                    labels: Vec::new(),
                });
            }
            for (name, g) in &m.gauges {
                events.push(Event {
                    ts,
                    kind: "gauge",
                    name: name.clone(),
                    value: g.get(),
                    labels: Vec::new(),
                });
            }
            for (name, h) in &m.histograms {
                for (suffix, value) in [
                    ("count", h.count() as f64),
                    ("mean", h.mean()),
                    ("p50", h.quantile(0.5).unwrap_or(0.0)),
                    ("p99", h.quantile(0.99).unwrap_or(0.0)),
                ] {
                    events.push(Event {
                        ts,
                        kind: "histogram",
                        name: format!("{name}.{suffix}"),
                        value,
                        labels: Vec::new(),
                    });
                }
            }
            events
        };
        for e in snapshot {
            self.emit_event(e);
        }
        if let Some(w) = self.sink.lock().expect("telemetry sink poisoned").as_mut() {
            let _ = w.flush();
        }
    }

    /// Point-in-time structured snapshot of every registered metric, for
    /// machine-readable export (e.g. a server's `/v1/metrics` endpoint).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().expect("telemetry registry poisoned");
        MetricsSnapshot {
            ts: unix_ts(),
            counters: m
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: m.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            histograms: m
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), HistogramSummary::of(h)))
                .collect(),
        }
    }

    /// Human-readable one-line-per-metric summary (for stderr reports).
    pub fn render_text(&self) -> String {
        let m = self.metrics.lock().expect("telemetry registry poisoned");
        let mut out = String::new();
        for (name, c) in &m.counters {
            out.push_str(&format!("counter   {name:<40} {}\n", c.get()));
        }
        for (name, g) in &m.gauges {
            out.push_str(&format!("gauge     {name:<40} {:.6}\n", g.get()));
        }
        for (name, h) in &m.histograms {
            out.push_str(&format!(
                "histogram {name:<40} n={} mean={:.3e} min={:.3e} max={:.3e}\n",
                h.count(),
                h.mean(),
                h.min().unwrap_or(0.0),
                h.max().unwrap_or(0.0),
            ));
        }
        out
    }

    /// Prometheus text exposition (format version 0.0.4) of every registered
    /// metric. Dotted names become underscore-separated with an `atena_`
    /// namespace prefix; histograms expose full cumulative `_bucket{le=...}`
    /// series plus `_sum` and `_count`.
    ///
    /// Serve with content type `text/plain; version=0.0.4`.
    pub fn render_prometheus(&self) -> String {
        let m = self.metrics.lock().expect("telemetry registry poisoned");
        let mut out = String::new();
        for (name, c) in &m.counters {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {}\n", c.get()));
        }
        for (name, g) in &m.gauges {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", g.get()));
        }
        for (name, h) in &m.histograms {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (i, bucket) in h.bucket_counts().into_iter().enumerate() {
                cumulative += bucket;
                match Histogram::bucket_bound(i) {
                    Some(bound) => {
                        out.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"))
                    }
                    None => out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cumulative}\n")),
                }
            }
            out.push_str(&format!("{n}_sum {}\n", h.sum()));
            out.push_str(&format!("{n}_count {}\n", h.count()));
        }
        out
    }
}

/// Map a dotted metric name onto the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, namespaced under `atena_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("atena_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

impl Drop for MetricsRegistry {
    fn drop(&mut self) {
        if let Ok(mut guard) = self.sink.lock() {
            if let Some(w) = guard.as_mut() {
                let _ = w.flush();
            }
        }
    }
}

/// Aggregate view of one histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean of recorded samples (0 when empty).
    pub mean: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Approximate 50th percentile (0 when empty).
    pub p50: f64,
    /// Approximate 95th percentile (0 when empty).
    pub p95: f64,
    /// Approximate 99th percentile (0 when empty).
    pub p99: f64,
}

impl HistogramSummary {
    fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            mean: h.mean(),
            min: h.min().unwrap_or(0.0),
            max: h.max().unwrap_or(0.0),
            p50: h.quantile(0.5).unwrap_or(0.0),
            p95: h.quantile(0.95).unwrap_or(0.0),
            p99: h.quantile(0.99).unwrap_or(0.0),
        }
    }
}

/// A point-in-time copy of every metric in a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Unix timestamp the snapshot was taken at.
    pub ts: f64,
    /// Counter name → total, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → summary, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Counter total by exact name (`None` when absent).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Histogram summary by exact name (`None` when absent).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

/// The process-wide registry. The CLI attaches sinks here; library code
/// records here by default.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

/// A clonable handle on the process-wide registry, for code that stores a
/// registry (e.g. a trainer that accepts a private one in tests).
pub fn global_arc() -> Arc<MetricsRegistry> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmrss_parses_proc_status_format() {
        let status = "Name:\tatena\nVmPeak:\t  123 kB\nVmRSS:\t    2048 kB\nThreads:\t4\n";
        assert_eq!(vmrss_kb(status), Some(2048));
        assert_eq!(vmrss_kb("Name:\tatena\n"), None);
    }

    #[test]
    fn rss_probe_reports_a_sane_value_on_linux() {
        match rss_bytes() {
            // A running test process holds at least a few hundred KiB and
            // (being a test binary) far less than a terabyte.
            Some(rss) => assert!(rss > (1 << 18) && rss < (1u64 << 40), "rss {rss}"),
            // Non-Linux platforms have no /proc; the probe opts out cleanly.
            None => {}
        }
    }

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn counters_and_gauges() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("x").get(), 5);
        let g = reg.gauge("t");
        g.set(-2.5);
        assert_eq!(reg.gauge("t").get(), -2.5);
    }

    #[test]
    fn histogram_bucketing() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(1e-9), 0);
        assert_eq!(Histogram::bucket_index(1e-7), 0);
        // Just above a bound lands in the next bucket.
        assert_eq!(Histogram::bucket_index(1.01e-7), 1);
        assert_eq!(Histogram::bucket_index(1e9), HISTOGRAM_BUCKETS);
        let h = Histogram::default();
        h.record(0.5);
        h.record(1.5);
        assert_eq!(h.count(), 2);
        assert!((h.mean() - 1.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(1.5));
    }

    #[test]
    fn span_records_elapsed() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        {
            let _span = Span::enter(h.clone());
        }
        time(&h, || std::hint::black_box(1 + 1));
        assert_eq!(h.count(), 2);
        assert!(h.min().unwrap() >= 0.0);
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("shared");
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("shared").get(), threads as u64 * per_thread);
    }

    #[test]
    fn snapshot_captures_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("reqs").add(3);
        reg.gauge("temp").set(0.5);
        let h = reg.histogram("lat");
        for v in [0.001, 0.002, 0.004] {
            h.record(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("reqs"), Some(3));
        assert_eq!(snap.counter("absent"), None);
        assert_eq!(snap.gauges, vec![("temp".to_string(), 0.5)]);
        let lat = snap.histogram("lat").unwrap();
        assert_eq!(lat.count, 3);
        assert!(lat.p50 > 0.0 && lat.p50 <= lat.p95 && lat.p95 <= lat.p99);
        assert!((lat.mean - 0.007 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn jsonl_sink_round_trips_events() {
        let dir = std::env::temp_dir().join("atena-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let reg = MetricsRegistry::new();
        reg.set_jsonl_sink(&path).unwrap();
        assert!(reg.has_sink());
        reg.emit(
            "iteration",
            "train.policy_loss",
            0.125,
            &[("iter", "3".to_string())],
        );
        reg.counter("env.op.filter").add(2);
        reg.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "expected >=2 lines, got:\n{text}");
        // Every line parses as one JSON object with the stable field set.
        for line in &lines {
            for field in [
                "\"ts\":",
                "\"kind\":",
                "\"name\":",
                "\"value\":",
                "\"labels\":",
            ] {
                assert!(line.contains(field), "missing {field} in {line}");
            }
        }
        assert!(lines[0].contains("\"train.policy_loss\""));
        assert!(lines[0].contains("\"value\":0.125"));
        assert!(lines[0].contains("\"iter\":\"3\""));
        assert!(text.contains("\"env.op.filter\""));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("server.http.requests").add(7);
        reg.gauge("decode.temperature").set(0.001);
        let h = reg.histogram("server.http.latency_secs");
        h.record(0.002);
        h.record(0.004);
        h.record(1e9); // overflow bucket
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE atena_server_http_requests counter\n"));
        assert!(text.contains("atena_server_http_requests 7\n"));
        assert!(text.contains("# TYPE atena_decode_temperature gauge\n"));
        assert!(text.contains("atena_decode_temperature 0.001\n"));
        assert!(text.contains("# TYPE atena_server_http_latency_secs histogram\n"));
        assert!(text.contains("atena_server_http_latency_secs_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("atena_server_http_latency_secs_count 3\n"));
        // Cumulative buckets never decrease and end at the total count.
        let mut last = 0u64;
        let mut inf_seen = false;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("atena_server_http_latency_secs_bucket") {
                let v: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "cumulative bucket decreased: {line}");
                last = v;
                inf_seen = rest.contains("+Inf");
            }
        }
        assert!(inf_seen, "+Inf bucket must come last");
        assert_eq!(last, 3);
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            let bare = name.split('{').next().unwrap();
            assert!(
                bare.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line}"
            );
        }
    }

    #[test]
    fn event_json_line_schema() {
        let e = Event {
            ts: 12.5,
            kind: "counter",
            name: "env.\"steps\"".to_string(),
            value: 3.0,
            labels: vec![("phase".to_string(), "rollout\n".to_string())],
        };
        assert_eq!(
            e.to_json_line(),
            "{\"ts\":12.5,\"kind\":\"counter\",\"name\":\"env.\\\"steps\\\"\",\
             \"value\":3,\"labels\":{\"phase\":\"rollout\\n\"}}"
        );
    }
}
