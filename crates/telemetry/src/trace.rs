//! Structured tracing: trace ids, hierarchical timed spans with attributes,
//! a bounded in-memory span ring, and JSONL trace export.
//!
//! # Design
//!
//! A [`Tracer`] is the shared home for finished spans. Recording is
//! **lock-light**: an in-flight trace ([`ActiveTrace`]) buffers its spans in
//! a plain `RefCell<Vec<_>>` on the thread that owns it and allocates span
//! ids from a local `Cell` — no atomics, no locks, no thread-locals. The
//! tracer's mutex is taken exactly once per *trace*, when the root span
//! drops and the whole tree is committed to the ring (and, if attached, the
//! JSONL sink).
//!
//! Spans are plain timed records: `Instant` in, duration out. Emission never
//! draws randomness and never reorders work, so tracing is execution-only
//! under the determinism contract (DESIGN.md §4h) — transcripts and
//! checkpoints are bit-identical with tracing on or off.
//!
//! Work measured on *other* threads (e.g. parallel rollout workers) is
//! recorded post-hoc via [`ActiveTrace::record_exact`] using durations the
//! workers already report, keeping the hot path free of cross-thread
//! traffic.
//!
//! The ring is bounded ([`DEFAULT_SPAN_RING`]): under sustained load old
//! spans are evicted (counted in `spans_dropped`) — expected behaviour, not
//! data loss. The JSONL sink, when attached, sees every span regardless of
//! eviction.

use crate::{push_json_str, unix_ts};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default capacity of the finished-span ring.
pub const DEFAULT_SPAN_RING: usize = 8192;

/// Span id of a trace's root span. Parent ids of `0` mean "root".
pub const ROOT_SPAN_ID: u64 = 1;

/// One finished span: a named, timed region within a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// Id unique within the trace; the root span is [`ROOT_SPAN_ID`].
    pub span_id: u64,
    /// Parent span id; `0` for the root span.
    pub parent_id: u64,
    /// Static span name (`server.request`, `rollout.collect`, ...).
    pub name: &'static str,
    /// Unix timestamp (seconds) at span start.
    pub start_ts: f64,
    /// Elapsed wall time in seconds.
    pub duration_secs: f64,
    /// Attribute key/value pairs.
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// Render as one JSON line (no trailing newline). Ids are zero-padded
    /// hex strings so consumers never hit 53-bit float truncation.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"trace\":\"");
        out.push_str(&format!("{:016x}", self.trace_id));
        out.push_str("\",\"span\":\"");
        out.push_str(&format!("{:016x}", self.span_id));
        out.push_str("\",\"parent\":");
        if self.parent_id == 0 {
            out.push_str("null");
        } else {
            out.push_str(&format!("\"{:016x}\"", self.parent_id));
        }
        out.push_str(",\"name\":");
        push_json_str(&mut out, self.name);
        out.push_str(",\"ts\":");
        out.push_str(&format!("{:.6}", self.start_ts));
        out.push_str(",\"dur_secs\":");
        if self.duration_secs.is_finite() {
            out.push_str(&format!("{:.9}", self.duration_secs));
        } else {
            out.push('0');
        }
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            push_json_str(&mut out, v);
        }
        out.push_str("}}");
        out
    }
}

/// Monotone totals over a tracer's lifetime (never reset by eviction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCounts {
    /// Spans committed to the ring/sink.
    pub spans_recorded: u64,
    /// Spans evicted from the ring to make room (still in the sink).
    pub spans_dropped: u64,
    /// Root spans (whole traces) committed.
    pub traces_recorded: u64,
}

struct SpanRing {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
}

/// Shared home for finished spans: a bounded ring plus an optional JSONL
/// sink. Disabled by default; a disabled tracer's guards are no-ops.
pub struct Tracer {
    enabled: AtomicBool,
    next_trace: AtomicU64,
    ring: Mutex<SpanRing>,
    sink: Mutex<Option<BufWriter<File>>>,
    spans_recorded: AtomicU64,
    spans_dropped: AtomicU64,
    traces_recorded: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_RING)
    }
}

impl Tracer {
    /// Disabled tracer with the default ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Disabled tracer with a custom ring capacity (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            next_trace: AtomicU64::new(0),
            ring: Mutex::new(SpanRing {
                spans: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            sink: Mutex::new(None),
            spans_recorded: AtomicU64::new(0),
            spans_dropped: AtomicU64::new(0),
            traces_recorded: AtomicU64::new(0),
        }
    }

    /// Turn span recording on or off. Trace *ids* are always allocatable
    /// (a server hands out `X-Atena-Trace-Id` even with recording off).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Attach a JSONL sink (truncates `path`) and enable recording. Every
    /// committed span is written as one JSON line; the ring is unaffected.
    pub fn set_jsonl_sink(&self, path: &Path) -> std::io::Result<()> {
        let file = File::create(path)?;
        *self.sink.lock().expect("tracer sink poisoned") = Some(BufWriter::new(file));
        self.set_enabled(true);
        Ok(())
    }

    /// Allocate a fresh nonzero trace id. Ids mix a per-process seed with a
    /// counter, so concurrent processes writing to one collector stay
    /// distinguishable while a single process never repeats an id.
    pub fn next_trace_id(&self) -> u64 {
        let n = self.next_trace.fetch_add(1, Ordering::Relaxed);
        // atena-lint: allow(rng-discipline) — trace ids are execution-only, never in results
        let id = splitmix64(process_trace_seed().wrapping_add(n));
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Start a trace with a fresh id. The returned [`ActiveTrace`] is the
    /// root span; drop it (or let it fall out of scope) to commit the tree.
    pub fn trace(&self, name: &'static str) -> ActiveTrace<'_> {
        let id = self.next_trace_id();
        self.trace_with_id(name, id)
    }

    /// Start a trace under a caller-chosen id (e.g. one already promised to
    /// a client in a response header).
    pub fn trace_with_id(&self, name: &'static str, trace_id: u64) -> ActiveTrace<'_> {
        ActiveTrace {
            tracer: self,
            enabled: self.is_enabled(),
            trace_id,
            name,
            start: Instant::now(),
            start_ts: unix_ts(),
            buf: RefCell::new(Vec::new()),
            next_span: Cell::new(ROOT_SPAN_ID + 1),
            attrs: RefCell::new(Vec::new()),
        }
    }

    /// Copy of every span currently in the ring, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        ring.spans.iter().cloned().collect()
    }

    /// Monotone lifetime totals.
    pub fn counts(&self) -> TraceCounts {
        TraceCounts {
            spans_recorded: self.spans_recorded.load(Ordering::Relaxed),
            spans_dropped: self.spans_dropped.load(Ordering::Relaxed),
            traces_recorded: self.traces_recorded.load(Ordering::Relaxed),
        }
    }

    /// Flush the JSONL sink, if attached.
    pub fn flush(&self) {
        if let Some(w) = self.sink.lock().expect("tracer sink poisoned").as_mut() {
            let _ = w.flush();
        }
    }

    /// Commit a finished trace's spans: one ring lock, one sink lock.
    fn commit(&self, spans: Vec<SpanRecord>) {
        if spans.is_empty() {
            return;
        }
        self.spans_recorded
            .fetch_add(spans.len() as u64, Ordering::Relaxed);
        self.traces_recorded.fetch_add(1, Ordering::Relaxed);
        {
            let mut sink = self.sink.lock().expect("tracer sink poisoned");
            if let Some(w) = sink.as_mut() {
                let mut ok = true;
                for s in &spans {
                    if writeln!(w, "{}", s.to_json_line()).is_err() {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    ok = w.flush().is_ok();
                }
                if !ok {
                    eprintln!("[telemetry] trace sink write failed; disabling sink");
                    *sink = None;
                }
            }
        }
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        for s in spans {
            if ring.spans.len() >= ring.capacity {
                ring.spans.pop_front();
                self.spans_dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.spans.push_back(s);
        }
    }
}

// atena-lint: allow(rng-discipline) — local mixer for trace ids, not a seed stream
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Per-process salt for trace ids: wall-clock nanos ⊕ pid, fixed at first use.
fn process_trace_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // atena-lint: allow(rng-discipline) — trace-id salt, execution-only
        splitmix64(nanos ^ ((std::process::id() as u64) << 32))
    })
}

/// An in-flight trace. Doubles as the root span: its lifetime is the root
/// span's duration, and dropping it commits the whole tree to the tracer.
///
/// Not `Send`: a trace is built on one thread (cross-thread work is added
/// post-hoc with [`ActiveTrace::record_exact`]), which is what lets span
/// recording run without locks until commit.
pub struct ActiveTrace<'t> {
    tracer: &'t Tracer,
    enabled: bool,
    trace_id: u64,
    name: &'static str,
    start: Instant,
    start_ts: f64,
    buf: RefCell<Vec<SpanRecord>>,
    next_span: Cell<u64>,
    attrs: RefCell<Vec<(&'static str, String)>>,
}

impl<'t> ActiveTrace<'t> {
    /// This trace's id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The id as the canonical 16-digit lowercase hex string used in the
    /// JSONL export and the `X-Atena-Trace-Id` header.
    pub fn trace_id_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Whether this trace records anything (tracer was enabled at start).
    pub fn is_recording(&self) -> bool {
        self.enabled
    }

    /// Attach an attribute to the root span.
    pub fn attr(&self, key: &'static str, value: impl Into<String>) {
        if self.enabled {
            self.attrs.borrow_mut().push((key, value.into()));
        }
    }

    /// Open a child span of the root. Drop the guard to record it.
    pub fn span<'a>(&'a self, name: &'static str) -> SpanGuard<'a, 't> {
        self.child_of(ROOT_SPAN_ID, name)
    }

    /// Seconds since the trace (root span) started.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Record a span with an exact externally-measured duration (e.g. a
    /// worker thread's busy time) under `parent_id`. The start timestamp is
    /// back-dated by the duration, which is close enough for flame tables.
    pub fn record_exact(
        &self,
        parent_id: u64,
        name: &'static str,
        duration_secs: f64,
        attrs: Vec<(&'static str, String)>,
    ) -> u64 {
        if !self.enabled {
            return 0;
        }
        let span_id = self.alloc_span_id();
        self.buf.borrow_mut().push(SpanRecord {
            trace_id: self.trace_id,
            span_id,
            parent_id,
            name,
            start_ts: unix_ts() - duration_secs.max(0.0),
            duration_secs,
            attrs,
        });
        span_id
    }

    fn child_of<'a>(&'a self, parent_id: u64, name: &'static str) -> SpanGuard<'a, 't> {
        SpanGuard {
            trace: self,
            span_id: if self.enabled {
                self.alloc_span_id()
            } else {
                0
            },
            parent_id,
            name,
            start: Instant::now(),
            start_ts: if self.enabled { unix_ts() } else { 0.0 },
            attrs: Vec::new(),
            done: false,
        }
    }

    fn alloc_span_id(&self) -> u64 {
        let id = self.next_span.get();
        self.next_span.set(id + 1);
        id
    }
}

impl Drop for ActiveTrace<'_> {
    fn drop(&mut self) {
        if !self.enabled {
            return;
        }
        let mut spans = self.buf.take();
        spans.push(SpanRecord {
            trace_id: self.trace_id,
            span_id: ROOT_SPAN_ID,
            parent_id: 0,
            name: self.name,
            start_ts: self.start_ts,
            duration_secs: self.start.elapsed().as_secs_f64(),
            attrs: self.attrs.take(),
        });
        self.tracer.commit(spans);
    }
}

/// An open span inside an [`ActiveTrace`]. Records itself into the trace's
/// buffer when dropped (or explicitly via [`SpanGuard::finish`]).
#[must_use = "a span guard measures until it is dropped; binding to _ drops immediately"]
pub struct SpanGuard<'a, 't> {
    trace: &'a ActiveTrace<'t>,
    span_id: u64,
    parent_id: u64,
    name: &'static str,
    start: Instant,
    start_ts: f64,
    attrs: Vec<(&'static str, String)>,
    done: bool,
}

impl<'a, 't> SpanGuard<'a, 't> {
    /// This span's id within its trace (0 when the trace is not recording).
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// Attach an attribute.
    pub fn set_attr(&mut self, key: &'static str, value: impl Into<String>) {
        if self.trace.enabled {
            self.attrs.push((key, value.into()));
        }
    }

    /// Open a child of this span.
    pub fn child(&self, name: &'static str) -> SpanGuard<'a, 't> {
        self.trace.child_of(self.span_id, name)
    }

    /// Record a child with an exact externally-measured duration.
    pub fn child_exact(
        &self,
        name: &'static str,
        duration_secs: f64,
        attrs: Vec<(&'static str, String)>,
    ) {
        self.trace
            .record_exact(self.span_id, name, duration_secs, attrs);
    }

    /// Seconds since the span opened.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Close now and return the elapsed seconds.
    pub fn finish(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        self.record(elapsed);
        elapsed
    }

    fn record(&mut self, duration_secs: f64) {
        if self.done {
            return;
        }
        self.done = true;
        if !self.trace.enabled {
            return;
        }
        self.trace.buf.borrow_mut().push(SpanRecord {
            trace_id: self.trace.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            name: self.name,
            start_ts: self.start_ts,
            duration_secs,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

impl Drop for SpanGuard<'_, '_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_secs_f64();
        self.record(elapsed);
    }
}

static GLOBAL_TRACER: OnceLock<Arc<Tracer>> = OnceLock::new();

/// The process-wide tracer (disabled until something enables it).
pub fn tracer() -> &'static Tracer {
    GLOBAL_TRACER.get_or_init(|| Arc::new(Tracer::new()))
}

/// A clonable handle on the process-wide tracer, for code that stores one
/// (e.g. a trainer that accepts a private tracer in tests).
pub fn tracer_arc() -> Arc<Tracer> {
    Arc::clone(GLOBAL_TRACER.get_or_init(|| Arc::new(Tracer::new())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_but_hands_out_ids() {
        let t = Tracer::new();
        assert!(!t.is_enabled());
        let a = t.next_trace_id();
        let b = t.next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        {
            let trace = t.trace("root");
            trace.attr("k", "v");
            let mut s = trace.span("child");
            s.set_attr("x", "1");
            let _g = s.child("grandchild");
        }
        assert_eq!(t.counts(), TraceCounts::default());
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn span_tree_parent_links_and_commit() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let trace = t.trace("root");
            trace.attr("who", "test");
            let outer = trace.span("outer");
            {
                let mut inner = outer.child("inner");
                inner.set_attr("step", "0");
            }
            outer.child_exact("exact", 0.25, vec![("worker", "3".to_string())]);
            drop(outer);
            let _solo = trace.span("solo");
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 5);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("root");
        let outer = by_name("outer");
        let inner = by_name("inner");
        let exact = by_name("exact");
        let solo = by_name("solo");
        assert_eq!(root.span_id, ROOT_SPAN_ID);
        assert_eq!(root.parent_id, 0);
        assert_eq!(outer.parent_id, ROOT_SPAN_ID);
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(exact.parent_id, outer.span_id);
        assert_eq!(solo.parent_id, ROOT_SPAN_ID);
        assert!((exact.duration_secs - 0.25).abs() < 1e-12);
        assert_eq!(exact.attrs, vec![("worker", "3".to_string())]);
        assert_eq!(root.attrs, vec![("who", "test".to_string())]);
        // All spans share the trace id; ids are unique within it.
        let mut ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5);
        assert!(spans.iter().all(|s| s.trace_id == root.trace_id));
        let c = t.counts();
        assert_eq!(c.spans_recorded, 5);
        assert_eq!(c.traces_recorded, 1);
        assert_eq!(c.spans_dropped, 0);
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let t = Tracer::with_capacity(4);
        t.set_enabled(true);
        for _ in 0..6 {
            let trace = t.trace("r");
            let _s = trace.span("c");
        }
        // 6 traces × 2 spans = 12 committed, ring holds the newest 4.
        let spans = t.snapshot();
        assert_eq!(spans.len(), 4);
        let c = t.counts();
        assert_eq!(c.spans_recorded, 12);
        assert_eq!(c.spans_dropped, 8);
        assert_eq!(c.traces_recorded, 6);
    }

    #[test]
    fn json_line_schema_and_hex_ids() {
        let rec = SpanRecord {
            trace_id: 0xabc,
            span_id: 2,
            parent_id: 1,
            name: "nn.forward",
            start_ts: 100.5,
            duration_secs: 0.001,
            attrs: vec![("step", "4".to_string())],
        };
        let line = rec.to_json_line();
        assert!(line.contains("\"trace\":\"0000000000000abc\""), "{line}");
        assert!(line.contains("\"span\":\"0000000000000002\""), "{line}");
        assert!(line.contains("\"parent\":\"0000000000000001\""), "{line}");
        assert!(line.contains("\"name\":\"nn.forward\""), "{line}");
        assert!(line.contains("\"dur_secs\":0.001000000"), "{line}");
        assert!(line.contains("\"attrs\":{\"step\":\"4\"}"), "{line}");
        let root = SpanRecord {
            parent_id: 0,
            span_id: 1,
            ..rec
        };
        assert!(root.to_json_line().contains("\"parent\":null"));
    }

    #[test]
    fn jsonl_sink_receives_every_span_despite_ring_eviction() {
        let dir = std::env::temp_dir().join("atena-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink.jsonl");
        let t = Tracer::with_capacity(2);
        t.set_jsonl_sink(&path).unwrap();
        assert!(t.is_enabled());
        for _ in 0..5 {
            let trace = t.trace("r");
            let _s = trace.span("c");
        }
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 10, "sink sees all spans:\n{text}");
        assert_eq!(t.snapshot().len(), 2, "ring stays bounded");
    }

    #[test]
    fn concurrent_traces_from_many_threads_are_consistent() {
        let t = Arc::new(Tracer::with_capacity(100_000));
        t.set_enabled(true);
        let threads = 8usize;
        let traces_per_thread = 200usize;
        let spans_per_trace = 3usize; // root + 2 children
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for j in 0..traces_per_thread {
                        let trace = t.trace("worker.trace");
                        trace.attr("thread", i.to_string());
                        let outer = trace.span("outer");
                        {
                            let mut inner = outer.child("inner");
                            inner.set_attr("j", j.to_string());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected_spans = (threads * traces_per_thread * spans_per_trace) as u64;
        let c = t.counts();
        assert_eq!(
            c.spans_recorded, expected_spans,
            "no lost or duplicated spans"
        );
        assert_eq!(c.traces_recorded, (threads * traces_per_thread) as u64);
        assert_eq!(c.spans_dropped, 0);
        let spans = t.snapshot();
        assert_eq!(spans.len(), expected_spans as usize);
        // Every trace in the ring is complete: exactly one root and two
        // children per trace id, with intact parent links.
        use std::collections::HashMap;
        let mut per_trace: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        for s in &spans {
            per_trace.entry(s.trace_id).or_default().push(s);
        }
        assert_eq!(per_trace.len(), threads * traces_per_thread);
        for (tid, group) in &per_trace {
            assert_eq!(group.len(), spans_per_trace, "trace {tid:x} incomplete");
            let roots: Vec<_> = group.iter().filter(|s| s.parent_id == 0).collect();
            assert_eq!(roots.len(), 1, "trace {tid:x} must have exactly one root");
            assert_eq!(roots[0].span_id, ROOT_SPAN_ID);
        }
    }
}
