//! Visualization suggestions — the extension direction the paper names in
//! §3 ("our EDA environment … can be extended to support, e.g.,
//! visualizations"). Each display is mapped to the chart a notebook UI
//! would render next to it, following standard visualization-recommendation
//! heuristics (categorical key + aggregate → bar; temporal key → line;
//! ungrouped numeric → histogram).

use atena_dataframe::{AttrRole, DType};
use atena_env::Display;
use serde::{Deserialize, Serialize};

/// A declarative chart recommendation for one display.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChartSpec {
    /// Bar chart of an aggregate per group.
    Bar {
        /// Category axis (the group-by key).
        x: String,
        /// Value axis (the aggregate column).
        y: String,
    },
    /// Line chart (temporal or ordinal key).
    Line {
        /// Ordered axis.
        x: String,
        /// Value axis.
        y: String,
    },
    /// Histogram of one numeric column.
    Histogram {
        /// The column.
        column: String,
    },
    /// Plain table (no chart adds value).
    Table,
}

impl ChartSpec {
    /// Human-readable caption, e.g. `bar chart of AVG(delay) by airline`.
    pub fn caption(&self) -> String {
        match self {
            ChartSpec::Bar { x, y } => format!("bar chart of {y} by {x}"),
            ChartSpec::Line { x, y } => format!("line chart of {y} over {x}"),
            ChartSpec::Histogram { column } => format!("histogram of {column}"),
            ChartSpec::Table => "table view".to_string(),
        }
    }
}

/// Recommend a chart for a display.
pub fn suggest_chart(display: &Display) -> ChartSpec {
    if let Some(grouping) = &display.grouping {
        // Too many groups: a chart would be unreadable.
        if grouping.n_groups == 0 || grouping.n_groups > 50 {
            return ChartSpec::Table;
        }
        let key = match display.spec.group_keys.last() {
            Some(k) => k.clone(),
            None => return ChartSpec::Table,
        };
        // Prefer the most recent explicit aggregate; fall back to count.
        let y = display
            .spec
            .aggregations
            .last()
            .map(|(f, a)| format!("{f}({a})"))
            .unwrap_or_else(|| "count".to_string());
        let key_role = display.frame.schema().field(&key).map(|f| f.role).ok();
        return match key_role {
            Some(AttrRole::Temporal) => ChartSpec::Line { x: key, y },
            _ => ChartSpec::Bar { x: key, y },
        };
    }
    // Ungrouped: histogram the first high-variance numeric column, if any.
    let numeric = display.frame.schema().fields().iter().find(|f| {
        (f.dtype == DType::Int || f.dtype == DType::Float) && f.role == AttrRole::Numeric
    });
    match numeric {
        Some(f) if display.frame.n_rows() >= 10 => ChartSpec::Histogram {
            column: f.name.clone(),
        },
        _ => ChartSpec::Table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::{AggFunc, DataFrame};
    use atena_env::DisplaySpec;

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "airline",
                AttrRole::Categorical,
                (0..40).map(|i| Some(["AA", "DL"][i % 2])),
            )
            .int("time", AttrRole::Temporal, (0..40).map(|i| Some(i as i64)))
            .int(
                "delay",
                AttrRole::Numeric,
                (0..40).map(|i| Some((i * 3 % 50) as i64)),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn grouped_categorical_gets_bar() {
        let d = Display::materialize(
            &base(),
            DisplaySpec::default().with_grouping("airline".into(), AggFunc::Avg, "delay".into()),
        )
        .unwrap();
        let spec = suggest_chart(&d);
        assert_eq!(
            spec,
            ChartSpec::Bar {
                x: "airline".into(),
                y: "AVG(delay)".into()
            }
        );
        assert_eq!(spec.caption(), "bar chart of AVG(delay) by airline");
    }

    #[test]
    fn temporal_key_gets_line() {
        let d = Display::materialize(
            &base(),
            DisplaySpec::default().with_grouping("time".into(), AggFunc::Count, "delay".into()),
        )
        .unwrap();
        assert!(matches!(suggest_chart(&d), ChartSpec::Line { .. }));
    }

    #[test]
    fn ungrouped_numeric_gets_histogram() {
        let d = Display::root(&base());
        assert_eq!(
            suggest_chart(&d),
            ChartSpec::Histogram {
                column: "delay".into()
            }
        );
    }

    #[test]
    fn too_many_groups_falls_back_to_table() {
        // 40 distinct time values grouped after filtering to >50 groups? Use
        // a wider frame.
        let wide = DataFrame::builder()
            .int(
                "id",
                AttrRole::Categorical,
                (0..200).map(|i| Some(i as i64)),
            )
            .int("v", AttrRole::Numeric, (0..200).map(|i| Some(i as i64)))
            .build()
            .unwrap();
        let d = Display::materialize(
            &wide,
            DisplaySpec::default().with_grouping("id".into(), AggFunc::Count, "v".into()),
        )
        .unwrap();
        assert_eq!(suggest_chart(&d), ChartSpec::Table);
    }

    #[test]
    fn tiny_ungrouped_table() {
        let small = DataFrame::builder()
            .int("v", AttrRole::Numeric, (0..3).map(|i| Some(i as i64)))
            .build()
            .unwrap();
        let d = Display::root(&small);
        assert_eq!(suggest_chart(&d), ChartSpec::Table);
    }
}
