//! The top-level ATENA API: configure, train, and generate an EDA notebook
//! for a dataset (paper §3, "System Workflow").

use crate::notebook::Notebook;
use atena_dataframe::DataFrame;
use atena_env::{EdaEnv, EnvConfig};
use atena_reward::{CoherencyConfig, CompoundReward, RewardComponents};
use atena_rl::{
    ActionMapper, CurvePoint, FlatPolicy, GreedyConfig, Policy, Trainer, TrainerConfig,
    TwofoldConfig, TwofoldPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Generation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtenaConfig {
    /// Environment configuration (episode length = notebook length, bins…).
    pub env: EnvConfig,
    /// Trainer configuration (PPO, workers, exploration).
    pub trainer: TrainerConfig,
    /// Environment steps to train for.
    pub train_steps: usize,
    /// Random-policy probe steps used to fit the coherency label model and
    /// balance the reward weights.
    pub probe_steps: usize,
    /// Hidden layer widths of the policy trunk.
    pub hidden: [usize; 2],
    /// Cap on filter terms per column for the OTS-DRL explicit-term
    /// enumeration (paper footnote 2 uses 10).
    pub flat_term_cap: usize,
}

impl Default for AtenaConfig {
    fn default() -> Self {
        Self {
            env: EnvConfig::default(),
            trainer: TrainerConfig::default(),
            train_steps: 20_000,
            probe_steps: 400,
            hidden: [128, 128],
            flat_term_cap: 10,
        }
    }
}

impl AtenaConfig {
    /// A reduced schedule for tests and quick demos.
    pub fn quick() -> Self {
        Self {
            env: EnvConfig {
                episode_len: 8,
                n_bins: 8,
                history_window: 3,
                seed: 0,
            },
            trainer: TrainerConfig {
                n_lanes: 2,
                n_workers: 2,
                rollout_len: 64,
                ..Default::default()
            },
            train_steps: 2_000,
            probe_steps: 150,
            hidden: [64, 64],
            flat_term_cap: 10,
        }
    }
}

/// The generation strategy: full ATENA or one of the paper's baselines
/// (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Twofold DRL architecture, compound reward (the system).
    Atena,
    /// Twofold DRL architecture, interestingness-only reward (ATN-IO, 3B).
    AtnIo,
    /// Flat softmax with explicit filter terms, compound reward (OTS-DRL, 4A).
    OtsDrl,
    /// Flat softmax with frequency binning, compound reward (OTS-DRL-B, 4B).
    OtsDrlB,
    /// Greedy one-step lookahead on the compound reward (Greedy-CR, 4C).
    GreedyCr,
    /// Greedy one-step lookahead on interestingness only (Greedy-IO, 3A).
    GreedyIo,
}

impl Strategy {
    /// All strategies in the order Table 2 reports them.
    pub const ALL: [Strategy; 6] = [
        Strategy::AtnIo,
        Strategy::GreedyIo,
        Strategy::OtsDrl,
        Strategy::GreedyCr,
        Strategy::OtsDrlB,
        Strategy::Atena,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Atena => "ATENA",
            Strategy::AtnIo => "ATN-IO",
            Strategy::OtsDrl => "OTS-DRL",
            Strategy::OtsDrlB => "OTS-DRL-B",
            Strategy::GreedyCr => "Greedy-CR",
            Strategy::GreedyIo => "Greedy-IO",
        }
    }

    /// True for the strategies that learn (DRL); greedy ones do not.
    pub fn is_learned(&self) -> bool {
        !matches!(self, Strategy::GreedyCr | Strategy::GreedyIo)
    }
}

/// The result of generating a notebook.
#[derive(Debug, Clone)]
pub struct GenerationResult {
    /// The generated notebook.
    pub notebook: Notebook,
    /// Best episode reward found.
    pub best_reward: f64,
    /// Learning curve (empty for greedy strategies).
    pub curve: Vec<CurvePoint>,
    /// Environment steps consumed.
    pub steps: usize,
}

/// The ATENA system: dataset in, EDA notebook out.
pub struct Atena {
    name: String,
    base: DataFrame,
    focal_attrs: Vec<String>,
    config: AtenaConfig,
    strategy: Strategy,
}

impl Atena {
    /// Create for a named dataset.
    pub fn new(name: impl Into<String>, base: DataFrame) -> Self {
        Self {
            name: name.into(),
            base,
            focal_attrs: Vec::new(),
            config: AtenaConfig::default(),
            strategy: Strategy::Atena,
        }
    }

    /// Set the user's focal attributes (paper §3): columns the session
    /// should concentrate on, fed to the coherency rules.
    pub fn with_focal_attrs<S: Into<String>>(mut self, attrs: impl IntoIterator<Item = S>) -> Self {
        self.focal_attrs = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: AtenaConfig) -> Self {
        self.config = config;
        self
    }

    /// Select a generation strategy (default: full ATENA).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The dataset.
    pub fn dataset(&self) -> &DataFrame {
        &self.base
    }

    /// Build the calibrated reward model for this dataset/strategy.
    pub fn build_reward(&self) -> CompoundReward {
        let components = match self.strategy {
            Strategy::AtnIo | Strategy::GreedyIo => RewardComponents::interestingness_only(),
            _ => RewardComponents::all(),
        };
        let mut reward =
            CompoundReward::new(CoherencyConfig::with_focal_attrs(self.focal_attrs.clone()))
                .with_components(components);
        let mut probe_env = EdaEnv::new(self.base.clone(), self.config.env.clone());
        reward.fit(
            &mut probe_env,
            self.config.probe_steps,
            self.config.env.seed,
        );
        reward
    }

    /// Train (or greedily search) and generate the notebook.
    pub fn generate(&self) -> GenerationResult {
        let reward = Arc::new(self.build_reward());
        match self.strategy {
            Strategy::GreedyCr | Strategy::GreedyIo => self.generate_greedy(reward),
            _ => self.generate_learned(reward),
        }
    }

    fn generate_greedy(&self, reward: Arc<CompoundReward>) -> GenerationResult {
        let mut env = EdaEnv::new(self.base.clone(), self.config.env.clone());
        let episode = atena_rl::greedy_episode(
            &mut env,
            reward.as_ref(),
            GreedyConfig {
                candidate_cap: None,
                seed: self.config.env.seed,
                ..GreedyConfig::default()
            },
        );
        GenerationResult {
            notebook: Notebook::replay(&self.name, &self.base, &episode.ops),
            best_reward: episode.total_reward,
            curve: Vec::new(),
            steps: self.config.env.episode_len,
        }
    }

    fn generate_learned(&self, reward: Arc<CompoundReward>) -> GenerationResult {
        let probe = EdaEnv::new(self.base.clone(), self.config.env.clone());
        let mut rng = StdRng::seed_from_u64(self.config.trainer.seed);
        let (policy, mapper): (Arc<dyn Policy>, ActionMapper) = match self.strategy {
            Strategy::Atena | Strategy::AtnIo => {
                let p = TwofoldPolicy::new(
                    probe.observation_dim(),
                    probe.action_space().head_sizes(),
                    TwofoldConfig {
                        hidden: self.config.hidden,
                    },
                    &mut rng,
                );
                (Arc::new(p), ActionMapper::Twofold)
            }
            Strategy::OtsDrlB => {
                let table = probe.action_space().enumerate_binned();
                let p = FlatPolicy::new(
                    probe.observation_dim(),
                    table.len(),
                    self.config.hidden,
                    &mut rng,
                );
                (Arc::new(p), ActionMapper::FlatBinned(table))
            }
            Strategy::OtsDrl => {
                let table = probe
                    .action_space()
                    .enumerate_with_terms(&self.base, self.config.flat_term_cap);
                let p = FlatPolicy::new(
                    probe.observation_dim(),
                    table.len(),
                    self.config.hidden,
                    &mut rng,
                );
                (Arc::new(p), ActionMapper::FlatTerms(table))
            }
            Strategy::GreedyCr | Strategy::GreedyIo => unreachable!("handled by generate_greedy"),
        };
        let mut trainer = Trainer::new(
            policy,
            mapper,
            reward,
            &self.base,
            self.config.env.clone(),
            self.config.trainer,
        );
        let log = trainer.train(self.config.train_steps);
        let best = log
            .best_episode
            .expect("training always completes at least one episode");
        GenerationResult {
            notebook: Notebook::replay(&self.name, &self.base, &best.ops),
            best_reward: best.total_reward,
            curve: log.curve,
            steps: log.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::AttrRole;

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "proto",
                AttrRole::Categorical,
                (0..80).map(|i| Some(if i % 6 == 0 { "icmp" } else { "tcp" })),
            )
            .str(
                "src_ip",
                AttrRole::Categorical,
                (0..80).map(|i| Some(["10.0.0.1", "10.0.0.2"][(i / 40) as usize])),
            )
            .int(
                "length",
                AttrRole::Numeric,
                (0..80).map(|i| Some((i * 17 % 23) as i64)),
            )
            .build()
            .unwrap()
    }

    fn quick() -> AtenaConfig {
        let mut c = AtenaConfig::quick();
        c.train_steps = 600;
        c.env.episode_len = 5;
        c.probe_steps = 80;
        c
    }

    #[test]
    fn atena_generates_full_notebook() {
        let result = Atena::new("cyber", base())
            .with_focal_attrs(["src_ip"])
            .with_config(quick())
            .generate();
        assert_eq!(result.notebook.len(), 5);
        assert!(!result.curve.is_empty());
        assert!(result.best_reward.is_finite());
        assert!(result.steps >= 600);
    }

    #[test]
    fn greedy_strategy_generates_without_curve() {
        let result = Atena::new("cyber", base())
            .with_config(quick())
            .with_strategy(Strategy::GreedyCr)
            .generate();
        assert_eq!(result.notebook.len(), 5);
        assert!(result.curve.is_empty());
    }

    #[test]
    fn ots_drl_b_uses_flat_binned_space() {
        let result = Atena::new("cyber", base())
            .with_config(quick())
            .with_strategy(Strategy::OtsDrlB)
            .generate();
        assert_eq!(result.notebook.len(), 5);
    }

    #[test]
    fn ots_drl_uses_explicit_terms() {
        let result = Atena::new("cyber", base())
            .with_config(quick())
            .with_strategy(Strategy::OtsDrl)
            .generate();
        assert_eq!(result.notebook.len(), 5);
    }

    #[test]
    fn strategy_metadata() {
        assert_eq!(Strategy::ALL.len(), 6);
        assert!(Strategy::Atena.is_learned());
        assert!(!Strategy::GreedyIo.is_learned());
        assert_eq!(Strategy::OtsDrlB.name(), "OTS-DRL-B");
    }
}
