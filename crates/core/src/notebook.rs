//! The EDA notebook: the artifact ATENA produces (paper §3, Figure 1) — a
//! chronological list of operations with verbal captions and result
//! displays, plus a tree illustration of the exploration paths.

use atena_dataframe::DataFrame;
use atena_env::{Display, EdaEnv, EnvConfig, OpOutcome, ResolvedOp};
use serde::Serialize;

/// One notebook cell: an operation and the display it produced.
#[derive(Debug, Clone)]
pub struct NotebookEntry {
    /// 1-based position in the notebook.
    pub index: usize,
    /// The operation.
    pub op: ResolvedOp,
    /// Verbal description shown next to the cell.
    pub caption: String,
    /// The materialized display after the operation.
    pub display: Display,
    /// Outcome (invalid ops are retained with a note so a replayed session
    /// is faithful; ATENA's own notebooks only contain applied ops).
    pub outcome: OpOutcome,
}

/// An auto-generated EDA notebook.
#[derive(Debug, Clone)]
pub struct Notebook {
    /// Human-readable dataset name (shown in the title).
    pub dataset_name: String,
    /// Notebook cells, chronological.
    pub entries: Vec<NotebookEntry>,
}

impl Notebook {
    /// Replay a sequence of resolved operations against a dataset,
    /// materializing each display. Invalid operations are kept with their
    /// outcome note.
    pub fn replay(dataset_name: &str, base: &DataFrame, ops: &[ResolvedOp]) -> Notebook {
        let mut env = EdaEnv::new(
            base.clone(),
            EnvConfig {
                episode_len: ops.len().max(1),
                ..EnvConfig::default()
            },
        );
        env.reset();
        let mut entries = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            let preview = env.preview(op);
            let entry = NotebookEntry {
                index: i + 1,
                op: op.clone(),
                caption: op.caption(),
                display: preview.display.clone(),
                outcome: preview.outcome.clone(),
            };
            env.commit(preview);
            entries.push(entry);
        }
        Notebook {
            dataset_name: dataset_name.to_string(),
            entries,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the notebook has no cells.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Canonical view identities, in order — the "sentence" the A-EDA
    /// benchmark compares (only applied operations contribute views).
    pub fn views(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| e.outcome.is_applied())
            .map(|e| e.display.spec.canonical())
            .collect()
    }

    /// The operations, in order.
    pub fn ops(&self) -> Vec<ResolvedOp> {
        self.entries.iter().map(|e| e.op.clone()).collect()
    }

    /// Render the notebook as Markdown: title, one section per cell with
    /// the verbal caption and a result preview, and the session-tree
    /// illustration at the end.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# Auto-EDA for {}\n\n", self.dataset_name));
        for e in &self.entries {
            out.push_str(&format!("## [{}] {}\n\n", e.index, e.caption));
            out.push_str(&format!("`{}`\n\n", e.op));
            match &e.outcome {
                OpOutcome::Applied => {
                    let rows = e.display.result.n_rows();
                    out.push_str(&format!("{}\n", e.display.result.head(8)));
                    let chart = crate::viz::suggest_chart(&e.display);
                    if chart == crate::viz::ChartSpec::Table {
                        out.push_str(&format!("*{rows} result rows*\n\n"));
                    } else {
                        out.push_str(&format!(
                            "*{rows} result rows — suggested visualization: {}*\n\n",
                            chart.caption()
                        ));
                    }
                }
                OpOutcome::Invalid(reason) => {
                    out.push_str(&format!("*skipped — {reason}*\n\n"));
                }
                OpOutcome::BackAtRoot => {
                    out.push_str("*already at the raw dataset*\n\n");
                }
            }
        }
        out.push_str("## Exploration tree\n\n```\n");
        out.push_str(&self.tree_illustration());
        out.push_str("```\n");
        out
    }

    /// The dynamic tree-like illustration of the operations (paper Figure
    /// 1, right-hand side): displays as nodes, operations as edges.
    pub fn tree_illustration(&self) -> String {
        // Reconstruct the tree from the op sequence.
        #[derive(Default)]
        struct Node {
            children: Vec<(String, usize)>,
        }
        let mut nodes: Vec<Node> = vec![Node::default()];
        let mut current = 0usize;
        for e in &self.entries {
            match (&e.op, &e.outcome) {
                (ResolvedOp::Back, OpOutcome::Applied) => {
                    // Walk to the parent.
                    current = parent_of(&nodes, current).unwrap_or(0);
                }
                (op, OpOutcome::Applied) => {
                    nodes.push(Node::default());
                    let id = nodes.len() - 1;
                    let label = format!("[{}] {}", e.index, op);
                    nodes[current].children.push((label, id));
                    current = id;
                }
                _ => {}
            }
        }
        fn parent_of(nodes: &[Node], id: usize) -> Option<usize> {
            nodes
                .iter()
                .position(|n| n.children.iter().any(|(_, c)| *c == id))
        }
        fn render(nodes: &[Node], id: usize, prefix: &str, out: &mut String) {
            let n = &nodes[id];
            for (i, (label, child)) in n.children.iter().enumerate() {
                let last = i + 1 == n.children.len();
                out.push_str(prefix);
                out.push_str(if last { "└─ " } else { "├─ " });
                out.push_str(label);
                out.push('\n');
                let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
                render(nodes, *child, &child_prefix, out);
            }
        }
        let mut out = String::from("Raw Dataset\n");
        render(&nodes, 0, "", &mut out);
        out
    }

    /// Serializable summary (op strings, captions, view identities, row
    /// counts) for JSON export.
    pub fn summary(&self) -> NotebookSummary {
        NotebookSummary {
            dataset_name: self.dataset_name.clone(),
            cells: self
                .entries
                .iter()
                .map(|e| CellSummary {
                    index: e.index,
                    operation: e.op.to_string(),
                    caption: e.caption.clone(),
                    view: e.display.spec.canonical(),
                    result_rows: e.display.result.n_rows(),
                    applied: e.outcome.is_applied(),
                })
                .collect(),
        }
    }

    /// JSON export of the summary.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.summary()).expect("summary serializes")
    }
}

/// Serializable notebook summary.
#[derive(Debug, Clone, Serialize)]
pub struct NotebookSummary {
    /// Dataset name.
    pub dataset_name: String,
    /// Cell summaries.
    pub cells: Vec<CellSummary>,
}

/// Serializable cell summary.
#[derive(Debug, Clone, Serialize)]
pub struct CellSummary {
    /// 1-based index.
    pub index: usize,
    /// Operation string.
    pub operation: String,
    /// Verbal caption.
    pub caption: String,
    /// Canonical view identity.
    pub view: String,
    /// Rows in the result display.
    pub result_rows: usize,
    /// Whether the operation applied successfully.
    pub applied: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::{AggFunc, AttrRole, CmpOp, Predicate};

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "airline",
                AttrRole::Categorical,
                (0..30).map(|i| Some(["AA", "DL", "UA"][i % 3])),
            )
            .int(
                "delay",
                AttrRole::Numeric,
                (0..30).map(|i| Some((i * 3 % 40) as i64)),
            )
            .build()
            .unwrap()
    }

    fn ops() -> Vec<ResolvedOp> {
        vec![
            ResolvedOp::Group {
                key: "airline".into(),
                func: AggFunc::Avg,
                agg: "delay".into(),
            },
            ResolvedOp::Back,
            ResolvedOp::Filter(Predicate::new("airline", CmpOp::Eq, "AA")),
            ResolvedOp::Group {
                key: "airline".into(),
                func: AggFunc::Count,
                agg: "delay".into(),
            },
        ]
    }

    #[test]
    fn replay_materializes_all_entries() {
        let nb = Notebook::replay("flights", &base(), &ops());
        assert_eq!(nb.len(), 4);
        assert!(nb.entries.iter().all(|e| e.outcome.is_applied()));
        // Third entry is the AA subset: 10 rows.
        assert_eq!(nb.entries[2].display.result.n_rows(), 10);
        // First entry: 3 airline groups.
        assert_eq!(nb.entries[0].display.result.n_rows(), 3);
    }

    #[test]
    fn views_skip_invalid_ops() {
        let mut ops = ops();
        // SUM over a string column is invalid.
        ops.push(ResolvedOp::Group {
            key: "airline".into(),
            func: AggFunc::Sum,
            agg: "airline".into(),
        });
        let nb = Notebook::replay("flights", &base(), &ops);
        assert_eq!(nb.len(), 5);
        assert_eq!(nb.views().len(), 4);
        assert!(!nb.entries[4].outcome.is_applied());
    }

    #[test]
    fn markdown_contains_captions_and_tree() {
        let nb = Notebook::replay("flights", &base(), &ops());
        let md = nb.to_markdown();
        assert!(md.contains("# Auto-EDA for flights"));
        assert!(md.contains("Group by 'airline'"));
        assert!(md.contains("Exploration tree"));
        assert!(md.contains("Raw Dataset"));
        assert!(md.contains("└─"));
    }

    #[test]
    fn tree_shows_branching() {
        let nb = Notebook::replay("flights", &base(), &ops());
        let tree = nb.tree_illustration();
        // After BACK, the filter branches off the root: two children.
        let root_children = tree
            .lines()
            .filter(|l| l.starts_with("├─") || l.starts_with("└─"))
            .count();
        assert_eq!(root_children, 2, "tree:\n{tree}");
    }

    #[test]
    fn json_round_trips_as_valid_json() {
        let nb = Notebook::replay("flights", &base(), &ops());
        let json = nb.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["dataset_name"], "flights");
        assert_eq!(v["cells"].as_array().unwrap().len(), 4);
    }

    #[test]
    fn empty_notebook() {
        let nb = Notebook::replay("flights", &base(), &[]);
        assert!(nb.is_empty());
        assert!(nb.views().is_empty());
    }
}
