//! # atena-core
//!
//! The public ATENA API (paper §3): give it a tabular dataset and optional
//! focal attributes; it shapes EDA into a control problem, trains a DRL
//! agent against the compound reward, and renders the best exploratory
//! session as an EDA notebook.
//!
//! ```no_run
//! use atena_core::{Atena, AtenaConfig};
//! use atena_dataframe::DataFrame;
//!
//! let df = DataFrame::from_csv_str("airline,delay\nAA,12\nDL,3\n").unwrap();
//! let result = Atena::new("flights", df)
//!     .with_focal_attrs(["delay"])
//!     .with_config(AtenaConfig::quick())
//!     .generate();
//! println!("{}", result.notebook.to_markdown());
//! ```
//!
//! The paper's evaluation baselines (§6.1) are selectable via
//! [`Strategy`], so every Table 2 / Figure 4 / Figure 5 system is generated
//! through the same entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atena;
mod bundle;
mod notebook;
mod viz;

pub use atena::{Atena, AtenaConfig, GenerationResult, Strategy};
pub use bundle::{train_policy_bundle, BundleError, PolicyBundle};
pub use notebook::{CellSummary, Notebook, NotebookEntry, NotebookSummary};
pub use viz::{suggest_chart, ChartSpec};
