//! Self-describing policy bundles: a trained [`TwofoldPolicy`]'s checkpoint
//! plus everything needed to rebuild it and regenerate notebooks without
//! retraining — dataset identity, focal attributes, environment
//! configuration, and network shape.
//!
//! This is the artifact the inference server (`atena-server`) loads at
//! startup and the `atena checkpoint save/load` CLI path produces and
//! validates.

use crate::atena::{Atena, AtenaConfig, Strategy};
use atena_dataframe::DataFrame;
use atena_env::{EdaEnv, EnvConfig, HeadSizes};
use atena_rl::{
    ActionMapper, Checkpoint, CheckpointError, Policy, Trainer, TwofoldConfig, TwofoldPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A serializable, self-describing snapshot of a trained twofold policy.
///
/// Unlike a raw [`Checkpoint`] (parameters + architecture tag only), a
/// bundle records the dataset id, focal attributes, environment
/// configuration, and network shape, so a fresh process can rebuild the
/// exact policy and decode notebooks from it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyBundle {
    /// Bundle format version (bumped on breaking layout changes).
    pub version: u32,
    /// Dataset identity: a built-in dataset id (`cyber1` … `flights4`) or a
    /// free-form name for CSV-trained policies.
    pub dataset: String,
    /// Focal attributes the reward was calibrated with.
    pub focal_attrs: Vec<String>,
    /// Environment configuration the policy was trained under.
    pub env: EnvConfig,
    /// Hidden layer widths of the policy trunk.
    pub hidden: [usize; 2],
    /// Observation dimensionality the policy expects.
    pub obs_dim: usize,
    /// Softmax segment sizes of the twofold output layer.
    pub head_sizes: HeadSizes,
    /// The strategy the policy was trained as (must be a learned twofold
    /// strategy: `Atena` or `AtnIo`).
    pub strategy: Strategy,
    /// Training steps the policy was trained for (provenance).
    pub train_steps: usize,
    /// Best episode reward observed during training (provenance).
    pub best_reward: f64,
    /// The parameter checkpoint.
    pub checkpoint: Checkpoint,
}

/// Errors from building, saving, or loading a bundle.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleError {
    /// Strategy is not a twofold learned strategy.
    Strategy(Strategy),
    /// Underlying checkpoint validation/serde failure.
    Checkpoint(CheckpointError),
    /// Bundle JSON (de)serialization failure.
    Serde(String),
    /// Filesystem failure.
    Io(String),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Strategy(s) => write!(
                f,
                "strategy {} is not a twofold DRL strategy (use atena or atn-io)",
                s.name()
            ),
            BundleError::Checkpoint(e) => write!(f, "{e}"),
            BundleError::Serde(m) => write!(f, "bundle (de)serialization failed: {m}"),
            BundleError::Io(m) => write!(f, "bundle I/O failed: {m}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<CheckpointError> for BundleError {
    fn from(e: CheckpointError) -> Self {
        BundleError::Checkpoint(e)
    }
}

impl PolicyBundle {
    /// Current bundle format version.
    pub const VERSION: u32 = 1;

    /// The architecture tag stored in (and validated against) the inner
    /// checkpoint, derived from the recorded shape.
    pub fn architecture(&self) -> String {
        architecture_tag(self.obs_dim, &self.head_sizes)
    }

    /// Rebuild the policy this bundle describes and load its parameters.
    pub fn build_policy(&self) -> Result<TwofoldPolicy, BundleError> {
        if !matches!(self.strategy, Strategy::Atena | Strategy::AtnIo) {
            return Err(BundleError::Strategy(self.strategy));
        }
        // The init RNG is irrelevant: every parameter is overwritten by the
        // checkpoint restore below.
        let mut rng = StdRng::seed_from_u64(0);
        let policy = TwofoldPolicy::new(
            self.obs_dim,
            self.head_sizes,
            TwofoldConfig {
                hidden: self.hidden,
            },
            &mut rng,
        );
        self.checkpoint
            .restore(&self.architecture(), policy.params())?;
        Ok(policy)
    }

    /// Observation dimensionality a frame with `n_cols` columns yields
    /// under this bundle's environment configuration.
    pub fn obs_dim_for_cols(&self, n_cols: usize) -> usize {
        self.env.history_window * atena_env::DisplayVector::dim_for(n_cols)
    }

    /// Check that `frame` can be served by this bundle's policy: the
    /// environment observation layout is a pure function of the column
    /// count, so any dataset with a compatible shape — including ones
    /// uploaded at runtime — decodes without rebuilding an environment.
    pub fn frame_compatible(&self, frame: &DataFrame) -> Result<(), String> {
        let got = self.obs_dim_for_cols(frame.n_cols());
        if got != self.obs_dim {
            return Err(format!(
                "dataset/bundle mismatch: {} columns yield observation dim {got}, \
                 bundle expects {} (trained on a {}-compatible shape)",
                frame.n_cols(),
                self.obs_dim,
                self.dataset
            ));
        }
        if frame.is_empty() {
            return Err("dataset has no rows".to_string());
        }
        Ok(())
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String, BundleError> {
        serde_json::to_string(self).map_err(|e| BundleError::Serde(e.to_string()))
    }

    /// Deserialize from JSON.
    pub fn from_json(text: &str) -> Result<Self, BundleError> {
        serde_json::from_str(text).map_err(|e| BundleError::Serde(e.to_string()))
    }

    /// Write the bundle to `path` as JSON.
    pub fn save(&self, path: &std::path::Path) -> Result<(), BundleError> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| BundleError::Io(format!("{}: {e}", path.display())))
    }

    /// Read a bundle from a JSON file at `path`.
    pub fn load(path: &std::path::Path) -> Result<Self, BundleError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| BundleError::Io(format!("{}: {e}", path.display())))?;
        Self::from_json(&text)
    }

    /// One-line human-readable description (for CLI output).
    pub fn describe(&self) -> String {
        format!(
            "policy bundle v{}: dataset {:?}, strategy {}, {} params, trained {} steps \
             (best reward {:.3}), episode_len {}, hidden {:?}",
            self.version,
            self.dataset,
            self.strategy.name(),
            self.checkpoint.params.len(),
            self.train_steps,
            self.best_reward,
            self.env.episode_len,
            self.hidden,
        )
    }
}

fn architecture_tag(obs_dim: usize, head_sizes: &HeadSizes) -> String {
    let sizes = head_sizes.as_array();
    let joined = sizes
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join("-");
    format!("twofold/obs{obs_dim}/heads{joined}")
}

/// Train a twofold policy on `frame` and capture it as a [`PolicyBundle`].
///
/// This mirrors [`Atena::generate`]'s learned path but keeps the concrete
/// policy so its parameters can be checkpointed. Only the twofold strategies
/// (`Atena`, `AtnIo`) are bundle-able; the flat baselines' action tables are
/// dataset-derived and the greedy baselines have no parameters.
pub fn train_policy_bundle(
    dataset: &str,
    frame: DataFrame,
    focal_attrs: Vec<String>,
    config: AtenaConfig,
    strategy: Strategy,
) -> Result<PolicyBundle, BundleError> {
    if !matches!(strategy, Strategy::Atena | Strategy::AtnIo) {
        return Err(BundleError::Strategy(strategy));
    }
    let reward = Arc::new(
        Atena::new(dataset, frame.clone())
            .with_focal_attrs(focal_attrs.clone())
            .with_config(config.clone())
            .with_strategy(strategy)
            .build_reward(),
    );
    let probe = EdaEnv::new(frame.clone(), config.env.clone());
    let obs_dim = probe.observation_dim();
    let head_sizes = probe.action_space().head_sizes();
    let mut rng = StdRng::seed_from_u64(config.trainer.seed);
    let policy = Arc::new(TwofoldPolicy::new(
        obs_dim,
        head_sizes,
        TwofoldConfig {
            hidden: config.hidden,
        },
        &mut rng,
    ));
    let mut trainer = Trainer::new(
        Arc::clone(&policy) as Arc<dyn Policy>,
        ActionMapper::Twofold,
        reward,
        &frame,
        config.env.clone(),
        config.trainer,
    );
    let log = trainer.train(config.train_steps);
    let best_reward = log
        .best_episode
        .as_ref()
        .map(|e| e.total_reward)
        .unwrap_or(f64::NEG_INFINITY);
    let checkpoint = Checkpoint::capture(architecture_tag(obs_dim, &head_sizes), policy.params());
    Ok(PolicyBundle {
        version: PolicyBundle::VERSION,
        dataset: dataset.to_string(),
        focal_attrs,
        env: config.env,
        hidden: config.hidden,
        obs_dim,
        head_sizes,
        strategy,
        train_steps: log.steps,
        best_reward,
        checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::AttrRole;

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "proto",
                AttrRole::Categorical,
                (0..60).map(|i| Some(if i % 5 == 0 { "udp" } else { "tcp" })),
            )
            .int(
                "len",
                AttrRole::Numeric,
                (0..60).map(|i| Some((i * 13 % 31) as i64)),
            )
            .build()
            .unwrap()
    }

    fn quick() -> AtenaConfig {
        let mut c = AtenaConfig::quick();
        c.train_steps = 300;
        c.probe_steps = 60;
        c.env.episode_len = 4;
        c
    }

    #[test]
    fn train_capture_rebuild_round_trip() {
        let bundle = train_policy_bundle("test", base(), vec![], quick(), Strategy::Atena).unwrap();
        assert_eq!(bundle.version, PolicyBundle::VERSION);
        assert!(bundle.train_steps >= 300);
        assert!(bundle.best_reward.is_finite());

        let json = bundle.to_json().unwrap();
        let loaded = PolicyBundle::from_json(&json).unwrap();
        let policy = loaded.build_policy().unwrap();
        assert_eq!(
            policy.params().state().len(),
            bundle.checkpoint.params.len()
        );

        // The rebuilt policy behaves identically to a direct restore.
        let direct = loaded.build_policy().unwrap();
        let obs = vec![0.25f32; loaded.obs_dim];
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = policy.act(&obs, 0.01, &mut r1);
        let b = direct.act(&obs, 0.01, &mut r2);
        assert_eq!(a.choice, b.choice);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn greedy_strategy_rejected() {
        let err =
            train_policy_bundle("test", base(), vec![], quick(), Strategy::GreedyCr).unwrap_err();
        assert!(matches!(err, BundleError::Strategy(Strategy::GreedyCr)));
    }

    #[test]
    fn corrupt_bundle_rejected() {
        assert!(matches!(
            PolicyBundle::from_json("{nope"),
            Err(BundleError::Serde(_))
        ));
    }

    #[test]
    fn tampered_shape_rejected_on_rebuild() {
        let mut bundle =
            train_policy_bundle("test", base(), vec![], quick(), Strategy::Atena).unwrap();
        bundle.hidden = [4, 4]; // no longer matches the checkpointed tensors
        assert!(matches!(
            bundle.build_policy(),
            Err(BundleError::Checkpoint(_))
        ));
    }

    #[test]
    fn save_load_file_round_trip() {
        let dir = std::env::temp_dir().join("atena-bundle-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.json");
        let bundle = train_policy_bundle(
            "test",
            base(),
            vec!["proto".into()],
            quick(),
            Strategy::AtnIo,
        )
        .unwrap();
        bundle.save(&path).unwrap();
        let loaded = PolicyBundle::load(&path).unwrap();
        assert_eq!(loaded.dataset, "test");
        assert_eq!(loaded.focal_attrs, vec!["proto".to_string()]);
        assert!(loaded.describe().contains("ATN-IO"));
        loaded.build_policy().unwrap();
        assert!(matches!(
            PolicyBundle::load(std::path::Path::new("/no/such/bundle.json")),
            Err(BundleError::Io(_))
        ));
    }
}
