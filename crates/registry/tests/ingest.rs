//! Property + golden tests for streaming CSV ingest and registry dedup.
//!
//! The determinism contract of the serving stack leans on two facts locked
//! here: (1) the streaming parser accepts exactly the same grammar however
//! the bytes are chunked, and (2) identical content always produces an
//! identical fingerprint (and therefore dataset id), while different
//! content does not collide in practice.

use atena_dataframe::{parse_csv_bytes, CsvLimits, CsvStreamError, CsvStreamParser, DataFrame};
use atena_registry::{DatasetRegistry, RegistryConfig};
use proptest::prelude::*;

/// Deterministic cell text from an integer seed, drawing from a palette
/// that exercises quoting, delimiters, CRLF fragments and multi-byte
/// UTF-8. Cells are prefixed with a letter so columns stay `Str`-typed and
/// value comparisons are exact.
fn cell_from(seed: u32) -> String {
    const PALETTE: &[&str] = &[
        "a", "b", ",", "\"", "\n", "\r", " ", "é", "日", "🦀", "x,y", "\"\"", "\r\n",
    ];
    let mut s = String::from("s");
    let mut v = seed;
    for _ in 0..(seed % 5) {
        s.push_str(PALETTE[(v % PALETTE.len() as u32) as usize]);
        v = v.wrapping_mul(2654435761).wrapping_add(1);
    }
    s
}

/// RFC-4180 writer used as the generator side of round-trip properties.
fn write_csv(header: &[String], rows: &[Vec<String>]) -> String {
    fn quote(f: &str) -> String {
        if f.contains(',') || f.contains('"') || f.contains('\n') || f.contains('\r') {
            format!("\"{}\"", f.replace('"', "\"\""))
        } else {
            f.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|f| quote(f)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

fn shape(seeds: &[u32], n_cols: usize) -> (Vec<String>, Vec<Vec<String>>) {
    let header: Vec<String> = (0..n_cols).map(|c| format!("col{c}")).collect();
    let rows: Vec<Vec<String>> = seeds
        .chunks_exact(n_cols)
        .map(|chunk| chunk.iter().map(|&s| cell_from(s)).collect())
        .collect();
    (header, rows)
}

proptest! {
    /// Writer → parser round-trips every cell exactly, whatever mix of
    /// quotes, delimiters, newlines and unicode the cells contain.
    #[test]
    fn round_trip_preserves_cells(
        seeds in prop::collection::vec(any::<u32>(), 2..120),
        n_cols in 2usize..5,
    ) {
        let (header, rows) = shape(&seeds, n_cols);
        let csv = write_csv(&header, &rows);
        let df = DataFrame::from_csv_str(&csv).unwrap();
        prop_assert_eq!(df.n_rows(), rows.len());
        prop_assert_eq!(df.n_cols(), n_cols);
        for (r, row) in rows.iter().enumerate() {
            for (c, want) in row.iter().enumerate() {
                let got = df.value(r, &header[c]).unwrap().to_string();
                prop_assert_eq!(&got, want);
            }
        }
    }

    /// Chunk boundaries are invisible: pushing the same bytes in arbitrary
    /// splits produces a frame with an identical fingerprint.
    #[test]
    fn chunking_is_invisible(
        seeds in prop::collection::vec(any::<u32>(), 2..80),
        n_cols in 2usize..4,
        splits in prop::collection::vec(1usize..7, 1..40),
    ) {
        let (header, rows) = shape(&seeds, n_cols);
        let csv = write_csv(&header, &rows);
        let whole = parse_csv_bytes(csv.as_bytes(), CsvLimits::unlimited()).unwrap();

        let mut parser = CsvStreamParser::new(CsvLimits::unlimited());
        let bytes = csv.as_bytes();
        let mut at = 0;
        let mut split_iter = splits.iter().cycle();
        while at < bytes.len() {
            let step = (*split_iter.next().unwrap()).min(bytes.len() - at);
            parser.push(&bytes[at..at + step]).unwrap();
            at += step;
        }
        let piecewise = parser.finish().unwrap();
        prop_assert_eq!(whole.fingerprint(), piecewise.fingerprint());
    }

    /// CRLF line endings parse to the same frame as LF (when no cell
    /// contains raw newline bytes).
    #[test]
    fn crlf_equals_lf(
        seeds in prop::collection::vec(0u32..1000, 2..80),
        n_cols in 2usize..4,
    ) {
        let (header, rows) = shape(&seeds, n_cols);
        // Strip newline-bearing cells for this property.
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|r| r.into_iter().map(|c| c.replace(['\n', '\r'], "_")).collect())
            .collect();
        let lf = write_csv(&header, &rows);
        let crlf = lf.replace('\n', "\r\n");
        let a = DataFrame::from_csv_str(&lf).unwrap();
        let b = DataFrame::from_csv_str(&crlf).unwrap();
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// Registry dedup: identical content maps to one entry and one id;
    /// distinct content gets a distinct id.
    #[test]
    fn dedup_by_content(
        seeds in prop::collection::vec(any::<u32>(), 4..60),
        n_cols in 2usize..4,
    ) {
        let (header, rows) = shape(&seeds, n_cols);
        let csv = write_csv(&header, &rows);
        let reg = DatasetRegistry::new(RegistryConfig {
            limits: CsvLimits::unlimited(),
            ..RegistryConfig::default()
        });
        let a = reg.ingest("t1", "a", csv.as_bytes()).unwrap();
        let b = reg.ingest("t2", "b", csv.as_bytes()).unwrap();
        prop_assert!(b.deduplicated);
        prop_assert_eq!(&a.info.dataset_id, &b.info.dataset_id);
        prop_assert_eq!(reg.list().len(), 1);

        // Perturb one cell: different content, different id.
        let mut rows2 = rows.clone();
        rows2[0][0].push('~');
        let csv2 = write_csv(&header, &rows2);
        let c = reg.ingest("t1", "c", csv2.as_bytes()).unwrap();
        prop_assert!(!c.deduplicated);
        prop_assert!(a.info.dataset_id != c.info.dataset_id);
    }

    /// Budget invariant under churn: whatever the upload sequence, resident
    /// unpinned bytes never exceed the budget.
    #[test]
    fn budget_holds_under_churn(
        tags in prop::collection::vec(0u32..12, 1..30),
    ) {
        let reg = DatasetRegistry::new(RegistryConfig {
            budget_bytes: 4096,
            max_datasets: 4,
            tenant_quota_bytes: 4096,
            limits: CsvLimits::unlimited(),
        });
        for (i, tag) in tags.iter().enumerate() {
            let mut csv = String::from("k,v\n");
            for r in 0..(tag + 1) * 3 {
                csv.push_str(&format!("row{tag}_{r},{r}\n"));
            }
            let tenant = format!("t{}", i % 3);
            let _ = reg.ingest(&tenant, "d", csv.as_bytes());
            let snap = reg.snapshot();
            prop_assert!(snap.unpinned_bytes <= snap.budget_bytes);
            prop_assert!(snap.entries <= 4);
        }
    }
}

// ---- golden cases -------------------------------------------------------

#[test]
fn golden_quoted_fields_with_embedded_commas_and_newlines() {
    let csv = "id,desc\n1,\"first, with comma\"\n2,\"two\nlines\"\n3,\"quote \"\"q\"\" done\"\n";
    let df = DataFrame::from_csv_str(csv).unwrap();
    assert_eq!(df.n_rows(), 3);
    assert_eq!(
        df.value(0, "desc").unwrap().to_string(),
        "first, with comma"
    );
    assert_eq!(df.value(1, "desc").unwrap().to_string(), "two\nlines");
    assert_eq!(df.value(2, "desc").unwrap().to_string(), "quote \"q\" done");
}

#[test]
fn golden_crlf_file() {
    let df = DataFrame::from_csv_str("a,b\r\n1,hello\r\n2,world\r\n").unwrap();
    assert_eq!(df.n_rows(), 2);
    assert_eq!(df.value(1, "b").unwrap().to_string(), "world");
}

#[test]
fn golden_ragged_row_reports_physical_line() {
    let err = parse_csv_bytes(b"a,b\n1,2\n3\n", CsvLimits::unlimited()).unwrap_err();
    assert_eq!(
        err,
        CsvStreamError::Csv {
            line: 3,
            message: "expected 2 fields, found 1".into()
        }
    );
}

#[test]
fn golden_empty_and_header_only_files() {
    assert!(matches!(
        parse_csv_bytes(b"", CsvLimits::unlimited()),
        Err(CsvStreamError::Csv { line: 1, .. })
    ));
    let df = parse_csv_bytes(b"a,b\n", CsvLimits::unlimited()).unwrap();
    assert_eq!((df.n_rows(), df.n_cols()), (0, 2));
}

#[test]
fn golden_unicode_cells() {
    let csv = "name,emoji\n\u{65e5}\u{672c}\u{8a9e},\u{1f980}\nna\u{ef}ve,\u{2713}\n";
    let df = DataFrame::from_csv_str(csv).unwrap();
    assert_eq!(df.value(0, "name").unwrap().to_string(), "日本語");
    assert_eq!(df.value(0, "emoji").unwrap().to_string(), "🦀");
    assert_eq!(df.value(1, "name").unwrap().to_string(), "naïve");
}

#[test]
fn golden_duplicate_upload_same_fingerprint() {
    let csv = "k,v\nx,1\ny,2\n";
    let a = parse_csv_bytes(csv.as_bytes(), CsvLimits::unlimited()).unwrap();
    let b = parse_csv_bytes(csv.as_bytes(), CsvLimits::unlimited()).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    // And via from_csv_str: the two entry points share one grammar.
    let c = DataFrame::from_csv_str(csv).unwrap();
    assert_eq!(a.fingerprint(), c.fingerprint());
}
