//! Fingerprint-keyed, budgeted dataset registry.

use atena_dataframe::{CsvLimits, CsvStreamError, CsvStreamParser, DataFrame};
use atena_telemetry::{Counter, Gauge, MetricsRegistry};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};

/// Sizing and quota knobs for a [`DatasetRegistry`].
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Total resident-byte budget for *unpinned* datasets. Pinned entries
    /// (the checkpoint's baked-in dataset) are reported in `registry.bytes`
    /// but exempt from eviction and budget math, so a small budget can
    /// never brick the default serving path.
    pub budget_bytes: usize,
    /// Maximum number of unpinned datasets resident at once.
    pub max_datasets: usize,
    /// Per-tenant cap on resident bytes attributed to that tenant.
    pub tenant_quota_bytes: usize,
    /// Caps applied to each individual upload during parsing.
    pub limits: CsvLimits,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            budget_bytes: 256 << 20,
            max_datasets: 1024,
            tenant_quota_bytes: 64 << 20,
            limits: CsvLimits {
                max_bytes: 8 << 20,
                max_rows: 200_000,
                max_cols: 256,
            },
        }
    }
}

/// Public metadata for a registered dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Content-derived id (`ds-<16 hex digits>` of the fingerprint).
    pub dataset_id: String,
    /// Human-readable name supplied at upload (or the bundle dataset id).
    pub name: String,
    /// Number of data rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Approximate resident bytes charged against the budget.
    pub bytes: usize,
    /// The stable content fingerprint.
    pub fingerprint: u64,
    /// Pinned entries are never evicted or deleted.
    pub pinned: bool,
    /// Tenants that have uploaded this dataset.
    pub tenants: Vec<String>,
}

/// Result of an ingest call: the dataset metadata plus whether the upload
/// deduplicated onto an already-resident entry.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// Metadata of the (possibly pre-existing) entry.
    pub info: DatasetInfo,
    /// True when an identical dataset was already resident.
    pub deduplicated: bool,
}

/// Errors from registry operations; the server maps these onto HTTP codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The CSV payload was malformed (→ 400).
    Malformed(CsvStreamError),
    /// The payload exceeded a per-upload cap (→ 413).
    UploadTooLarge(CsvStreamError),
    /// The parsed dataset alone exceeds the whole registry budget (→ 413).
    ExceedsBudget {
        /// Bytes the dataset would occupy.
        bytes: usize,
        /// The configured budget.
        budget: usize,
    },
    /// Admitting the dataset would push the tenant over its byte quota
    /// (→ 429, retryable after the tenant deletes something).
    TenantQuotaExceeded {
        /// The offending tenant.
        tenant: String,
        /// Bytes currently attributed to the tenant.
        used: usize,
        /// The configured per-tenant quota.
        quota: usize,
    },
    /// No dataset with this id is resident (→ 404).
    NotFound {
        /// The id that failed to resolve.
        dataset_id: String,
    },
    /// The entry is pinned and cannot be deleted (→ 409).
    Pinned {
        /// The pinned dataset's id.
        dataset_id: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Malformed(e) => write!(f, "malformed csv: {e}"),
            RegistryError::UploadTooLarge(e) => write!(f, "upload too large: {e}"),
            RegistryError::ExceedsBudget { bytes, budget } => {
                write!(
                    f,
                    "dataset of {bytes} bytes exceeds registry budget of {budget}"
                )
            }
            RegistryError::TenantQuotaExceeded {
                tenant,
                used,
                quota,
            } => write!(
                f,
                "tenant {tenant} over byte quota ({used} used of {quota})"
            ),
            RegistryError::NotFound { dataset_id } => {
                write!(f, "dataset {dataset_id} not found")
            }
            RegistryError::Pinned { dataset_id } => {
                write!(f, "dataset {dataset_id} is pinned and cannot be deleted")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// `ds-<16 lowercase hex digits>` of the content fingerprint.
pub fn dataset_id_for_fingerprint(fingerprint: u64) -> String {
    format!("ds-{fingerprint:016x}")
}

/// Inverse of [`dataset_id_for_fingerprint`]; `None` for malformed ids.
pub fn parse_dataset_id(id: &str) -> Option<u64> {
    let hex = id.strip_prefix("ds-")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Parse CSV bytes into a typed frame under the given caps, classifying
/// failures into "malformed" vs "too large" for HTTP mapping.
pub fn ingest_csv(bytes: &[u8], limits: CsvLimits) -> Result<DataFrame, RegistryError> {
    let mut parser = CsvStreamParser::new(limits);
    parser.push(bytes).map_err(classify_csv_error)?;
    parser.finish().map_err(classify_csv_error)
}

fn classify_csv_error(e: CsvStreamError) -> RegistryError {
    match e {
        CsvStreamError::Csv { .. } => RegistryError::Malformed(e),
        CsvStreamError::TooManyBytes { .. }
        | CsvStreamError::TooManyRows { .. }
        | CsvStreamError::TooManyColumns { .. } => RegistryError::UploadTooLarge(e),
    }
}

/// Cached metric handles so registry operations never take the metrics
/// mutex on the hot path (same idiom as the env display cache).
struct RegistryTelemetry {
    bytes: Gauge,
    entries: Gauge,
    inflight: Gauge,
    uploads: Counter,
    dedup_hits: Counter,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    deletes: Counter,
    rejected: Counter,
}

impl RegistryTelemetry {
    fn from_registry(reg: &MetricsRegistry) -> Self {
        Self {
            bytes: reg.gauge("registry.bytes"),
            entries: reg.gauge("registry.entries"),
            inflight: reg.gauge("registry.ingest.inflight"),
            uploads: reg.counter("registry.uploads"),
            dedup_hits: reg.counter("registry.dedup_hits"),
            hits: reg.counter("registry.hits"),
            misses: reg.counter("registry.misses"),
            evictions: reg.counter("registry.evictions"),
            deletes: reg.counter("registry.deletes"),
            rejected: reg.counter("registry.ingest.rejected"),
        }
    }
}

enum PinAction {
    Inserted,
    Promoted,
    AlreadyPinned,
}

struct Entry {
    frame: Arc<DataFrame>,
    name: String,
    bytes: usize,
    pinned: bool,
    /// Monotone logical timestamp of the last touch (upload, hit).
    last_used: u64,
    /// Tenants charged for this entry; credited back on evict/delete.
    owners: BTreeSet<String>,
}

#[derive(Default)]
struct Inner {
    /// Keyed by fingerprint; `BTreeMap` keeps iteration deterministic.
    entries: BTreeMap<u64, Entry>,
    /// Resident bytes of unpinned entries (budget domain).
    unpinned_bytes: usize,
    /// Resident bytes including pinned entries (reporting domain).
    total_bytes: usize,
    /// Bytes attributed per tenant.
    tenant_bytes: BTreeMap<String, usize>,
    /// Logical clock driving LRU order.
    clock: u64,
}

/// Point-in-time registry totals, for tests and the `/v1/datasets` listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Resident bytes including pinned entries.
    pub total_bytes: usize,
    /// Resident bytes of unpinned (evictable) entries.
    pub unpinned_bytes: usize,
    /// Number of resident datasets (pinned included).
    pub entries: usize,
    /// The configured unpinned-byte budget.
    pub budget_bytes: usize,
}

/// Content-addressed dataset store with budgeted, deterministic LRU
/// eviction and per-tenant byte accounting. Thread-safe behind one mutex —
/// operations are metadata-sized (parsing happens outside the lock).
pub struct DatasetRegistry {
    config: RegistryConfig,
    inner: Mutex<Inner>,
    telemetry: RwLock<RegistryTelemetry>,
}

impl fmt::Debug for DatasetRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("DatasetRegistry")
            .field("entries", &snap.entries)
            .field("total_bytes", &snap.total_bytes)
            .field("budget_bytes", &snap.budget_bytes)
            .finish()
    }
}

impl DatasetRegistry {
    /// Create an empty registry reporting `registry.*` metrics to the
    /// global telemetry registry.
    pub fn new(config: RegistryConfig) -> Self {
        DatasetRegistry {
            config,
            inner: Mutex::new(Inner::default()),
            telemetry: RwLock::new(RegistryTelemetry::from_registry(atena_telemetry::global())),
        }
    }

    /// Re-point telemetry at a private registry (tests, embedded servers).
    pub fn reroute_telemetry(&self, reg: &MetricsRegistry) {
        let mut t = self.telemetry.write().expect("telemetry lock poisoned");
        *t = RegistryTelemetry::from_registry(reg);
    }

    /// The configured limits (the server consults `limits.max_bytes` to
    /// refuse oversized Content-Length before buffering).
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    fn with_telemetry<R>(&self, f: impl FnOnce(&RegistryTelemetry) -> R) -> R {
        f(&self.telemetry.read().expect("telemetry lock poisoned"))
    }

    /// Register the checkpoint's baked-in dataset. Pinned entries are never
    /// evicted, never deletable, exempt from budget and tenant quotas.
    pub fn insert_pinned(&self, name: &str, frame: Arc<DataFrame>) -> DatasetInfo {
        let fingerprint = frame.fingerprint();
        let bytes = frame.approx_bytes();
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        let action = match inner.entries.get_mut(&fingerprint) {
            None => {
                inner.entries.insert(
                    fingerprint,
                    Entry {
                        frame,
                        name: name.to_string(),
                        bytes,
                        pinned: true,
                        last_used: clock,
                        owners: BTreeSet::new(),
                    },
                );
                PinAction::Inserted
            }
            Some(entry) if !entry.pinned => {
                // An identical dataset was uploaded earlier: promote it and
                // release its budget charge.
                entry.pinned = true;
                entry.last_used = clock;
                PinAction::Promoted
            }
            Some(_) => PinAction::AlreadyPinned,
        };
        match action {
            PinAction::Inserted => inner.total_bytes += bytes,
            PinAction::Promoted => inner.unpinned_bytes -= bytes,
            PinAction::AlreadyPinned => {}
        }
        let info = info_of(fingerprint, &inner.entries[&fingerprint]);
        self.publish_gauges(&inner);
        info
    }

    /// Ingest an upload for `tenant`: parse under the per-upload caps,
    /// dedupe by fingerprint, charge quotas, and evict LRU unpinned entries
    /// until the budget holds.
    pub fn ingest(
        &self,
        tenant: &str,
        name: &str,
        body: &[u8],
    ) -> Result<IngestOutcome, RegistryError> {
        self.with_telemetry(|t| t.inflight.set(t.inflight.get() + 1.0));
        let result = self.ingest_inner(tenant, name, body);
        self.with_telemetry(|t| {
            t.inflight.set((t.inflight.get() - 1.0).max(0.0));
            match &result {
                Ok(o) => {
                    t.uploads.inc();
                    if o.deduplicated {
                        t.dedup_hits.inc();
                    }
                }
                Err(_) => t.rejected.inc(),
            }
        });
        result
    }

    fn ingest_inner(
        &self,
        tenant: &str,
        name: &str,
        body: &[u8],
    ) -> Result<IngestOutcome, RegistryError> {
        let frame = ingest_csv(body, self.config.limits)?;
        self.insert(tenant, name, Arc::new(frame))
    }

    /// Insert an already-parsed frame (used by ingest and by offline CLI
    /// inspection paths that parse elsewhere).
    pub fn insert(
        &self,
        tenant: &str,
        name: &str,
        frame: Arc<DataFrame>,
    ) -> Result<IngestOutcome, RegistryError> {
        let fingerprint = frame.fingerprint();
        let bytes = frame.approx_bytes();
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.clock += 1;
        let clock = inner.clock;

        if inner.entries.contains_key(&fingerprint) {
            let (newly_owned, entry_bytes) = {
                let entry = inner.entries.get_mut(&fingerprint).expect("entry present");
                entry.last_used = clock;
                let newly_owned = !entry.pinned && entry.owners.insert(tenant.to_string());
                (newly_owned, entry.bytes)
            };
            if newly_owned {
                let used = inner.tenant_bytes.get(tenant).copied().unwrap_or(0);
                if used + entry_bytes > self.config.tenant_quota_bytes {
                    // Roll the ownership back; the dataset stays resident
                    // for its existing owners.
                    inner
                        .entries
                        .get_mut(&fingerprint)
                        .expect("entry present")
                        .owners
                        .remove(tenant);
                    return Err(RegistryError::TenantQuotaExceeded {
                        tenant: tenant.to_string(),
                        used,
                        quota: self.config.tenant_quota_bytes,
                    });
                }
                *inner.tenant_bytes.entry(tenant.to_string()).or_insert(0) += entry_bytes;
            }
            let info = info_of(fingerprint, &inner.entries[&fingerprint]);
            self.publish_gauges(&inner);
            return Ok(IngestOutcome {
                info,
                deduplicated: true,
            });
        }

        if bytes > self.config.budget_bytes {
            return Err(RegistryError::ExceedsBudget {
                bytes,
                budget: self.config.budget_bytes,
            });
        }

        // Plan deterministic LRU evictions first (least-recent unpinned
        // entry, fingerprint as tie-break), then check the tenant quota
        // against the *post-eviction* attribution so a tenant whose own
        // stale datasets are about to be evicted is not double-charged.
        // Nothing is removed until the insert is known to succeed.
        let mut candidates: Vec<(u64, u64)> = inner
            .entries
            .iter()
            .filter(|(_, e)| !e.pinned)
            .map(|(fp, e)| (e.last_used, *fp))
            .collect();
        candidates.sort_unstable();
        let unpinned_count = candidates.len();
        let mut victims: Vec<u64> = Vec::new();
        let mut freed = 0usize;
        for &(_, fp) in &candidates {
            let fits_bytes = inner.unpinned_bytes - freed + bytes <= self.config.budget_bytes;
            let fits_count = unpinned_count - victims.len() + 1 <= self.config.max_datasets;
            if fits_bytes && fits_count {
                break;
            }
            freed += inner.entries[&fp].bytes;
            victims.push(fp);
        }
        if inner.unpinned_bytes - freed + bytes > self.config.budget_bytes
            || unpinned_count - victims.len() + 1 > self.config.max_datasets
        {
            // Nothing evictable left; with bytes <= budget this is only
            // reachable via max_datasets == 0.
            return Err(RegistryError::ExceedsBudget {
                bytes,
                budget: self.config.budget_bytes,
            });
        }
        let credit: usize = victims
            .iter()
            .filter(|fp| inner.entries[fp].owners.contains(tenant))
            .map(|fp| inner.entries[fp].bytes)
            .sum();
        let used = inner.tenant_bytes.get(tenant).copied().unwrap_or(0);
        if used.saturating_sub(credit) + bytes > self.config.tenant_quota_bytes {
            return Err(RegistryError::TenantQuotaExceeded {
                tenant: tenant.to_string(),
                used,
                quota: self.config.tenant_quota_bytes,
            });
        }
        let evicted = victims.len() as u64;
        for fp in victims {
            Self::remove_entry(&mut inner, fp);
        }

        let mut owners = BTreeSet::new();
        owners.insert(tenant.to_string());
        inner.entries.insert(
            fingerprint,
            Entry {
                frame,
                name: name.to_string(),
                bytes,
                pinned: false,
                last_used: clock,
                owners,
            },
        );
        inner.unpinned_bytes += bytes;
        inner.total_bytes += bytes;
        *inner.tenant_bytes.entry(tenant.to_string()).or_insert(0) += bytes;

        let info = info_of(fingerprint, &inner.entries[&fingerprint]);
        self.publish_gauges(&inner);
        if evicted > 0 {
            self.with_telemetry(|t| t.evictions.add(evicted));
        }
        Ok(IngestOutcome {
            info,
            deduplicated: false,
        })
    }

    /// Remove `fp` from the maps, crediting owners. Caller updates gauges.
    fn remove_entry(inner: &mut Inner, fp: u64) -> Option<Entry> {
        let entry = inner.entries.remove(&fp)?;
        if !entry.pinned {
            inner.unpinned_bytes -= entry.bytes;
        }
        inner.total_bytes -= entry.bytes;
        for owner in &entry.owners {
            if let Some(used) = inner.tenant_bytes.get_mut(owner) {
                *used = used.saturating_sub(entry.bytes);
            }
        }
        Some(entry)
    }

    /// Resolve a dataset id to its frame, bumping LRU recency.
    pub fn get(&self, dataset_id: &str) -> Option<(Arc<DataFrame>, DatasetInfo)> {
        let fp = match parse_dataset_id(dataset_id) {
            Some(fp) => fp,
            None => {
                self.with_telemetry(|t| t.misses.inc());
                return None;
            }
        };
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(&fp) {
            Some(entry) => {
                entry.last_used = clock;
                let out = (entry.frame.clone(), info_of(fp, entry));
                drop(inner);
                self.with_telemetry(|t| t.hits.inc());
                Some(out)
            }
            None => {
                drop(inner);
                self.with_telemetry(|t| t.misses.inc());
                None
            }
        }
    }

    /// Delete an unpinned dataset by id.
    pub fn delete(&self, dataset_id: &str) -> Result<DatasetInfo, RegistryError> {
        let fp = parse_dataset_id(dataset_id).ok_or_else(|| RegistryError::NotFound {
            dataset_id: dataset_id.to_string(),
        })?;
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        match inner.entries.get(&fp) {
            None => Err(RegistryError::NotFound {
                dataset_id: dataset_id.to_string(),
            }),
            Some(entry) if entry.pinned => Err(RegistryError::Pinned {
                dataset_id: dataset_id.to_string(),
            }),
            Some(_) => {
                let entry = Self::remove_entry(&mut inner, fp).expect("entry present");
                let info = info_of(fp, &entry);
                self.publish_gauges(&inner);
                self.with_telemetry(|t| t.deletes.inc());
                Ok(info)
            }
        }
    }

    /// All resident datasets, ordered by id (deterministic).
    pub fn list(&self) -> Vec<DatasetInfo> {
        let inner = self.inner.lock().expect("registry lock poisoned");
        inner
            .entries
            .iter()
            .map(|(fp, e)| info_of(*fp, e))
            .collect()
    }

    /// Current totals.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("registry lock poisoned");
        RegistrySnapshot {
            total_bytes: inner.total_bytes,
            unpinned_bytes: inner.unpinned_bytes,
            entries: inner.entries.len(),
            budget_bytes: self.config.budget_bytes,
        }
    }

    /// Bytes currently attributed to `tenant`.
    pub fn tenant_bytes(&self, tenant: &str) -> usize {
        let inner = self.inner.lock().expect("registry lock poisoned");
        inner.tenant_bytes.get(tenant).copied().unwrap_or(0)
    }

    fn publish_gauges(&self, inner: &Inner) {
        self.with_telemetry(|t| {
            t.bytes.set(inner.total_bytes as f64);
            t.entries.set(inner.entries.len() as f64);
        });
    }
}

fn info_of(fp: u64, entry: &Entry) -> DatasetInfo {
    DatasetInfo {
        dataset_id: dataset_id_for_fingerprint(fp),
        name: entry.name.clone(),
        rows: entry.frame.n_rows(),
        cols: entry.frame.n_cols(),
        bytes: entry.bytes,
        fingerprint: fp,
        pinned: entry.pinned,
        tenants: entry.owners.iter().cloned().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csv(rows: usize, tag: &str) -> String {
        let mut s = String::from("k,v\n");
        for i in 0..rows {
            s.push_str(&format!("{tag}{i},{i}\n"));
        }
        s
    }

    fn small_registry(budget: usize) -> DatasetRegistry {
        DatasetRegistry::new(RegistryConfig {
            budget_bytes: budget,
            max_datasets: 64,
            tenant_quota_bytes: budget,
            limits: CsvLimits::unlimited(),
        })
    }

    #[test]
    fn upload_then_get_round_trips() {
        let reg = small_registry(1 << 20);
        let out = reg.ingest("t1", "demo", csv(10, "a").as_bytes()).unwrap();
        assert!(!out.deduplicated);
        let (frame, info) = reg.get(&out.info.dataset_id).unwrap();
        assert_eq!(frame.n_rows(), 10);
        assert_eq!(info.fingerprint, frame.fingerprint());
        assert_eq!(
            info.dataset_id,
            dataset_id_for_fingerprint(info.fingerprint)
        );
    }

    #[test]
    fn duplicate_upload_dedupes_to_one_entry() {
        let reg = small_registry(1 << 20);
        let a = reg.ingest("t1", "demo", csv(10, "a").as_bytes()).unwrap();
        let b = reg
            .ingest("t2", "other-name", csv(10, "a").as_bytes())
            .unwrap();
        assert!(b.deduplicated);
        assert_eq!(a.info.dataset_id, b.info.dataset_id);
        assert_eq!(reg.snapshot().entries, 1);
        // Both tenants are charged for their reference.
        assert_eq!(reg.tenant_bytes("t1"), a.info.bytes);
        assert_eq!(reg.tenant_bytes("t2"), a.info.bytes);
    }

    #[test]
    fn lru_eviction_is_deterministic_and_budget_holds() {
        let one = csv(50, "a");
        let size = ingest_csv(one.as_bytes(), CsvLimits::unlimited())
            .unwrap()
            .approx_bytes();
        // Budget fits two datasets of this shape but not three.
        let reg = small_registry(size * 2 + size / 2);
        let a = reg.ingest("t", "a", csv(50, "a").as_bytes()).unwrap();
        let b = reg.ingest("t", "b", csv(50, "b").as_bytes()).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        assert!(reg.get(&a.info.dataset_id).is_some());
        let c = reg.ingest("t", "c", csv(50, "c").as_bytes()).unwrap();
        assert!(reg.get(&b.info.dataset_id).is_none(), "b was LRU, evicted");
        assert!(reg.get(&a.info.dataset_id).is_some());
        assert!(reg.get(&c.info.dataset_id).is_some());
        let snap = reg.snapshot();
        assert!(snap.unpinned_bytes <= snap.budget_bytes);
        // The evicted dataset's bytes were credited back to the tenant.
        assert_eq!(reg.tenant_bytes("t"), a.info.bytes + c.info.bytes);
    }

    #[test]
    fn pinned_entries_survive_pressure_and_refuse_delete() {
        let frame = Arc::new(DataFrame::from_csv_str(&csv(50, "pin")).unwrap());
        let size = frame.approx_bytes();
        let reg = small_registry(size);
        let pinned = reg.insert_pinned("baked", frame);
        // Fill the budget with uploads; the pinned entry must survive.
        for tag in ["x", "y", "z"] {
            reg.ingest("t", tag, csv(50, tag).as_bytes()).unwrap();
        }
        assert!(reg.get(&pinned.dataset_id).is_some());
        assert!(matches!(
            reg.delete(&pinned.dataset_id),
            Err(RegistryError::Pinned { .. })
        ));
        let snap = reg.snapshot();
        assert!(snap.unpinned_bytes <= snap.budget_bytes);
    }

    #[test]
    fn tenant_quota_rejects_without_evicting() {
        let one = csv(50, "a");
        let size = ingest_csv(one.as_bytes(), CsvLimits::unlimited())
            .unwrap()
            .approx_bytes();
        let reg = DatasetRegistry::new(RegistryConfig {
            budget_bytes: size * 10,
            max_datasets: 64,
            tenant_quota_bytes: size + size / 2,
            limits: CsvLimits::unlimited(),
        });
        reg.ingest("t", "a", csv(50, "a").as_bytes()).unwrap();
        let err = reg.ingest("t", "b", csv(50, "b").as_bytes()).unwrap_err();
        assert!(matches!(err, RegistryError::TenantQuotaExceeded { .. }));
        // Another tenant is unaffected.
        reg.ingest("u", "b", csv(50, "b").as_bytes()).unwrap();
        assert_eq!(reg.snapshot().entries, 2);
    }

    #[test]
    fn quota_applies_to_dedup_references_too() {
        let one = csv(50, "a");
        let size = ingest_csv(one.as_bytes(), CsvLimits::unlimited())
            .unwrap()
            .approx_bytes();
        let reg = DatasetRegistry::new(RegistryConfig {
            budget_bytes: size * 10,
            max_datasets: 64,
            tenant_quota_bytes: size + size / 2,
            limits: CsvLimits::unlimited(),
        });
        reg.ingest("t", "a", csv(50, "a").as_bytes()).unwrap();
        reg.ingest("u", "b", csv(50, "b").as_bytes()).unwrap();
        // `t` referencing `b`'s dataset would exceed `t`'s quota.
        let err = reg.ingest("t", "b", csv(50, "b").as_bytes()).unwrap_err();
        assert!(matches!(err, RegistryError::TenantQuotaExceeded { .. }));
        // The rollback left `u`'s ownership intact.
        assert_eq!(reg.tenant_bytes("u"), size);
    }

    #[test]
    fn delete_then_get_is_miss() {
        let reg = small_registry(1 << 20);
        let out = reg.ingest("t", "a", csv(5, "a").as_bytes()).unwrap();
        reg.delete(&out.info.dataset_id).unwrap();
        assert!(reg.get(&out.info.dataset_id).is_none());
        assert!(matches!(
            reg.delete(&out.info.dataset_id),
            Err(RegistryError::NotFound { .. })
        ));
        assert_eq!(reg.tenant_bytes("t"), 0);
    }

    #[test]
    fn upload_caps_classify_as_too_large() {
        let reg = DatasetRegistry::new(RegistryConfig {
            budget_bytes: 1 << 20,
            max_datasets: 64,
            tenant_quota_bytes: 1 << 20,
            limits: CsvLimits {
                max_bytes: 64,
                max_rows: 1000,
                max_cols: 16,
            },
        });
        let err = reg
            .ingest("t", "big", csv(100, "a").as_bytes())
            .unwrap_err();
        assert!(matches!(err, RegistryError::UploadTooLarge(_)));
        let err = reg.ingest("t", "bad", b"a,b\n\"oops\n").unwrap_err();
        assert!(matches!(err, RegistryError::Malformed(_)));
    }

    #[test]
    fn telemetry_counters_are_monotone() {
        let metrics = MetricsRegistry::new();
        let reg = small_registry(1 << 20);
        reg.reroute_telemetry(&metrics);
        reg.ingest("t", "a", csv(5, "a").as_bytes()).unwrap();
        reg.ingest("t", "a2", csv(5, "a").as_bytes()).unwrap();
        reg.ingest("t", "bad", b"\"oops\n").unwrap_err();
        let id = dataset_id_for_fingerprint(
            ingest_csv(csv(5, "a").as_bytes(), CsvLimits::unlimited())
                .unwrap()
                .fingerprint(),
        );
        reg.get(&id);
        reg.get("ds-0000000000000000");
        reg.delete(&id).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("registry.uploads"), Some(2));
        assert_eq!(snap.counter("registry.dedup_hits"), Some(1));
        assert_eq!(snap.counter("registry.ingest.rejected"), Some(1));
        assert_eq!(snap.counter("registry.hits"), Some(1));
        assert_eq!(snap.counter("registry.misses"), Some(1));
        assert_eq!(snap.counter("registry.deletes"), Some(1));
    }

    #[test]
    fn dataset_id_round_trip() {
        assert_eq!(parse_dataset_id(&dataset_id_for_fingerprint(0)), Some(0));
        assert_eq!(
            parse_dataset_id(&dataset_id_for_fingerprint(u64::MAX)),
            Some(u64::MAX)
        );
        assert_eq!(parse_dataset_id("ds-zz"), None);
        assert_eq!(parse_dataset_id("nope"), None);
        assert_eq!(parse_dataset_id("ds-00000000000000001"), None);
    }
}
