//! Per-tenant admission control with backpressure instead of queuing.

use atena_telemetry::{Counter, Gauge, MetricsRegistry};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};

/// Per-tenant concurrency knobs.
#[derive(Debug, Clone, Copy)]
pub struct TenantLimits {
    /// Maximum requests a single tenant may have in flight at once.
    pub max_inflight: usize,
    /// Seconds advertised in `Retry-After` on rejection.
    pub retry_after_secs: u64,
}

impl Default for TenantLimits {
    fn default() -> Self {
        TenantLimits {
            max_inflight: 8,
            retry_after_secs: 1,
        }
    }
}

/// Why a request was turned away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionRejection {
    /// The tenant that hit its limit.
    pub tenant: String,
    /// The configured per-tenant inflight cap.
    pub limit: usize,
    /// Suggested `Retry-After` seconds.
    pub retry_after_secs: u64,
}

impl fmt::Display for AdmissionRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant {} at inflight limit {}", self.tenant, self.limit)
    }
}

struct AdmissionTelemetry {
    accepted: Counter,
    rejected: Counter,
    inflight: Gauge,
}

impl AdmissionTelemetry {
    fn from_registry(reg: &MetricsRegistry) -> Self {
        Self {
            accepted: reg.counter("admission.accepted"),
            rejected: reg.counter("admission.rejected"),
            inflight: reg.gauge("admission.inflight"),
        }
    }
}

struct AdmissionInner {
    per_tenant: BTreeMap<String, usize>,
    total: usize,
}

/// Grants bounded per-tenant concurrency: a request either gets a
/// [`Permit`] immediately or is rejected — nothing ever queues, so one
/// hot tenant cannot build an unbounded backlog that starves the rest.
pub struct AdmissionController {
    limits: TenantLimits,
    inner: Mutex<AdmissionInner>,
    telemetry: RwLock<AdmissionTelemetry>,
}

impl fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmissionController")
            .field("max_inflight", &self.limits.max_inflight)
            .finish()
    }
}

impl AdmissionController {
    /// Create a controller reporting `admission.*` to the global registry.
    pub fn new(limits: TenantLimits) -> Self {
        AdmissionController {
            limits,
            inner: Mutex::new(AdmissionInner {
                per_tenant: BTreeMap::new(),
                total: 0,
            }),
            telemetry: RwLock::new(AdmissionTelemetry::from_registry(atena_telemetry::global())),
        }
    }

    /// Re-point telemetry at a private registry (tests, embedded servers).
    pub fn reroute_telemetry(&self, reg: &MetricsRegistry) {
        let mut t = self.telemetry.write().expect("telemetry lock poisoned");
        *t = AdmissionTelemetry::from_registry(reg);
    }

    /// The configured limits.
    pub fn limits(&self) -> TenantLimits {
        self.limits
    }

    /// Try to admit one request for `tenant`. The returned [`Permit`]
    /// releases the slot on drop (success and error paths alike).
    pub fn try_acquire(self: &Arc<Self>, tenant: &str) -> Result<Permit, AdmissionRejection> {
        let admitted = {
            let mut inner = self.inner.lock().expect("admission lock poisoned");
            let count = inner.per_tenant.entry(tenant.to_string()).or_insert(0);
            if *count >= self.limits.max_inflight {
                false
            } else {
                *count += 1;
                inner.total += 1;
                true
            }
        };
        let t = self.telemetry.read().expect("telemetry lock poisoned");
        if admitted {
            t.accepted.inc();
            t.inflight
                .set(self.inner.lock().expect("admission lock poisoned").total as f64);
            drop(t);
            Ok(Permit {
                controller: Arc::clone(self),
                tenant: tenant.to_string(),
            })
        } else {
            t.rejected.inc();
            Err(AdmissionRejection {
                tenant: tenant.to_string(),
                limit: self.limits.max_inflight,
                retry_after_secs: self.limits.retry_after_secs,
            })
        }
    }

    /// Requests currently in flight for `tenant`.
    pub fn inflight(&self, tenant: &str) -> usize {
        let inner = self.inner.lock().expect("admission lock poisoned");
        inner.per_tenant.get(tenant).copied().unwrap_or(0)
    }

    /// Requests currently in flight across all tenants.
    pub fn total_inflight(&self) -> usize {
        self.inner.lock().expect("admission lock poisoned").total
    }

    fn release(&self, tenant: &str) {
        let total = {
            let mut inner = self.inner.lock().expect("admission lock poisoned");
            if let Some(count) = inner.per_tenant.get_mut(tenant) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    inner.per_tenant.remove(tenant);
                }
            }
            inner.total = inner.total.saturating_sub(1);
            inner.total
        };
        let t = self.telemetry.read().expect("telemetry lock poisoned");
        t.inflight.set(total as f64);
    }
}

/// RAII admission slot; dropping it frees the tenant's inflight slot.
pub struct Permit {
    controller: Arc<AdmissionController>,
    tenant: String,
}

impl fmt::Debug for Permit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Permit")
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.controller.release(&self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(max_inflight: usize) -> Arc<AdmissionController> {
        Arc::new(AdmissionController::new(TenantLimits {
            max_inflight,
            retry_after_secs: 2,
        }))
    }

    #[test]
    fn permits_bound_per_tenant_concurrency() {
        let c = controller(2);
        let p1 = c.try_acquire("t").unwrap();
        let _p2 = c.try_acquire("t").unwrap();
        let err = c.try_acquire("t").unwrap_err();
        assert_eq!(err.limit, 2);
        assert_eq!(err.retry_after_secs, 2);
        // Other tenants are isolated.
        let _other = c.try_acquire("u").unwrap();
        assert_eq!(c.inflight("t"), 2);
        assert_eq!(c.total_inflight(), 3);
        drop(p1);
        assert_eq!(c.inflight("t"), 1);
        c.try_acquire("t").unwrap();
        assert_eq!(c.inflight("t"), 1, "permit dropped immediately");
    }

    #[test]
    fn rejection_then_release_then_accept() {
        let c = controller(1);
        let p = c.try_acquire("t").unwrap();
        assert!(c.try_acquire("t").is_err());
        drop(p);
        assert!(c.try_acquire("t").is_ok());
    }

    #[test]
    fn telemetry_counts_accepts_and_rejects() {
        let metrics = MetricsRegistry::new();
        let c = controller(1);
        c.reroute_telemetry(&metrics);
        let p = c.try_acquire("t").unwrap();
        let _ = c.try_acquire("t");
        let _ = c.try_acquire("t");
        drop(p);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("admission.accepted"), Some(1));
        assert_eq!(snap.counter("admission.rejected"), Some(2));
    }
}
