//! Multi-tenant dataset registry for the ATENA serving stack.
//!
//! The serving story of the paper — auto-generated EDA notebooks over *a
//! user's own dataset* — needs an ingest-and-retain layer between the HTTP
//! surface and the policy engine. This crate provides it as three pieces:
//!
//! * **Streaming ingest** ([`ingest_csv`]): CSV bytes go through
//!   [`atena_dataframe::CsvStreamParser`] under hard row/column/byte caps,
//!   yielding a typed [`DataFrame`](atena_dataframe::DataFrame) with
//!   inferred per-column schema in one pass.
//! * **Fingerprint-keyed registry** ([`DatasetRegistry`]): datasets are
//!   content-addressed by their platform-stable
//!   [`fingerprint`](atena_dataframe::DataFrame::fingerprint), so duplicate
//!   uploads dedupe to a single resident copy. Resident bytes are accounted
//!   against a budget with deterministic LRU eviction of unpinned entries,
//!   and per-tenant byte quotas bound what any one tenant can keep resident.
//! * **Admission control** ([`AdmissionController`]): per-tenant concurrent
//!   request limits enforced with backpressure (the caller maps rejections
//!   to `429` + `Retry-After`) instead of unbounded queuing.
//!
//! Everything is deterministic given the same sequence of calls: eviction
//! order follows a monotone logical clock, ids are pure functions of
//! content, and telemetry (`registry.*`, `admission.*`) uses cached handles
//! so hot paths never touch the metrics-registry mutex.

#![forbid(unsafe_code)]

mod admission;
mod registry;

pub use admission::{AdmissionController, AdmissionRejection, Permit, TenantLimits};
pub use registry::{
    dataset_id_for_fingerprint, ingest_csv, parse_dataset_id, DatasetInfo, DatasetRegistry,
    IngestOutcome, RegistryConfig, RegistryError, RegistrySnapshot,
};
