//! End-to-end serving test over real sockets: train a tiny policy, bundle
//! it through a file (the checkpoint the CLI would produce), start the
//! server on an ephemeral port, hammer it with concurrent clients, and
//! check response identity, cache behaviour, metrics, and graceful
//! shutdown.

use atena_core::{train_policy_bundle, AtenaConfig, PolicyBundle, Strategy};
use atena_dataframe::{AttrRole, DataFrame};
use atena_server::{Engine, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn base() -> DataFrame {
    DataFrame::builder()
        .str(
            "proto",
            AttrRole::Categorical,
            (0..60).map(|i| Some(if i % 5 == 0 { "udp" } else { "tcp" })),
        )
        .int(
            "len",
            AttrRole::Numeric,
            (0..60).map(|i| Some((i * 13 % 31) as i64)),
        )
        .build()
        .unwrap()
}

fn tiny_bundle() -> PolicyBundle {
    let mut config = AtenaConfig::quick();
    config.train_steps = 300;
    config.probe_steps = 60;
    config.env.episode_len = 4;
    train_policy_bundle("tiny", base(), vec![], config, Strategy::Atena).unwrap()
}

/// One blocking HTTP exchange on a fresh connection.
fn http_request(addr: SocketAddr, raw: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    // The server may respond-and-reset before consuming the whole request
    // (oversized bodies), so a failed tail write is acceptable.
    let _ = stream.write_all(raw.as_bytes());
    read_one_response(&mut stream)
}

/// Read exactly one response: head, then Content-Length body bytes. A reset
/// after a complete response has arrived (server rejecting an undrained
/// body) is tolerated.
fn read_one_response(stream: &mut TcpStream) -> (u16, Vec<(String, String)>, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(parsed) = try_parse_response(&buf) {
            return parsed;
        }
        match stream.read(&mut chunk) {
            Ok(0) => panic!(
                "connection closed before a full response; got {:?}",
                String::from_utf8_lossy(&buf)
            ),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!(
                "read error {e} before a full response; got {:?}",
                String::from_utf8_lossy(&buf)
            ),
        }
    }
}

fn try_parse_response(bytes: &[u8]) -> Option<(u16, Vec<(String, String)>, String)> {
    let text = String::from_utf8_lossy(bytes).into_owned();
    let (head, rest) = text.split_once("\r\n\r\n")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    if rest.len() < len {
        return None;
    }
    Some((status, headers, rest[..len].to_string()))
}

fn post_notebook(addr: SocketAddr, body: &str) -> (u16, Vec<(String, String)>, String) {
    http_request(
        addr,
        &format!(
            "POST /v1/notebook HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn checkpoint_serve_concurrent_cache_metrics_shutdown() {
    // 1. Produce a server-loadable checkpoint through the filesystem, as
    //    `atena checkpoint save` would.
    let dir = std::env::temp_dir().join("atena-server-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("tiny.ckpt.json");
    tiny_bundle().save(&ckpt).unwrap();

    // 2. Load it back and serve on an ephemeral port with an isolated
    //    metrics registry.
    let bundle = PolicyBundle::load(&ckpt).unwrap();
    let engine = Engine::new(bundle, base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 3,
            cache_size: 16,
            ..Default::default()
        },
        engine,
        Arc::clone(&telemetry),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    // 3. Health check.
    let (status, _, body) = http_request(
        addr,
        "GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200, "{body}");
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert_eq!(health["dataset"].as_str(), Some("tiny"));

    // 4. Concurrent identical requests over real sockets: every client must
    //    get a 200 with the same notebook JSON.
    let request_body = r#"{"dataset":"tiny","episode_len":3,"seed":5}"#;
    let clients: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, headers, body) = post_notebook(addr, request_body);
                let cache = header(&headers, "x-atena-cache").unwrap_or("?").to_string();
                (status, cache, body)
            })
        })
        .collect();
    let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let reference = &results[0].2;
    let parsed: serde_json::Value = serde_json::from_str(reference).unwrap();
    assert_eq!(parsed["dataset"].as_str(), Some("tiny"));
    assert_eq!(parsed["notebook"]["cells"].as_array().unwrap().len(), 3);
    for (status, cache, body) in &results {
        assert_eq!(*status, 200);
        assert!(cache == "hit" || cache == "miss", "cache header: {cache}");
        assert_eq!(body, reference, "divergent notebook across clients");
    }

    // 5. A repeat request is served from the cache.
    let (status, headers, body) = post_notebook(addr, request_body);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-atena-cache"), Some("hit"));
    assert_eq!(&body, reference);

    // 6. /v1/metrics reports the cache hit and nonzero latency samples.
    let (status, _, body) = http_request(
        addr,
        "GET /v1/metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let metrics: serde_json::Value = serde_json::from_str(&body).unwrap();
    // 7 identical requests total (6 concurrent + 1 repeat). Concurrent
    // clients may race to a miss before the first insert lands, but the
    // sequential repeat is a guaranteed hit, every request is either a hit
    // or a miss, and only misses evaluate the policy.
    let hits = metrics["counters"]["server.cache.hits"].as_u64().unwrap();
    let misses = metrics["counters"]["server.cache.misses"].as_u64().unwrap();
    assert!(hits >= 1, "sequential repeat must hit the cache");
    assert!((1..=6).contains(&misses), "misses: {misses}");
    assert_eq!(hits + misses, 7);
    let latency = &metrics["histograms"]["server.http.latency_secs"];
    assert!(latency["count"].as_u64().unwrap() >= 8);
    assert!(latency["p95"].as_f64().unwrap() > 0.0);
    assert_eq!(
        metrics["histograms"]["server.notebook.decode_secs"]["count"].as_u64(),
        Some(misses),
        "only cache misses may evaluate the policy"
    );

    // 7. Error paths: wrong dataset → 404; bad JSON → 400; unknown route →
    //    404; wrong method → 405.
    let (status, _, body) = post_notebook(addr, r#"{"dataset":"flights1"}"#);
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("error"));
    let (status, _, _) = post_notebook(addr, "{nope");
    assert_eq!(status, 400);
    let (status, _, _) = post_notebook(addr, r#"{"episode_len":3}"#);
    assert_eq!(status, 400);
    let (status, _, _) = http_request(
        addr,
        "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 404);
    let (status, _, _) = http_request(
        addr,
        "GET /v1/notebook HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);

    // 8. Keep-alive: two requests on one connection.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, headers, _) = read_one_response(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "connection"), Some("keep-alive"));
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (status, headers, _) = read_one_response(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "connection"), Some("close"));
    }

    // 9. Graceful shutdown: the handle drains and joins; afterwards the
    //    port stops accepting.
    handle.shutdown();
    std::thread::sleep(Duration::from_millis(50));
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err();
    assert!(refused, "listener still accepting after shutdown");
}

/// LRU semantics of the response cache over real sockets: exact eviction
/// order at capacity 2, monotone hit/miss counters, and byte-identical
/// responses before and after eviction. Also asserts the engine's display
/// cache (shared across requests) accumulates hits as decodes replay
/// operation paths.
#[test]
fn response_cache_lru_semantics_over_http() {
    let engine = Engine::new(tiny_bundle(), base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    // Surface the display cache's env.cache.* counters on /v1/metrics.
    engine.display_cache().reroute_telemetry(&telemetry);
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_size: 2,
            ..Default::default()
        },
        engine,
        Arc::clone(&telemetry),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    let request = |seed: u64| -> (String, String) {
        let body = format!(r#"{{"dataset":"tiny","episode_len":3,"seed":{seed}}}"#);
        let (status, headers, body) = post_notebook(addr, &body);
        assert_eq!(status, 200, "{body}");
        (header(&headers, "x-atena-cache").unwrap().to_string(), body)
    };
    let counters = || -> (u64, u64, u64) {
        let (status, _, body) = http_request(
            addr,
            "GET /v1/metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        let m: serde_json::Value = serde_json::from_str(&body).unwrap();
        (
            m["counters"]["server.cache.hits"].as_u64().unwrap_or(0),
            m["counters"]["server.cache.misses"].as_u64().unwrap_or(0),
            m["counters"]["env.cache.hit"].as_u64().unwrap_or(0),
        )
    };

    // Scripted access pattern against a capacity-2 LRU. Each step encodes
    // the *exact* expected outcome, so any deviation from true
    // least-recently-used eviction (FIFO, random, MRU...) fails the test:
    //   seed 1 → miss             cache [1]
    //   seed 2 → miss             cache [2, 1]
    //   seed 1 → hit              cache [1, 2]   (1 refreshed to MRU)
    //   seed 3 → miss, evicts 2   cache [3, 1]   (2 was LRU, *not* 1)
    //   seed 2 → miss (evicted), evicts 1
    //   seed 1 → miss (evicted), evicts 3
    //   seed 1 → hit
    let script: &[(u64, &str)] = &[
        (1, "miss"),
        (2, "miss"),
        (1, "hit"),
        (3, "miss"),
        (2, "miss"),
        (1, "miss"),
        (1, "hit"),
    ];
    let mut first_response: std::collections::HashMap<u64, String> =
        std::collections::HashMap::new();
    let (mut prev_hits, mut prev_misses, mut prev_env_hits) = counters();
    assert_eq!((prev_hits, prev_misses), (0, 0));
    for (step, &(seed, expected)) in script.iter().enumerate() {
        let (cache, body) = request(seed);
        assert_eq!(
            cache, expected,
            "step {step}: seed {seed} expected {expected}"
        );
        // Responses are deterministic per seed: eviction and re-decode must
        // reproduce the evicted entry byte-for-byte.
        let reference = first_response.entry(seed).or_insert_with(|| body.clone());
        assert_eq!(
            &body, reference,
            "seed {seed} response changed at step {step}"
        );

        let (hits, misses, env_hits) = counters();
        assert!(
            hits >= prev_hits && misses >= prev_misses,
            "counters went backwards"
        );
        assert!(
            env_hits >= prev_env_hits,
            "display-cache hits went backwards"
        );
        assert_eq!(hits - prev_hits, u64::from(expected == "hit"));
        assert_eq!(misses - prev_misses, u64::from(expected == "miss"));
        (prev_hits, prev_misses, prev_env_hits) = (hits, misses, env_hits);
    }
    assert_eq!(prev_hits, 2);
    assert_eq!(prev_misses, 5);
    // Five decodes ran (one per response-cache miss); seeds 1 and 2 each
    // decoded more than once, replaying their operation paths out of the
    // shared display cache.
    assert!(
        prev_env_hits > 0,
        "repeated decodes produced no display-cache hits"
    );

    handle.shutdown();
}

/// The PR-6 observability surface over real sockets: per-request traces
/// (`X-Atena-Trace-Id`), the `/v1/debug/requests` ring with latency
/// breakdowns, Prometheus text exposition on `/v1/metrics`, and the
/// keep-alive-reuse / slow-request counters.
#[test]
fn tracing_debug_ring_and_prometheus_over_http() {
    let engine = Engine::new(tiny_bundle(), base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_size: 4,
            // Zero threshold: every request counts as slow, making the
            // counter (and its WARN path) deterministic to assert.
            slow_threshold: Duration::ZERO,
            ..Default::default()
        },
        engine,
        Arc::clone(&telemetry),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();
    // The tracer is process-global (the server stamps trace ids either
    // way); enabling it here turns span recording on for this test's
    // requests. Tracing is execution-only, so concurrent tests are
    // unaffected beyond extra spans in the shared ring.
    let tracer = atena_telemetry::tracer();
    tracer.set_enabled(true);

    // 1. Every response carries a fresh 16-hex-digit trace id.
    let body = r#"{"dataset":"tiny","episode_len":3,"seed":42}"#;
    let (status, headers, _) = post_notebook(addr, body);
    assert_eq!(status, 200);
    let first_id = header(&headers, "x-atena-trace-id")
        .expect("trace header")
        .to_string();
    assert_eq!(first_id.len(), 16);
    assert!(first_id.chars().all(|c| c.is_ascii_hexdigit()));
    let (status, headers, _) = post_notebook(addr, body);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-atena-cache"), Some("hit"));
    let second_id = header(&headers, "x-atena-trace-id").unwrap();
    assert_ne!(first_id, second_id, "trace ids must be per-request");

    // 2. Keep-alive reuse is counted (two requests, one connection).
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        read_one_response(&mut stream);
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        read_one_response(&mut stream);
    }
    let snap = telemetry.snapshot();
    assert!(
        snap.counter("server.conn.keepalive_reuse").unwrap_or(0) >= 1,
        "second request on one connection must count as reuse"
    );
    // Zero threshold: every request so far was slow.
    assert!(snap.counter("server.request.slow").unwrap_or(0) >= 4);

    // 3. Prometheus exposition: content type, # TYPE lines, histogram
    //    series, and the new counters exposed.
    let (status, headers, body) = http_request(
        addr,
        "GET /v1/metrics?format=prometheus HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/plain; version=0.0.4")
    );
    assert!(body.contains("# TYPE atena_server_http_requests counter"));
    assert!(body.contains("# TYPE atena_server_http_latency_secs histogram"));
    assert!(body.contains("atena_server_http_latency_secs_bucket{le=\"+Inf\"}"));
    assert!(body.contains("atena_server_request_slow"));
    assert!(body.contains("atena_server_conn_keepalive_reuse"));
    // JSON remains the default.
    let (_, headers, body) = http_request(
        addr,
        "GET /v1/metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    serde_json::from_str::<serde_json::Value>(&body).expect("JSON metrics stay valid");

    // 4. The debug ring: newest-first entries with identity and latency
    //    breakdown; the notebook miss shows decode time.
    let (status, _, body) = http_request(
        addr,
        "GET /v1/debug/requests HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let debug: serde_json::Value = serde_json::from_str(&body).expect("debug JSON parses");
    assert_eq!(debug["tracing"]["enabled"].as_bool(), Some(true));
    assert!(debug["tracing"]["spans_recorded"].as_u64().unwrap() > 0);
    let requests = debug["requests"].as_array().unwrap();
    assert!(requests.len() >= 4, "ring should hold this test's requests");
    for r in requests {
        assert_eq!(r["trace_id"].as_str().unwrap().len(), 16);
        assert!(r["status"].as_u64().is_some());
        assert!(r["total_secs"].as_f64().unwrap() >= 0.0);
        assert!(r["read_secs"].as_f64().unwrap() >= 0.0);
    }
    let miss = requests
        .iter()
        .find(|r| r["cache"].as_str() == Some("miss"))
        .expect("the first notebook request was a miss");
    assert_eq!(miss["path"].as_str(), Some("/v1/notebook"));
    assert_eq!(miss["trace_id"].as_str(), Some(first_id.as_str()));
    assert!(miss["decode_secs"].as_f64().unwrap() > 0.0);
    let hit = requests
        .iter()
        .find(|r| r["cache"].as_str() == Some("hit"))
        .expect("the second notebook request was a hit");
    assert_eq!(hit["decode_secs"].as_f64(), Some(0.0));

    // 5. The span ring holds the request tree: a server.request root whose
    //    children include the decode with per-step nn.forward spans.
    let spans = tracer.snapshot();
    let root = spans
        .iter()
        .find(|s| {
            s.name == "server.request"
                && s.attrs.contains(&("path", "/v1/notebook".to_string()))
                && format!("{:016x}", s.trace_id) == first_id
        })
        .expect("root span for the first notebook request");
    let decode = spans
        .iter()
        .find(|s| s.trace_id == root.trace_id && s.name == "engine.decode")
        .expect("engine.decode child span");
    let forwards = spans
        .iter()
        .filter(|s| s.trace_id == root.trace_id && s.name == "nn.forward")
        .count();
    assert_eq!(forwards, 3, "one nn.forward per decoded cell");
    assert!(spans
        .iter()
        .any(|s| s.trace_id == root.trace_id && s.name == "cache.lookup"));
    assert!(decode.duration_secs > 0.0);

    handle.shutdown();
}

#[test]
fn oversized_body_rejected_over_socket() {
    let engine = Engine::new(tiny_bundle(), base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_size: 4,
            max_body_bytes: 128,
            ..Default::default()
        },
        engine,
        telemetry,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    let big = "x".repeat(4096);
    let (status, _, body) = post_notebook(addr, &big);
    assert_eq!(status, 413, "{body}");

    // Missing Content-Length on POST → 411.
    let (status, _, _) = http_request(
        addr,
        "POST /v1/notebook HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 411);

    handle.shutdown();
}

#[test]
fn idle_shutdown_is_prompt() {
    // The accept loop blocks in accept(2) with no polling; shutdown must
    // wake it with a self-connect rather than waiting for a client. If the
    // wake were lost, handle.shutdown() would join forever.
    let engine = Engine::new(tiny_bundle(), base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_size: 4,
            ..Default::default()
        },
        engine,
        telemetry,
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    // Let the loop reach its blocking accept with zero traffic.
    std::thread::sleep(Duration::from_millis(50));
    let start = std::time::Instant::now();
    handle.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "idle shutdown took {:?}",
        start.elapsed()
    );
}
