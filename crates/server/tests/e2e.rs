//! End-to-end serving test over real sockets: train a tiny policy, bundle
//! it through a file (the checkpoint the CLI would produce), start the
//! server on an ephemeral port, hammer it with concurrent clients, and
//! check response identity, cache behaviour, metrics, and graceful
//! shutdown.

use atena_core::{train_policy_bundle, AtenaConfig, PolicyBundle, Strategy};
use atena_dataframe::{AttrRole, DataFrame};
use atena_registry::{dataset_id_for_fingerprint, RegistryConfig, TenantLimits};
use atena_server::{Engine, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn base() -> DataFrame {
    DataFrame::builder()
        .str(
            "proto",
            AttrRole::Categorical,
            (0..60).map(|i| Some(if i % 5 == 0 { "udp" } else { "tcp" })),
        )
        .int(
            "len",
            AttrRole::Numeric,
            (0..60).map(|i| Some((i * 13 % 31) as i64)),
        )
        .build()
        .unwrap()
}

fn tiny_bundle() -> PolicyBundle {
    let mut config = AtenaConfig::quick();
    config.train_steps = 300;
    config.probe_steps = 60;
    config.env.episode_len = 4;
    train_policy_bundle("tiny", base(), vec![], config, Strategy::Atena).unwrap()
}

/// One blocking HTTP exchange on a fresh connection.
fn http_request(addr: SocketAddr, raw: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    // The server may respond-and-reset before consuming the whole request
    // (oversized bodies), so a failed tail write is acceptable.
    let _ = stream.write_all(raw.as_bytes());
    read_one_response(&mut stream)
}

/// Read exactly one response: head, then Content-Length body bytes. A reset
/// after a complete response has arrived (server rejecting an undrained
/// body) is tolerated.
fn read_one_response(stream: &mut TcpStream) -> (u16, Vec<(String, String)>, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(parsed) = try_parse_response(&buf) {
            return parsed;
        }
        match stream.read(&mut chunk) {
            Ok(0) => panic!(
                "connection closed before a full response; got {:?}",
                String::from_utf8_lossy(&buf)
            ),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!(
                "read error {e} before a full response; got {:?}",
                String::from_utf8_lossy(&buf)
            ),
        }
    }
}

fn try_parse_response(bytes: &[u8]) -> Option<(u16, Vec<(String, String)>, String)> {
    let text = String::from_utf8_lossy(bytes).into_owned();
    let (head, rest) = text.split_once("\r\n\r\n")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    if rest.len() < len {
        return None;
    }
    Some((status, headers, rest[..len].to_string()))
}

fn post_notebook(addr: SocketAddr, body: &str) -> (u16, Vec<(String, String)>, String) {
    http_request(
        addr,
        &format!(
            "POST /v1/notebook HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// One `Connection: close` exchange with arbitrary method, target, extra
/// headers, and body (`Content-Length` added for body-bearing methods).
fn request_with(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut raw = format!("{method} {target} HTTP/1.1\r\nHost: t\r\n");
    for (n, v) in headers {
        raw.push_str(&format!("{n}: {v}\r\n"));
    }
    if !body.is_empty() || matches!(method, "POST" | "PUT") {
        raw.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    raw.push_str("Connection: close\r\n\r\n");
    raw.push_str(body);
    http_request(addr, &raw)
}

/// Fetch the `/v1/metrics` JSON document.
fn metrics(addr: SocketAddr) -> serde_json::Value {
    let (status, _, body) = http_request(
        addr,
        "GET /v1/metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    serde_json::from_str(&body).unwrap()
}

#[test]
fn checkpoint_serve_concurrent_cache_metrics_shutdown() {
    // 1. Produce a server-loadable checkpoint through the filesystem, as
    //    `atena checkpoint save` would.
    let dir = std::env::temp_dir().join("atena-server-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("tiny.ckpt.json");
    tiny_bundle().save(&ckpt).unwrap();

    // 2. Load it back and serve on an ephemeral port with an isolated
    //    metrics registry.
    let bundle = PolicyBundle::load(&ckpt).unwrap();
    let engine = Engine::new(bundle, base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 3,
            cache_size: 16,
            ..Default::default()
        },
        engine,
        Arc::clone(&telemetry),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    // 3. Health check.
    let (status, _, body) = http_request(
        addr,
        "GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200, "{body}");
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert_eq!(health["dataset"].as_str(), Some("tiny"));

    // 4. Concurrent identical requests over real sockets: every client must
    //    get a 200 with the same notebook JSON.
    let request_body = r#"{"dataset":"tiny","episode_len":3,"seed":5}"#;
    let clients: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, headers, body) = post_notebook(addr, request_body);
                let cache = header(&headers, "x-atena-cache").unwrap_or("?").to_string();
                (status, cache, body)
            })
        })
        .collect();
    let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let reference = &results[0].2;
    let parsed: serde_json::Value = serde_json::from_str(reference).unwrap();
    assert_eq!(parsed["dataset"].as_str(), Some("tiny"));
    assert_eq!(parsed["notebook"]["cells"].as_array().unwrap().len(), 3);
    for (status, cache, body) in &results {
        assert_eq!(*status, 200);
        assert!(cache == "hit" || cache == "miss", "cache header: {cache}");
        assert_eq!(body, reference, "divergent notebook across clients");
    }

    // 5. A repeat request is served from the cache.
    let (status, headers, body) = post_notebook(addr, request_body);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-atena-cache"), Some("hit"));
    assert_eq!(&body, reference);

    // 6. /v1/metrics reports the cache hit and nonzero latency samples.
    let (status, _, body) = http_request(
        addr,
        "GET /v1/metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let metrics: serde_json::Value = serde_json::from_str(&body).unwrap();
    // 7 identical requests total (6 concurrent + 1 repeat). Concurrent
    // clients may race to a miss before the first insert lands, but the
    // sequential repeat is a guaranteed hit, every request is either a hit
    // or a miss, and only misses evaluate the policy.
    let hits = metrics["counters"]["server.cache.hits"].as_u64().unwrap();
    let misses = metrics["counters"]["server.cache.misses"].as_u64().unwrap();
    assert!(hits >= 1, "sequential repeat must hit the cache");
    assert!((1..=6).contains(&misses), "misses: {misses}");
    assert_eq!(hits + misses, 7);
    let latency = &metrics["histograms"]["server.http.latency_secs"];
    assert!(latency["count"].as_u64().unwrap() >= 8);
    assert!(latency["p95"].as_f64().unwrap() > 0.0);
    assert_eq!(
        metrics["histograms"]["server.notebook.decode_secs"]["count"].as_u64(),
        Some(misses),
        "only cache misses may evaluate the policy"
    );

    // 7. Error paths: wrong dataset → 404; bad JSON → 400; unknown route →
    //    404; wrong method → 405.
    let (status, _, body) = post_notebook(addr, r#"{"dataset":"flights1"}"#);
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("error"));
    let (status, _, _) = post_notebook(addr, "{nope");
    assert_eq!(status, 400);
    let (status, _, _) = post_notebook(addr, r#"{"episode_len":3}"#);
    assert_eq!(status, 400);
    let (status, _, _) = http_request(
        addr,
        "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 404);
    let (status, _, _) = http_request(
        addr,
        "GET /v1/notebook HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);

    // 8. Keep-alive: two requests on one connection.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, headers, _) = read_one_response(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "connection"), Some("keep-alive"));
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (status, headers, _) = read_one_response(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "connection"), Some("close"));
    }

    // 9. Graceful shutdown: the handle drains and joins; afterwards the
    //    port stops accepting.
    handle.shutdown();
    std::thread::sleep(Duration::from_millis(50));
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err();
    assert!(refused, "listener still accepting after shutdown");
}

/// LRU semantics of the response cache over real sockets: exact eviction
/// order at capacity 2, monotone hit/miss counters, and byte-identical
/// responses before and after eviction. Also asserts the engine's display
/// cache (shared across requests) accumulates hits as decodes replay
/// operation paths.
#[test]
fn response_cache_lru_semantics_over_http() {
    let engine = Engine::new(tiny_bundle(), base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    // Surface the display cache's env.cache.* counters on /v1/metrics.
    engine.display_cache().reroute_telemetry(&telemetry);
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_size: 2,
            ..Default::default()
        },
        engine,
        Arc::clone(&telemetry),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    let request = |seed: u64| -> (String, String) {
        let body = format!(r#"{{"dataset":"tiny","episode_len":3,"seed":{seed}}}"#);
        let (status, headers, body) = post_notebook(addr, &body);
        assert_eq!(status, 200, "{body}");
        (header(&headers, "x-atena-cache").unwrap().to_string(), body)
    };
    let counters = || -> (u64, u64, u64) {
        let (status, _, body) = http_request(
            addr,
            "GET /v1/metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        let m: serde_json::Value = serde_json::from_str(&body).unwrap();
        (
            m["counters"]["server.cache.hits"].as_u64().unwrap_or(0),
            m["counters"]["server.cache.misses"].as_u64().unwrap_or(0),
            m["counters"]["env.cache.hit"].as_u64().unwrap_or(0),
        )
    };

    // Scripted access pattern against a capacity-2 LRU. Each step encodes
    // the *exact* expected outcome, so any deviation from true
    // least-recently-used eviction (FIFO, random, MRU...) fails the test:
    //   seed 1 → miss             cache [1]
    //   seed 2 → miss             cache [2, 1]
    //   seed 1 → hit              cache [1, 2]   (1 refreshed to MRU)
    //   seed 3 → miss, evicts 2   cache [3, 1]   (2 was LRU, *not* 1)
    //   seed 2 → miss (evicted), evicts 1
    //   seed 1 → miss (evicted), evicts 3
    //   seed 1 → hit
    let script: &[(u64, &str)] = &[
        (1, "miss"),
        (2, "miss"),
        (1, "hit"),
        (3, "miss"),
        (2, "miss"),
        (1, "miss"),
        (1, "hit"),
    ];
    let mut first_response: std::collections::HashMap<u64, String> =
        std::collections::HashMap::new();
    let (mut prev_hits, mut prev_misses, mut prev_env_hits) = counters();
    assert_eq!((prev_hits, prev_misses), (0, 0));
    for (step, &(seed, expected)) in script.iter().enumerate() {
        let (cache, body) = request(seed);
        assert_eq!(
            cache, expected,
            "step {step}: seed {seed} expected {expected}"
        );
        // Responses are deterministic per seed: eviction and re-decode must
        // reproduce the evicted entry byte-for-byte.
        let reference = first_response.entry(seed).or_insert_with(|| body.clone());
        assert_eq!(
            &body, reference,
            "seed {seed} response changed at step {step}"
        );

        let (hits, misses, env_hits) = counters();
        assert!(
            hits >= prev_hits && misses >= prev_misses,
            "counters went backwards"
        );
        assert!(
            env_hits >= prev_env_hits,
            "display-cache hits went backwards"
        );
        assert_eq!(hits - prev_hits, u64::from(expected == "hit"));
        assert_eq!(misses - prev_misses, u64::from(expected == "miss"));
        (prev_hits, prev_misses, prev_env_hits) = (hits, misses, env_hits);
    }
    assert_eq!(prev_hits, 2);
    assert_eq!(prev_misses, 5);
    // Five decodes ran (one per response-cache miss); seeds 1 and 2 each
    // decoded more than once, replaying their operation paths out of the
    // shared display cache.
    assert!(
        prev_env_hits > 0,
        "repeated decodes produced no display-cache hits"
    );

    handle.shutdown();
}

/// The PR-6 observability surface over real sockets: per-request traces
/// (`X-Atena-Trace-Id`), the `/v1/debug/requests` ring with latency
/// breakdowns, Prometheus text exposition on `/v1/metrics`, and the
/// keep-alive-reuse / slow-request counters.
#[test]
fn tracing_debug_ring_and_prometheus_over_http() {
    let engine = Engine::new(tiny_bundle(), base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_size: 4,
            // Zero threshold: every request counts as slow, making the
            // counter (and its WARN path) deterministic to assert.
            slow_threshold: Duration::ZERO,
            ..Default::default()
        },
        engine,
        Arc::clone(&telemetry),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();
    // The tracer is process-global (the server stamps trace ids either
    // way); enabling it here turns span recording on for this test's
    // requests. Tracing is execution-only, so concurrent tests are
    // unaffected beyond extra spans in the shared ring.
    let tracer = atena_telemetry::tracer();
    tracer.set_enabled(true);

    // 1. Every response carries a fresh 16-hex-digit trace id.
    let body = r#"{"dataset":"tiny","episode_len":3,"seed":42}"#;
    let (status, headers, _) = post_notebook(addr, body);
    assert_eq!(status, 200);
    let first_id = header(&headers, "x-atena-trace-id")
        .expect("trace header")
        .to_string();
    assert_eq!(first_id.len(), 16);
    assert!(first_id.chars().all(|c| c.is_ascii_hexdigit()));
    let (status, headers, _) = post_notebook(addr, body);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-atena-cache"), Some("hit"));
    let second_id = header(&headers, "x-atena-trace-id").unwrap();
    assert_ne!(first_id, second_id, "trace ids must be per-request");

    // 2. Keep-alive reuse is counted (two requests, one connection).
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        read_one_response(&mut stream);
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        read_one_response(&mut stream);
    }
    let snap = telemetry.snapshot();
    assert!(
        snap.counter("server.conn.keepalive_reuse").unwrap_or(0) >= 1,
        "second request on one connection must count as reuse"
    );
    // Zero threshold: every request so far was slow.
    assert!(snap.counter("server.request.slow").unwrap_or(0) >= 4);

    // 3. Prometheus exposition: content type, # TYPE lines, histogram
    //    series, and the new counters exposed.
    let (status, headers, body) = http_request(
        addr,
        "GET /v1/metrics?format=prometheus HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/plain; version=0.0.4")
    );
    assert!(body.contains("# TYPE atena_server_http_requests counter"));
    assert!(body.contains("# TYPE atena_server_http_latency_secs histogram"));
    assert!(body.contains("atena_server_http_latency_secs_bucket{le=\"+Inf\"}"));
    assert!(body.contains("atena_server_request_slow"));
    assert!(body.contains("atena_server_conn_keepalive_reuse"));
    // JSON remains the default.
    let (_, headers, body) = http_request(
        addr,
        "GET /v1/metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    serde_json::from_str::<serde_json::Value>(&body).expect("JSON metrics stay valid");

    // 4. The debug ring: newest-first entries with identity and latency
    //    breakdown; the notebook miss shows decode time.
    let (status, _, body) = http_request(
        addr,
        "GET /v1/debug/requests HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let debug: serde_json::Value = serde_json::from_str(&body).expect("debug JSON parses");
    assert_eq!(debug["tracing"]["enabled"].as_bool(), Some(true));
    assert!(debug["tracing"]["spans_recorded"].as_u64().unwrap() > 0);
    let requests = debug["requests"].as_array().unwrap();
    assert!(requests.len() >= 4, "ring should hold this test's requests");
    for r in requests {
        assert_eq!(r["trace_id"].as_str().unwrap().len(), 16);
        assert!(r["status"].as_u64().is_some());
        assert!(r["total_secs"].as_f64().unwrap() >= 0.0);
        assert!(r["read_secs"].as_f64().unwrap() >= 0.0);
    }
    let miss = requests
        .iter()
        .find(|r| r["cache"].as_str() == Some("miss"))
        .expect("the first notebook request was a miss");
    assert_eq!(miss["path"].as_str(), Some("/v1/notebook"));
    assert_eq!(miss["trace_id"].as_str(), Some(first_id.as_str()));
    assert!(miss["decode_secs"].as_f64().unwrap() > 0.0);
    let hit = requests
        .iter()
        .find(|r| r["cache"].as_str() == Some("hit"))
        .expect("the second notebook request was a hit");
    assert_eq!(hit["decode_secs"].as_f64(), Some(0.0));

    // 5. The span ring holds the request tree: a server.request root whose
    //    children include the decode with per-step nn.forward spans.
    let spans = tracer.snapshot();
    let root = spans
        .iter()
        .find(|s| {
            s.name == "server.request"
                && s.attrs.contains(&("path", "/v1/notebook".to_string()))
                && format!("{:016x}", s.trace_id) == first_id
        })
        .expect("root span for the first notebook request");
    let decode = spans
        .iter()
        .find(|s| s.trace_id == root.trace_id && s.name == "engine.decode")
        .expect("engine.decode child span");
    let forwards = spans
        .iter()
        .filter(|s| s.trace_id == root.trace_id && s.name == "nn.forward")
        .count();
    assert_eq!(forwards, 3, "one nn.forward per decoded cell");
    assert!(spans
        .iter()
        .any(|s| s.trace_id == root.trace_id && s.name == "cache.lookup"));
    assert!(decode.duration_secs > 0.0);

    handle.shutdown();
}

#[test]
fn oversized_body_rejected_over_socket() {
    let engine = Engine::new(tiny_bundle(), base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_size: 4,
            max_body_bytes: 128,
            ..Default::default()
        },
        engine,
        telemetry,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    let big = "x".repeat(4096);
    let (status, _, body) = post_notebook(addr, &big);
    assert_eq!(status, 413, "{body}");

    // Missing Content-Length on POST → 411.
    let (status, _, _) = http_request(
        addr,
        "POST /v1/notebook HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 411);

    handle.shutdown();
}

/// The full multi-tenant dataset lifecycle over real sockets: upload with
/// schema echo, cross-tenant dedup, notebook decode against the uploaded
/// dataset byte-identical to an offline decode from the same CSV, delete,
/// and 404 afterwards. Also covers the pinned baked-in dataset (listed,
/// resolvable by id, undeletable) and incompatible-shape uploads (→ 409
/// on decode).
#[test]
fn dataset_upload_notebook_delete_lifecycle_over_http() {
    let bundle = tiny_bundle();
    // A sibling engine decodes the same CSV offline for the byte-identity
    // check; the server gets its own engine from the same bundle.
    let offline = Engine::new(bundle.clone(), base()).unwrap();
    let engine = Engine::new(bundle, base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 3,
            cache_size: 16,
            ..Default::default()
        },
        engine,
        Arc::clone(&telemetry),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    // 1. Upload a two-column CSV (same shape as the policy's dataset, so
    //    it is decodable). 201 Created with metadata + schema.
    let mut csv = String::from("proto,len\n");
    for i in 0..40 {
        csv.push_str(&format!(
            "{},{}\n",
            if i % 3 == 0 { "udp" } else { "tcp" },
            i * 7 % 23
        ));
    }
    let (status, _, body) = request_with(
        addr,
        "POST",
        "/v1/datasets?name=mycsv",
        &[("X-Atena-Tenant", "alice")],
        &csv,
    );
    assert_eq!(status, 201, "{body}");
    let uploaded: serde_json::Value = serde_json::from_str(&body).unwrap();
    let id = uploaded["dataset"]["dataset_id"]
        .as_str()
        .unwrap()
        .to_string();
    assert!(id.starts_with("ds-") && id.len() == 19, "id: {id}");
    assert_eq!(uploaded["dataset"]["name"].as_str(), Some("mycsv"));
    assert_eq!(uploaded["dataset"]["rows"].as_u64(), Some(40));
    assert_eq!(uploaded["dataset"]["cols"].as_u64(), Some(2));
    assert_eq!(uploaded["deduplicated"].as_bool(), Some(false));
    assert_eq!(uploaded["policy_compatible"].as_bool(), Some(true));
    let schema = uploaded["schema"].as_array().unwrap();
    assert_eq!(schema.len(), 2);
    assert_eq!(schema[0]["name"].as_str(), Some("proto"));
    assert_eq!(schema[0]["dtype"].as_str(), Some("str"));
    assert_eq!(schema[1]["name"].as_str(), Some("len"));
    assert_eq!(schema[1]["dtype"].as_str(), Some("int"));

    // 2. A second tenant uploading identical bytes dedups onto the same
    //    entry: 200 (not 201), same id, both tenants recorded.
    let (status, _, body) = request_with(
        addr,
        "POST",
        "/v1/datasets?name=other-name",
        &[("X-Atena-Tenant", "bob")],
        &csv,
    );
    assert_eq!(status, 200, "{body}");
    let dedup: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(dedup["deduplicated"].as_bool(), Some(true));
    assert_eq!(dedup["dataset"]["dataset_id"].as_str(), Some(id.as_str()));
    let tenants = dedup["dataset"]["tenants"].as_array().unwrap();
    assert_eq!(tenants.len(), 2, "alice and bob both own the entry");

    // 3. The listing shows the pinned baked-in dataset and the upload.
    let (status, _, body) = http_request(
        addr,
        "GET /v1/datasets HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let listing: serde_json::Value = serde_json::from_str(&body).unwrap();
    let datasets = listing["datasets"].as_array().unwrap();
    assert_eq!(datasets.len(), 2);
    let pinned_id = dataset_id_for_fingerprint(base().fingerprint());
    assert!(datasets.iter().any(|d| {
        d["dataset_id"].as_str() == Some(pinned_id.as_str()) && d["pinned"].as_bool() == Some(true)
    }));
    assert!(datasets
        .iter()
        .any(|d| d["dataset_id"].as_str() == Some(id.as_str())));

    // 4. Decode a notebook against the uploaded dataset, and check it is
    //    byte-identical to an offline decode from the same CSV bytes.
    let request_body = format!(r#"{{"dataset_id":"{id}","episode_len":3,"seed":7}}"#);
    let (status, headers, served) = request_with(
        addr,
        "POST",
        "/v1/notebook",
        &[
            ("X-Atena-Tenant", "alice"),
            ("Content-Type", "application/json"),
        ],
        &request_body,
    );
    assert_eq!(status, 200, "{served}");
    assert_eq!(header(&headers, "x-atena-cache"), Some("miss"));
    let frame = Arc::new(DataFrame::from_csv_str(&csv).unwrap());
    let validated = offline
        .validate_for_frame("mycsv", &frame, Some(3), Some(7))
        .unwrap();
    let expected =
        serde_json::to_string(&offline.decode_with_frame(&frame, &validated, None).unwrap())
            .unwrap();
    assert_eq!(
        served, expected,
        "served notebook differs from offline decode"
    );

    // 5. Repeat request: response-cache hit, still byte-identical.
    let (status, headers, again) = request_with(
        addr,
        "POST",
        "/v1/notebook",
        &[("Content-Type", "application/json")],
        &request_body,
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-atena-cache"), Some("hit"));
    assert_eq!(again, expected);

    // 6. The baked-in dataset stays addressable both ways: by name and by
    //    its pinned dataset id, producing the same notebook bytes.
    let by_name = post_notebook(addr, r#"{"dataset":"tiny","episode_len":3,"seed":5}"#).2;
    let by_id_body =
        format!(r#"{{"dataset_id":"{pinned_id}","dataset":"tiny","episode_len":3,"seed":5}}"#);
    let by_id = request_with(addr, "POST", "/v1/notebook", &[], &by_id_body).2;
    assert_eq!(by_name, by_id);

    // 7. An incompatible upload (three columns: observation shape differs)
    //    is accepted into the registry but flagged, and decoding → 409.
    let bad = "a,b,c\n1,2,3\n4,5,6\n";
    let (status, _, body) = request_with(addr, "POST", "/v1/datasets", &[], bad);
    assert_eq!(status, 201, "{body}");
    let incompatible: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(incompatible["policy_compatible"].as_bool(), Some(false));
    let bad_id = incompatible["dataset"]["dataset_id"].as_str().unwrap();
    let (status, _, body) = request_with(
        addr,
        "POST",
        "/v1/notebook",
        &[],
        &format!(r#"{{"dataset_id":"{bad_id}"}}"#),
    );
    assert_eq!(status, 409, "{body}");

    // 8. GET one dataset; DELETE it; both then 404. The pinned dataset
    //    refuses deletion with 409.
    let target = format!("/v1/datasets/{id}");
    let (status, _, _) = request_with(addr, "GET", &target, &[], "");
    assert_eq!(status, 200);
    let (status, _, body) = request_with(addr, "DELETE", &target, &[], "");
    assert_eq!(status, 200, "{body}");
    let (status, _, _) = request_with(addr, "GET", &target, &[], "");
    assert_eq!(status, 404);
    let (status, _, body) = request_with(addr, "POST", "/v1/notebook", &[], &request_body);
    assert_eq!(status, 404, "deleted dataset must not decode: {body}");
    let (status, _, _) = request_with(
        addr,
        "DELETE",
        &format!("/v1/datasets/{pinned_id}"),
        &[],
        "",
    );
    assert_eq!(status, 409);
    let (status, _, _) = request_with(addr, "GET", "/v1/datasets/ds-0000000000000000", &[], "");
    assert_eq!(status, 404);

    // 9. Wrong methods get 405 with a truthful Allow header.
    for (method, target, allow) in [
        ("DELETE", "/v1/datasets", "GET, POST"),
        ("POST", "/v1/datasets/ds-0000000000000000", "GET, DELETE"),
        ("GET", "/v1/notebook", "POST"),
        ("POST", "/v1/healthz", "GET"),
    ] {
        let (status, headers, _) = request_with(addr, method, target, &[], "");
        assert_eq!(status, 405, "{method} {target}");
        assert_eq!(header(&headers, "allow"), Some(allow), "{method} {target}");
    }

    // 10. Registry counters on /v1/metrics reflect the session and the
    //     healthz document reports registry occupancy.
    let m = metrics(addr);
    assert_eq!(m["counters"]["registry.uploads"].as_u64(), Some(3));
    assert_eq!(m["counters"]["registry.dedup_hits"].as_u64(), Some(1));
    assert_eq!(m["counters"]["registry.deletes"].as_u64(), Some(1));
    assert!(m["counters"]["admission.accepted"].as_u64().unwrap() >= 5);
    let (status, _, body) = http_request(
        addr,
        "GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    // The pinned dataset and the (still-resident) incompatible upload.
    assert_eq!(health["registry"]["datasets"].as_u64(), Some(2));

    handle.shutdown();
}

/// Upload-path guardrails over real sockets: per-route body caps checked
/// against Content-Length before buffering, chunked uploads refused with a
/// deterministic 501, malformed CSV → 400, tenant byte quota → 429, and
/// LRU eviction under a small byte budget with monotone counters.
#[test]
fn upload_limits_eviction_and_chunked_over_socket() {
    let engine = Engine::new(tiny_bundle(), base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let registry = RegistryConfig {
        // Roughly two small uploads' worth of resident bytes (each test
        // upload below occupies ~1.4 KB), and a tenant quota of one.
        budget_bytes: 3000,
        max_datasets: 8,
        tenant_quota_bytes: 2000,
        limits: atena_dataframe::CsvLimits {
            max_bytes: 4096,
            max_rows: 10_000,
            max_cols: 16,
        },
    };
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            cache_size: 4,
            registry,
            ..Default::default()
        },
        engine,
        Arc::clone(&telemetry),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    // 1. A Content-Length far past the upload cap is refused from the
    //    declared length alone — no body bytes are sent, so a 413 here
    //    proves nothing was buffered.
    let (status, _, _) = http_request(
        addr,
        "POST /v1/datasets HTTP/1.1\r\nHost: t\r\nContent-Length: 2147483648\r\n\
         Connection: close\r\n\r\n",
    );
    assert_eq!(status, 413);

    // 2. The same oversized length on /v1/notebook also 413s (default
    //    cap), while a body over the upload cap but under the default cap
    //    is only rejected on the upload route.
    let mid = format!("a,b\n{}", "x,1\n".repeat(2000)); // ~8 KB
    let (status, _, _) = request_with(addr, "POST", "/v1/datasets", &[], &mid);
    assert_eq!(status, 413, "upload route enforces the registry cap");
    let (status, _, _) = request_with(addr, "POST", "/v1/notebook", &[], &mid);
    assert_eq!(status, 400, "notebook route keeps the larger default cap");

    // 3. Chunked transfer encoding: deterministic 501, never a hang.
    let (status, _, body) = http_request(
        addr,
        "POST /v1/datasets HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\
         Connection: close\r\n\r\n5\r\na,b\n1\r\n0\r\n\r\n",
    );
    assert_eq!(status, 501, "{body}");

    // 4. Malformed CSV (ragged row) → 400 with the physical line number.
    let (status, _, body) = request_with(addr, "POST", "/v1/datasets", &[], "a,b\n1,2\n3\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("line 3"), "{body}");

    // 5. Three distinct uploads under a two-dataset budget: the least
    //    recently used entry is evicted, the others stay resident.
    let csv_for = |tag: u32| {
        let mut csv = String::from("k,v\n");
        for r in 0..40 {
            csv.push_str(&format!("row{tag}_{r},{r}\n"));
        }
        csv
    };
    let mut ids = Vec::new();
    for (tenant, tag) in [("t1", 1u32), ("t2", 2), ("t3", 3)] {
        let (status, _, body) = request_with(
            addr,
            "POST",
            "/v1/datasets",
            &[("X-Atena-Tenant", tenant)],
            &csv_for(tag),
        );
        assert_eq!(status, 201, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        ids.push(v["dataset"]["dataset_id"].as_str().unwrap().to_string());
    }
    let (status, _, _) = request_with(addr, "GET", &format!("/v1/datasets/{}", ids[0]), &[], "");
    assert_eq!(status, 404, "oldest upload must have been evicted");
    for id in &ids[1..] {
        let (status, _, _) = request_with(addr, "GET", &format!("/v1/datasets/{id}"), &[], "");
        assert_eq!(status, 200, "{id} should still be resident");
    }
    let m = metrics(addr);
    assert!(m["counters"]["registry.evictions"].as_u64().unwrap() >= 1);
    assert_eq!(m["counters"]["registry.uploads"].as_u64(), Some(3));
    let budget = m["gauges"]["registry.bytes"].as_f64().unwrap();
    assert!(budget > 0.0);

    // 6. A tenant at its byte quota gets 429 + Retry-After; the bytes it
    //    already owns are the reason, so another tenant still succeeds.
    let (status, _, body) = request_with(
        addr,
        "POST",
        "/v1/datasets",
        &[("X-Atena-Tenant", "t3")],
        &csv_for(4),
    );
    assert_eq!(status, 429, "t3 already owns a resident dataset: {body}");
    let (status, headers, body) = request_with(
        addr,
        "POST",
        "/v1/datasets",
        &[("X-Atena-Tenant", "fresh")],
        &csv_for(4),
    );
    // The quota rejection must carry a Retry-After; the fresh tenant's
    // upload goes through (evicting under the byte budget as needed).
    assert_eq!(status, 201, "{body}");
    assert!(header(&headers, "retry-after").is_none());
    let m = metrics(addr);
    assert!(m["counters"]["registry.ingest.rejected"].as_u64().unwrap() >= 1);

    handle.shutdown();
}

/// Per-tenant admission control: a hog tenant saturating its in-flight
/// cap collects 429s with `Retry-After`, while a quiet tenant's requests
/// keep succeeding throughout the storm. Read-only endpoints are exempt.
#[test]
fn tenant_admission_throttles_hog_not_others() {
    let engine = Engine::new(tiny_bundle(), base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            // No response cache: every request decodes, keeping workers
            // busy long enough for in-flight requests to overlap.
            cache_size: 0,
            tenant_limits: TenantLimits {
                max_inflight: 1,
                retry_after_secs: 3,
            },
            ..Default::default()
        },
        engine,
        Arc::clone(&telemetry),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    // 12 concurrent decodes from one tenant against an in-flight cap of 1:
    // overlapping requests are told to back off.
    let hogs: Vec<_> = (0..12)
        .map(|seed| {
            std::thread::spawn(move || {
                let body = format!(r#"{{"dataset":"tiny","episode_len":16,"seed":{seed}}}"#);
                request_with(
                    addr,
                    "POST",
                    "/v1/notebook",
                    &[("X-Atena-Tenant", "hog")],
                    &body,
                )
            })
        })
        .collect();
    // While the storm runs, the quiet tenant (sequential, so never over
    // its own cap) must keep getting answers.
    let mut quiet_ok = 0;
    for seed in 100..103 {
        let body = format!(r#"{{"dataset":"tiny","episode_len":8,"seed":{seed}}}"#);
        let (status, _, b) = request_with(
            addr,
            "POST",
            "/v1/notebook",
            &[("X-Atena-Tenant", "quiet")],
            &body,
        );
        assert_eq!(status, 200, "quiet tenant throttled: {b}");
        quiet_ok += 1;
    }
    assert_eq!(quiet_ok, 3);

    let mut ok = 0;
    let mut throttled = 0;
    for h in hogs {
        let (status, headers, body) = h.join().unwrap();
        match status {
            200 => ok += 1,
            429 => {
                throttled += 1;
                assert_eq!(header(&headers, "retry-after"), Some("3"), "{body}");
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(ok >= 1, "at least the permit holder must succeed");
    assert!(
        throttled >= 1,
        "12 concurrent decodes at cap 1 must overlap at least once"
    );

    // Read-only endpoints are exempt from admission even for the hog.
    let (status, _, _) = request_with(
        addr,
        "GET",
        "/v1/datasets",
        &[("X-Atena-Tenant", "hog")],
        "",
    );
    assert_eq!(status, 200);

    let m = metrics(addr);
    assert_eq!(
        m["counters"]["admission.rejected"].as_u64(),
        Some(throttled as u64)
    );
    assert!(m["counters"]["server.http.throttled"].as_u64().unwrap() >= 1);

    handle.shutdown();
}

#[test]
fn microbatched_server_responses_match_serial_server() {
    // The batching half of the determinism contract over real sockets: a
    // server coalescing concurrent decode steps into batched forwards
    // returns byte-identical notebook JSON to an unbatched server, and
    // surfaces the batch telemetry.
    let bundle = tiny_bundle();
    let spawn = |max_batch: usize| {
        let engine = Engine::new(bundle.clone(), base()).unwrap();
        let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
        let server = Server::bind_with_telemetry(
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 4,
                cache_size: 0, // force every request through the decoder
                max_batch,
                batch_window: Duration::from_millis(2),
                ..Default::default()
            },
            engine,
            Arc::clone(&telemetry),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        (server.spawn().unwrap(), addr, telemetry)
    };
    let (serial_handle, serial_addr, _) = spawn(1);
    let (batched_handle, batched_addr, batched_telemetry) = spawn(8);

    let seeds: Vec<u64> = (0..8).collect();
    let serial: Vec<String> = seeds
        .iter()
        .map(|s| {
            let body = format!(r#"{{"dataset":"tiny","episode_len":4,"seed":{s}}}"#);
            let (status, _, resp) = post_notebook(serial_addr, &body);
            assert_eq!(status, 200, "{resp}");
            resp
        })
        .collect();
    // Hit the batched server with all seeds concurrently so decode steps
    // actually share flushes.
    let clients: Vec<_> = seeds
        .iter()
        .map(|&s| {
            std::thread::spawn(move || {
                let body = format!(r#"{{"dataset":"tiny","episode_len":4,"seed":{s}}}"#);
                let (status, _, resp) = post_notebook(batched_addr, &body);
                assert_eq!(status, 200, "{resp}");
                resp
            })
        })
        .collect();
    let batched: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert_eq!(batched, serial, "batched responses diverged from serial");

    let snap = batched_telemetry.snapshot();
    let occupancy = snap
        .histogram("batch.occupancy")
        .expect("batched server records occupancy");
    assert!(occupancy.count > 0);
    let flushes = snap.counter("batch.flush.full").unwrap_or(0)
        + snap.counter("batch.flush.timeout").unwrap_or(0);
    assert_eq!(flushes, occupancy.count, "one occupancy sample per flush");
    assert!(
        snap.histogram("batch.queue_wait_us").is_some(),
        "queue-wait histogram missing"
    );
    serial_handle.shutdown();
    batched_handle.shutdown();
}

#[test]
fn idle_shutdown_is_prompt() {
    // The accept loop blocks in accept(2) with no polling; shutdown must
    // wake it with a self-connect rather than waiting for a client. If the
    // wake were lost, handle.shutdown() would join forever.
    let engine = Engine::new(tiny_bundle(), base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = Server::bind_with_telemetry(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_size: 4,
            ..Default::default()
        },
        engine,
        telemetry,
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    // Let the loop reach its blocking accept with zero traffic.
    std::thread::sleep(Duration::from_millis(50));
    let start = std::time::Instant::now();
    handle.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "idle shutdown took {:?}",
        start.elapsed()
    );
}
