//! Byzantine-client hardening tests over real sockets: every hostile
//! frame class is pinned to its exact status code and `server.http.*`
//! counter deltas, a slow-loris dribbler is cut off by the per-request
//! deadline (not one-byte-per-tick forever), and a client vanishing
//! mid-microbatch costs nobody else a byte of their response.

use atena_core::{train_policy_bundle, AtenaConfig, PolicyBundle, Strategy};
use atena_dataframe::{AttrRole, DataFrame};
use atena_server::{Engine, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn base() -> DataFrame {
    DataFrame::builder()
        .str(
            "proto",
            AttrRole::Categorical,
            (0..60).map(|i| Some(if i % 5 == 0 { "udp" } else { "tcp" })),
        )
        .int(
            "len",
            AttrRole::Numeric,
            (0..60).map(|i| Some((i * 13 % 31) as i64)),
        )
        .build()
        .unwrap()
}

fn tiny_bundle() -> PolicyBundle {
    let mut config = AtenaConfig::quick();
    config.train_steps = 300;
    config.probe_steps = 60;
    config.env.episode_len = 4;
    train_policy_bundle("tiny", base(), vec![], config, Strategy::Atena).unwrap()
}

/// Read one response off the stream; `None` if the server closed (or
/// reset) without completing one.
fn read_response(stream: &mut TcpStream) -> Option<(u16, String)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(parsed) = try_parse(&buf) {
            return Some(parsed);
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return try_parse(&buf),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

fn try_parse(buf: &[u8]) -> Option<(u16, String)> {
    let text = String::from_utf8_lossy(buf);
    let (head, rest) = text.split_once("\r\n\r\n")?;
    let status: u16 = head.split("\r\n").next()?.split(' ').nth(1)?.parse().ok()?;
    let len: usize = head
        .split("\r\n")
        .filter_map(|l| l.split_once(':'))
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    if rest.len() < len {
        return None;
    }
    Some((status, rest[..len].to_string()))
}

/// Write a raw frame (tolerating an answer-and-reset cutoff mid-write)
/// and read back whatever the server produced.
fn exchange(addr: SocketAddr, raw: &[u8]) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let _ = stream.write_all(raw);
    read_response(&mut stream)
}

fn spawn_server(
    config: ServerConfig,
) -> (
    atena_server::ServerHandle,
    SocketAddr,
    Arc<atena_telemetry::MetricsRegistry>,
) {
    let engine = Engine::new(tiny_bundle(), base()).unwrap();
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = Server::bind_with_telemetry(config, engine, Arc::clone(&telemetry)).unwrap();
    let addr = server.local_addr().unwrap();
    (server.spawn().unwrap(), addr, telemetry)
}

/// Every byzantine frame class produces its exact status code, counts
/// exactly one `server.http.parse_errors`, and never reaches routing
/// (`server.http.requests` unchanged) — then the server still answers a
/// healthy request on a fresh connection.
#[test]
fn byzantine_frames_exact_statuses_and_counter_deltas() {
    let (handle, addr, telemetry) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_size: 4,
        // A short deadline keeps the truncated-body case fast.
        request_timeout: Duration::from_millis(700),
        ..Default::default()
    });

    let oversized_header = {
        let mut raw = b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat(b'a').take(20 * 1024));
        raw.extend_from_slice(b"\r\n\r\n");
        raw
    };
    let header_flood = {
        let mut raw = b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n".to_vec();
        for i in 0..4000 {
            raw.extend_from_slice(format!("X-F{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        raw
    };
    // (name, frame, exact status) — `None` status means the server must
    // close without producing a response.
    let cases: Vec<(&str, Vec<u8>, Option<u16>)> = vec![
        (
            "malformed request line",
            b"NOT EVEN CLOSE TO HTTP\r\n\r\n".to_vec(),
            Some(400),
        ),
        ("oversized header", oversized_header, Some(431)),
        ("header flood", header_flood, Some(431)),
        (
            "oversized declared body",
            b"POST /v1/notebook HTTP/1.1\r\nHost: t\r\nContent-Length: 2147483648\r\n\r\n".to_vec(),
            Some(413),
        ),
        (
            "missing content-length",
            b"POST /v1/notebook HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".to_vec(),
            Some(411),
        ),
        (
            "chunked transfer encoding",
            b"POST /v1/notebook HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n\
              5\r\nhello\r\n0\r\n\r\n"
                .to_vec(),
            Some(501),
        ),
        (
            "truncated body then silence",
            b"POST /v1/notebook HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
              Content-Length: 100\r\n\r\n{\"data"
                .to_vec(),
            Some(408),
        ),
    ];

    for (name, raw, expected) in &cases {
        let before = telemetry.snapshot();
        let observed = exchange(addr, raw);
        let after = telemetry.snapshot();
        match expected {
            Some(code) => {
                let (status, body) = observed
                    .unwrap_or_else(|| panic!("{name}: server closed without the expected {code}"));
                assert_eq!(status, *code, "{name}: {body}");
            }
            None => assert!(observed.is_none(), "{name}: expected a bare close"),
        }
        // Exactly one parse error; the router was never reached.
        assert_eq!(
            after.counter("server.http.parse_errors").unwrap_or(0),
            before.counter("server.http.parse_errors").unwrap_or(0) + 1,
            "{name}: parse_errors delta"
        );
        assert_eq!(
            after.counter("server.http.requests").unwrap_or(0),
            before.counter("server.http.requests").unwrap_or(0),
            "{name}: hostile frame must not count as a routed request"
        );
    }

    // Pipelined garbage: the good request is served (routed, 200), the
    // garbage behind it is a parse error, then close.
    {
        let before = telemetry.snapshot();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n%%% garbage %%%\r\n\r\n")
            .unwrap();
        let (status, _) = read_response(&mut stream).expect("pipelined good request answered");
        assert_eq!(status, 200);
        let second = read_response(&mut stream);
        assert!(
            matches!(second, Some((400, _)) | None),
            "pipelined garbage must 400 or close, got {second:?}"
        );
        let after = telemetry.snapshot();
        assert_eq!(
            after.counter("server.http.requests").unwrap_or(0),
            before.counter("server.http.requests").unwrap_or(0) + 1,
            "exactly the good half of the pipeline is routed"
        );
        assert_eq!(
            after.counter("server.http.parse_errors").unwrap_or(0),
            before.counter("server.http.parse_errors").unwrap_or(0) + 1,
            "exactly the garbage half is a parse error"
        );
    }

    // The pool survived all of it: a healthy request decodes fine.
    let body = r#"{"dataset":"tiny","episode_len":3,"seed":1}"#;
    let raw = format!(
        "POST /v1/notebook HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, response) = exchange(addr, raw.as_bytes()).expect("healthy request answered");
    assert_eq!(status, 200, "{response}");
    assert_eq!(telemetry.snapshot().counter("server.pool.panics"), None);

    handle.shutdown();
}

/// A slow-loris client dribbling one header byte per tick resets the
/// kernel's per-read timer every time — only the per-request deadline
/// can stop it. The server must cut the connection within
/// `request_timeout` (+ grace), and keep serving everyone else while
/// the dribble is in flight.
#[test]
fn slow_loris_dribble_is_cut_at_the_request_deadline() {
    let request_timeout = Duration::from_millis(600);
    let (handle, addr, telemetry) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_size: 4,
        request_timeout,
        ..Default::default()
    });

    let started = Instant::now();
    let loris = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        stream
            .write_all(b"POST /v1/notebook HTTP/1.1\r\nHost: t\r\nX-Dribble: ")
            .unwrap();
        // One byte per 100 ms: each socket read is "fast", so only the
        // request deadline can end this.
        let mut cut = None;
        for _ in 0..200 {
            std::thread::sleep(Duration::from_millis(100));
            let write_dead = stream.write_all(b"a").is_err();
            let mut chunk = [0u8; 1024];
            let read_dead = match stream.read(&mut chunk) {
                Ok(0) => true,
                Ok(_) => false, // 408 bytes arriving
                Err(e) => !matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ),
            };
            if write_dead || read_dead {
                cut = Some(started.elapsed());
                break;
            }
        }
        cut
    });

    // While the dribble is in flight, healthy clients are unaffected.
    let body = r#"{"dataset":"tiny","episode_len":3,"seed":2}"#;
    let raw = format!(
        "POST /v1/notebook HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, _) = exchange(addr, raw.as_bytes()).expect("healthy request during dribble");
    assert_eq!(status, 200);

    let cut = loris
        .join()
        .unwrap()
        .expect("server never cut the dribbling client");
    assert!(
        cut <= request_timeout + Duration::from_secs(2),
        "slow loris held its worker for {cut:?} (deadline {request_timeout:?})"
    );
    assert!(
        telemetry
            .snapshot()
            .counter("server.http.parse_errors")
            .unwrap_or(0)
            >= 1,
        "the dribble must be counted as a parse error (timeout)"
    );
    handle.shutdown();
}

/// The N−1 regression: one of N concurrent clients on a *microbatched*
/// server vanishes mid-request/mid-flush. The surviving N−1 responses
/// must stay byte-identical to a serial (unbatched) server's, and the
/// batch queue must keep working afterwards — including for the
/// victim's own request when it is retried.
#[test]
fn follower_disconnect_mid_batch_leaves_other_responses_byte_identical() {
    let bundle = tiny_bundle();
    let spawn = |max_batch: usize| {
        let engine = Engine::new(bundle.clone(), base()).unwrap();
        let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
        let server = Server::bind_with_telemetry(
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 8,
                cache_size: 0, // every request decodes through the batcher
                max_batch,
                batch_window: Duration::from_millis(2),
                ..Default::default()
            },
            engine,
            Arc::clone(&telemetry),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        (server.spawn().unwrap(), addr, telemetry)
    };
    let (serial_handle, serial_addr, _) = spawn(1);
    let (batched_handle, batched_addr, batched_telemetry) = spawn(4);

    let request_for = |seed: u64| {
        let body = format!(r#"{{"dataset":"tiny","episode_len":6,"seed":{seed}}}"#);
        format!(
            "POST /v1/notebook HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    };

    // Reference bytes from the serial server.
    let seeds: Vec<u64> = (0..6).collect();
    let reference: Vec<String> = seeds
        .iter()
        .map(|&s| {
            let (status, body) = exchange(serial_addr, request_for(s).as_bytes()).unwrap();
            assert_eq!(status, 200, "{body}");
            body
        })
        .collect();

    // N concurrent clients against the batched server; the victim (seed
    // 2) sends its request and immediately vanishes, so its in-flight
    // decode steps die somewhere between queue and response write.
    let victim_seed = 2u64;
    let clients: Vec<_> = seeds
        .iter()
        .map(|&s| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(batched_addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(20)))
                    .unwrap();
                stream.write_all(request_for(s).as_bytes()).unwrap();
                if s == victim_seed {
                    drop(stream); // vanish mid-batch
                    return None;
                }
                Some(read_response(&mut stream).expect("survivor got a response"))
            })
        })
        .collect();
    let results: Vec<Option<(u16, String)>> =
        clients.into_iter().map(|c| c.join().unwrap()).collect();
    for (i, result) in results.iter().enumerate() {
        let seed = seeds[i];
        if seed == victim_seed {
            assert!(result.is_none());
            continue;
        }
        let (status, body) = result.as_ref().unwrap();
        assert_eq!(*status, 200, "seed {seed}: {body}");
        assert_eq!(
            body, &reference[i],
            "seed {seed}: survivor diverged from the serial server"
        );
    }

    // The queue is not wedged and the victim's request still decodes to
    // the same bytes when retried on a fresh connection.
    let (status, body) = exchange(batched_addr, request_for(victim_seed).as_bytes()).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body, reference[victim_seed as usize],
        "retried victim request diverged"
    );

    // The batcher actually ran (this test is about batched flushes), and
    // no worker died doing it.
    let snap = batched_telemetry.snapshot();
    let flushes = snap.counter("batch.flush.full").unwrap_or(0)
        + snap.counter("batch.flush.timeout").unwrap_or(0);
    assert!(flushes > 0, "decodes never went through the microbatcher");
    assert_eq!(snap.counter("server.pool.panics"), None);

    serial_handle.shutdown();
    batched_handle.shutdown();
}
