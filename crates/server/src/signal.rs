//! SIGTERM / SIGINT handling without external crates, built for a
//! *blocking* accept loop.
//!
//! A C `signal(2)` handler (via the libc already linked into every Rust
//! binary) flips a process-wide atomic flag and pokes a self-pipe — the
//! only two async-signal-safe actions it takes. A watcher thread blocks on
//! the pipe's read end and, when poked, wakes every registered listener
//! out of its blocking `accept` with a throwaway loopback connection. The
//! accept loop re-checks the flag after every accepted connection, so the
//! wake-up connection itself is never treated as a client.
//!
//! (`signal(2)` on glibc has BSD semantics: handlers are installed with
//! `SA_RESTART`, so a blocking `accept` would never observe `EINTR` — the
//! self-connect is the reliable wake-up, not interruption.)

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Set once a termination signal has been observed.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Bound addresses of accept loops currently running, so a shutdown can
/// connect to each and unblock it.
static LISTENERS: Mutex<Vec<SocketAddr>> = Mutex::new(Vec::new());

/// Track a running accept loop's bound address.
pub(crate) fn register_listener(addr: SocketAddr) {
    LISTENERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(addr);
}

/// Forget a stopped accept loop's address.
pub(crate) fn deregister_listener(addr: SocketAddr) {
    let mut listeners = LISTENERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(pos) = listeners.iter().position(|a| *a == addr) {
        listeners.swap_remove(pos);
    }
}

/// Unblock one listener with a throwaway connection. A wildcard bind
/// (`0.0.0.0` / `::`) is rewritten to loopback, which reaches the same
/// socket and is always connectable.
pub(crate) fn wake_addr(mut addr: SocketAddr) {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

/// Unblock every registered listener.
pub(crate) fn wake_listeners() {
    let addrs: Vec<SocketAddr> = LISTENERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    for addr in addrs {
        wake_addr(addr);
    }
}

#[cfg(unix)]
mod sys {
    use std::sync::atomic::{AtomicI32, Ordering};

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`; always available since Rust binaries link libc.
        pub fn signal(signum: i32, handler: usize) -> usize;
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// Write end of the self-pipe the handler pokes.
    static WAKE_FD: AtomicI32 = AtomicI32::new(-1);

    /// Async-signal-safe: an atomic store and a `write(2)` only. The
    /// non-signal-safe work (connecting to listeners) happens on the
    /// watcher thread.
    pub extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
        let fd = WAKE_FD.load(Ordering::SeqCst);
        if fd >= 0 {
            let byte = 1u8;
            // SAFETY: `write(2)` is async-signal-safe; `byte` outlives the
            // call and the fd is either valid or write fails harmlessly.
            unsafe {
                write(fd, &byte, 1);
            }
        }
    }

    /// Create the self-pipe and the thread that turns signal pokes into
    /// listener wake-ups. Called once; failure degrades to flag-only
    /// signaling (the next accepted connection still observes the drain).
    pub fn spawn_watcher() {
        let mut fds = [-1i32; 2];
        // SAFETY: `fds` is a valid 2-element buffer for pipe(2) to fill.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return;
        }
        let [read_fd, write_fd] = fds;
        WAKE_FD.store(write_fd, Ordering::SeqCst);
        let _ = std::thread::Builder::new()
            .name("atena-signal-watch".into())
            .spawn(move || loop {
                let mut buf = [0u8; 16];
                // SAFETY: `buf` is valid for `buf.len()` writable bytes and
                // `read_fd` is the read end of the pipe created above.
                let n = unsafe { read(read_fd, buf.as_mut_ptr(), buf.len()) };
                if n == 0 {
                    return; // write end closed: process is tearing down
                }
                if n > 0 {
                    super::wake_listeners();
                }
                // n < 0 (EINTR): retry the read.
            });
    }
}

/// Install handlers for SIGINT and SIGTERM that request a graceful drain
/// and wake any blocking accept loops. Idempotent; a no-op on non-Unix
/// targets.
pub fn install_handlers() {
    #[cfg(unix)]
    {
        static INIT: std::sync::Once = std::sync::Once::new();
        INIT.call_once(sys::spawn_watcher);
        // SAFETY: `on_signal` is async-signal-safe (atomic store + write(2))
        // and has the `extern "C" fn(i32)` ABI signal(2) expects.
        unsafe {
            let handler = sys::on_signal as extern "C" fn(i32) as usize;
            sys::signal(sys::SIGINT, handler);
            sys::signal(sys::SIGTERM, handler);
        }
    }
}

/// Whether a termination signal has been received.
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Request shutdown programmatically (tests, embedding): sets the flag and
/// unblocks every registered accept loop.
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    wake_listeners();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_request_flips_flag() {
        // Note: the flag is process-wide, so only assert the set direction.
        request_shutdown();
        assert!(shutdown_requested());
    }

    #[test]
    fn listener_registry_add_remove() {
        let addr: SocketAddr = "127.0.0.1:54321".parse().unwrap();
        register_listener(addr);
        assert!(LISTENERS.lock().unwrap().contains(&addr));
        deregister_listener(addr);
        assert!(!LISTENERS.lock().unwrap().contains(&addr));
        // Deregistering an unknown address is a no-op, not a panic.
        deregister_listener(addr);
    }

    #[test]
    fn wake_addr_rewrites_wildcard_and_tolerates_refusal() {
        // Nothing listens here; the wake must swallow the failure either
        // way, including for a wildcard IP.
        wake_addr("0.0.0.0:1".parse().unwrap());
        wake_addr("127.0.0.1:1".parse().unwrap());
    }
}
