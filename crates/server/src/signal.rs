//! SIGTERM / SIGINT handling without external crates: a C `signal(2)`
//! handler (via the libc already linked into every Rust binary) that flips a
//! process-wide atomic flag. The server's accept loop polls the flag and
//! drains when it is set.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once a termination signal has been observed.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`; always available since Rust binaries link libc.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Async-signal-safe: a relaxed atomic store only.
    pub extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Install handlers for SIGINT and SIGTERM that request a graceful drain.
/// Idempotent; a no-op on non-Unix targets.
pub fn install_handlers() {
    #[cfg(unix)]
    unsafe {
        let handler = sys::on_signal as extern "C" fn(i32) as usize;
        sys::signal(sys::SIGINT, handler);
        sys::signal(sys::SIGTERM, handler);
    }
}

/// Whether a termination signal has been received.
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Request shutdown programmatically (tests, embedding).
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_request_flips_flag() {
        // Note: the flag is process-wide; this test only ever sets it.
        assert!(!shutdown_requested() || true);
        request_shutdown();
        assert!(shutdown_requested());
    }
}
