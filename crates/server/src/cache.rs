//! The server's response cache reuses the LRU substrate that backs the
//! environment's content-addressed display cache (`atena_env::LruCache`),
//! so eviction semantics — recency order, overwrite-refresh, capacity 0
//! disabling — are identical across the two layers and locked down by one
//! test suite.

pub use atena_env::LruCache;
