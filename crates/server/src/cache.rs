//! A fixed-capacity LRU cache with O(1) lookup, insert, and eviction:
//! a `HashMap` from key to slot index plus an intrusive doubly-linked
//! recency list threaded through a slab of entries. No allocation churn on
//! steady state — evicted slots are reused in place.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Least-recently-used cache with a hard entry capacity.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create with room for `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.detach(slot);
        self.attach_front(slot);
        Some(&self.slab[slot].value)
    }

    /// Insert (or overwrite) `key`, evicting the least recently used entry
    /// when full. Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return None;
        }
        if self.map.len() < self.capacity {
            let slot = self.slab.len();
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, slot);
            self.attach_front(slot);
            return None;
        }
        // Full: reuse the LRU slot in place.
        let slot = self.tail;
        self.detach(slot);
        let entry = &mut self.slab[slot];
        let old_key = std::mem::replace(&mut entry.key, key.clone());
        let old_value = std::mem::replace(&mut entry.value, value);
        self.map.remove(&old_key);
        self.map.insert(key, slot);
        self.attach_front(slot);
        Some((old_key, old_value))
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.get(&"a"); // refresh a; b is now LRU
        assert_eq!(c.insert("c", 3), Some(("b", 2)));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_refreshes_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.insert("a", 10), None); // overwrite, refresh
        assert_eq!(c.insert("c", 3), Some(("b", 2))); // b was LRU
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    fn capacity_one_and_zero() {
        let mut one = LruCache::new(1);
        assert_eq!(one.insert("a", 1), None);
        assert_eq!(one.insert("b", 2), Some(("a", 1)));
        assert_eq!(one.get(&"b"), Some(&2));

        let mut zero: LruCache<&str, i32> = LruCache::new(0);
        assert_eq!(zero.insert("a", 1), None);
        assert_eq!(zero.get(&"a"), None);
        assert!(zero.is_empty());
    }

    #[test]
    fn long_churn_keeps_exactly_capacity() {
        let mut c = LruCache::new(8);
        for i in 0..1000usize {
            // With strictly sequential inserts the eviction order is FIFO.
            let evicted = c.insert(i, i * 2);
            if i >= 8 {
                assert_eq!(evicted, Some((i - 8, (i - 8) * 2)));
            } else {
                assert_eq!(evicted, None);
            }
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.capacity(), 8);
        // Exactly the last 8 keys survive.
        for i in 992..1000 {
            assert_eq!(c.get(&i), Some(&(i * 2)));
        }
        assert_eq!(c.get(&991), None);
    }
}
