//! A fixed-size worker thread pool over `std::sync::mpsc`, in the classic
//! shared-receiver shape: the acceptor sends boxed jobs down a channel; each
//! worker locks the receiver, pulls one job, and runs it. Dropping the pool
//! closes the channel, lets in-flight jobs finish, and joins every worker —
//! the drain half of graceful shutdown.
//!
//! Workers are panic-isolated: a job that panics is caught with
//! `catch_unwind`, reported through the optional panic hook, and the worker
//! returns to the queue — so a hostile request that trips a latent panic
//! costs one response, not one pool thread for the rest of the process.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Called (with no job context) every time a pooled job panics.
pub type PanicHook = Arc<dyn Fn() + Send + Sync>;

/// Fixed pool of named worker threads.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size` workers (clamped to at least 1).
    pub fn new(size: usize) -> Self {
        Self::with_panic_hook(size, None)
    }

    /// [`ThreadPool::new`] with a hook invoked whenever a job panics (the
    /// server counts these as `server.pool.panics`). The panicking job's
    /// payload is swallowed after the hook runs; the worker keeps serving.
    pub fn with_panic_hook(size: usize, hook: Option<PanicHook>) -> Self {
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size.max(1))
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                let hook = hook.clone();
                std::thread::Builder::new()
                    .name(format!("atena-server-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while pulling the next job.
                        let job = match receiver.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return, // a worker panicked while holding the lock
                        };
                        match job {
                            Ok(job) => {
                                // The job owns all its captured state, so
                                // nothing observable survives an unwind in a
                                // broken intermediate state; shared locks in
                                // this codebase recover poison explicitly.
                                if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                                    if let Some(hook) = &hook {
                                        hook();
                                    }
                                }
                            }
                            Err(_) => return, // channel closed: drain complete
                        }
                    })
                    // atena-lint: allow(panic-path) — pool construction at startup, before any request is accepted
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queue a job. Returns `false` if the pool is already shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.sender {
            Some(s) => s.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Close the queue and join every worker, letting queued and in-flight
    /// jobs complete. Called automatically on drop.
    pub fn join(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drop(pool); // join waits for every job
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_drains_in_flight_jobs() {
        let mut pool = ThreadPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(10));
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 6);
        // After join the pool refuses new work instead of hanging.
        assert!(!pool.execute(|| {}));
    }

    #[test]
    fn panicking_job_does_not_shrink_the_pool() {
        let panics = Arc::new(AtomicUsize::new(0));
        let hook_counter = Arc::clone(&panics);
        let pool = ThreadPool::with_panic_hook(
            2,
            Some(Arc::new(move || {
                hook_counter.fetch_add(1, Ordering::Relaxed);
            })),
        );
        let done = Arc::new(AtomicUsize::new(0));
        // Interleave panicking and healthy jobs: with only 2 workers, every
        // worker is guaranteed to survive at least one panic for all the
        // healthy jobs to complete.
        for i in 0..20 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                if i % 2 == 0 {
                    panic!("injected fault");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 10, "healthy jobs all ran");
        assert_eq!(panics.load(Ordering::Relaxed), 10, "every panic counted");
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        pool.execute(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }
}
