//! A minimal, strict HTTP/1.1 request parser and response writer built on
//! `std::io` — no external dependencies.
//!
//! The parser is incremental: it owns a byte buffer, reads from any
//! [`Read`] in chunks, and yields one request at a time. Bytes past the end
//! of a request stay buffered, which is exactly what pipelined keep-alive
//! clients need. Limits (header size, body size) are enforced *while*
//! reading, so an oversized request is rejected without buffering it all.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Floor for re-armed socket timeouts: `set_read_timeout(Some(ZERO))` is an
/// error (and a zero timeout would mean "block forever" to setsockopt), so
/// an almost-expired deadline still arms a small positive timeout.
const MIN_IO_TIMEOUT: Duration = Duration::from_millis(1);

/// Default cap on a request body, in bytes (overridable per connection).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), e.g. `/v1/notebook`.
    pub target: String,
    /// Protocol version string, e.g. `HTTP/1.1`.
    pub version: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lname = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lname)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open. HTTP/1.1
    /// defaults to keep-alive unless `Connection: close` is present.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }

    /// Path component of the target (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Query string of the target (empty when absent, `?` stripped).
    pub fn query(&self) -> &str {
        self.target.split_once('?').map(|(_, q)| q).unwrap_or("")
    }

    /// Whether the query string contains the exact `key=value` pair.
    pub fn query_has(&self, key: &str, value: &str) -> bool {
        self.query()
            .split('&')
            .any(|kv| kv.split_once('=') == Some((key, value)))
    }

    /// First value for `key` in the query string (raw, not percent-decoded).
    pub fn query_get(&self, key: &str) -> Option<&str> {
        self.query().split('&').find_map(|kv| {
            kv.split_once('=')
                .filter(|(k, _)| *k == key)
                .map(|(_, v)| v)
        })
    }
}

/// Parse failures, each mapped to the HTTP status the server should answer
/// with before closing the connection.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Clean EOF before any request bytes — the peer just closed.
    Closed,
    /// Malformed request line or headers → 400.
    BadRequest(String),
    /// Head grew past [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// Declared body exceeds the configured cap → 413.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
    },
    /// Body-bearing method without a `Content-Length` header → 411.
    LengthRequired,
    /// `Transfer-Encoding: chunked` request → 501. The framing is not
    /// implemented, so the connection must close after the response —
    /// the body boundary cannot be found.
    ChunkedUnsupported,
    /// Socket read timed out mid-request → 408.
    Timeout,
    /// EOF mid-request or another transport failure — nothing to send.
    Io(ErrorKind),
}

impl ParseError {
    /// The HTTP status code to answer with, if an answer is possible.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            ParseError::Closed | ParseError::Io(_) => None,
            ParseError::BadRequest(_) => Some((400, "Bad Request")),
            ParseError::HeadTooLarge => Some((431, "Request Header Fields Too Large")),
            ParseError::BodyTooLarge { .. } => Some((413, "Payload Too Large")),
            ParseError::LengthRequired => Some((411, "Length Required")),
            ParseError::ChunkedUnsupported => Some((501, "Not Implemented")),
            ParseError::Timeout => Some((408, "Request Timeout")),
        }
    }
}

/// Incremental request reader over any [`Read`] transport.
pub struct RequestReader<R> {
    transport: R,
    buffer: Vec<u8>,
    max_body: usize,
    route_caps: Vec<(String, usize)>,
    /// Total wall-clock budget for reading one request, re-armed at the
    /// start of every [`RequestReader::read_request`] call. `None` leaves
    /// only the transport's own per-call timeout in force — which a
    /// slow-loris client defeats by dribbling one byte per tick, resetting
    /// the socket timer on every read.
    read_budget: Option<Duration>,
    /// Deadline for the request currently being read.
    deadline: Option<Instant>,
    /// Hook that re-arms the transport's per-call timeout to the remaining
    /// budget before each read, so even a fully silent peer cannot block
    /// past the deadline.
    rearm: Option<Box<dyn Fn(Duration) + Send>>,
}

impl<R: Read> RequestReader<R> {
    /// Wrap a transport with the default body cap.
    pub fn new(transport: R) -> Self {
        Self::with_max_body(transport, DEFAULT_MAX_BODY_BYTES)
    }

    /// Wrap a transport with an explicit body cap.
    pub fn with_max_body(transport: R, max_body: usize) -> Self {
        Self {
            transport,
            buffer: Vec::new(),
            max_body,
            route_caps: Vec::new(),
            read_budget: None,
            deadline: None,
            rearm: None,
        }
    }

    /// Bound every [`RequestReader::read_request`] call to `budget` of
    /// total wall-clock, independent of how the peer paces its bytes. The
    /// `rearm` hook is called with the remaining budget before each
    /// transport read and should shrink the transport's per-call timeout
    /// accordingly (for sockets: `set_read_timeout`). Once the deadline
    /// passes, the reader returns [`ParseError::Timeout`] mid-request or
    /// [`ParseError::Closed`] for an idle keep-alive connection.
    pub fn with_read_budget(
        mut self,
        budget: Duration,
        rearm: impl Fn(Duration) + Send + 'static,
    ) -> Self {
        self.read_budget = Some(budget);
        self.rearm = Some(Box::new(rearm));
        self
    }

    /// Give one exact path its own body cap (e.g. a larger allowance for
    /// the dataset-upload route, sized to the registry's per-upload byte
    /// cap). Like the default cap, it is checked against the declared
    /// `Content-Length` *before* any body byte is buffered, so a huge
    /// declared upload is refused without allocation.
    pub fn with_route_cap(mut self, path: &str, max_body: usize) -> Self {
        self.route_caps.push((path.to_string(), max_body));
        self
    }

    fn cap_for(&self, target: &str) -> usize {
        let path = target.split('?').next().unwrap_or(target);
        self.route_caps
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, cap)| *cap)
            .unwrap_or(self.max_body)
    }

    /// Read one full request. Leftover bytes (pipelined requests) stay
    /// buffered for the next call.
    pub fn read_request(&mut self) -> Result<Request, ParseError> {
        // Each request gets a fresh deadline. The idle keep-alive wait for
        // the next request shares the same budget, which preserves the
        // previous idle-timeout behavior (an idle peer is closed after one
        // budget) while also bounding a dribbled request.
        self.deadline = self.read_budget.map(|b| Instant::now() + b);
        let head_end = self.fill_until_head_end()?;
        let head = self.buffer[..head_end].to_vec();
        let (method, target, version, headers) = parse_head(&head)?;

        if let Some(te) = header_value(&headers, "transfer-encoding") {
            if te.to_ascii_lowercase().contains("chunked") {
                // Chunked framing is not implemented: reject up front and
                // drop the buffer — without parsing the framing there is no
                // way to find the body boundary, so the connection closes.
                self.buffer.clear();
                return Err(ParseError::ChunkedUnsupported);
            }
        }

        let content_length = match header_value(&headers, "content-length") {
            Some(raw) => Some(
                raw.trim()
                    .parse::<usize>()
                    .map_err(|_| ParseError::BadRequest("unparseable Content-Length".into()))?,
            ),
            None => None,
        };
        let body_len = match content_length {
            Some(n) => n,
            // Body-bearing methods must declare their length; we do not
            // implement chunked transfer encoding.
            None if method == "POST" || method == "PUT" || method == "PATCH" => {
                self.buffer.drain(..head_end + 4);
                return Err(ParseError::LengthRequired);
            }
            None => 0,
        };
        if body_len > self.cap_for(&target) {
            // Do not read (or keep) the oversized body.
            self.buffer.clear();
            return Err(ParseError::BodyTooLarge { declared: body_len });
        }

        let body_start = head_end + 4;
        self.fill_until(body_start + body_len)?;
        let body = self.buffer[body_start..body_start + body_len].to_vec();
        self.buffer.drain(..body_start + body_len);
        Ok(Request {
            method,
            target,
            version,
            headers,
            body,
        })
    }

    /// Grow the buffer until it contains the `\r\n\r\n` head terminator;
    /// returns the terminator's offset.
    fn fill_until_head_end(&mut self) -> Result<usize, ParseError> {
        let mut scanned: usize = 0;
        loop {
            if let Some(pos) = find_head_end(&self.buffer[scanned.saturating_sub(3)..])
                .map(|p| p + scanned.saturating_sub(3))
            {
                return Ok(pos);
            }
            scanned = self.buffer.len();
            // A valid head must terminate within the first MAX_HEAD_BYTES;
            // past that, no later read can make this request acceptable.
            if scanned >= MAX_HEAD_BYTES {
                return Err(ParseError::HeadTooLarge);
            }
            let at_start = self.buffer.is_empty();
            self.fill_some(at_start)?;
        }
    }

    /// Grow the buffer to at least `target` bytes.
    fn fill_until(&mut self, target: usize) -> Result<(), ParseError> {
        while self.buffer.len() < target {
            self.fill_some(false)?;
        }
        Ok(())
    }

    /// One transport read. `clean_eof_ok` distinguishes "peer closed between
    /// requests" (fine) from "peer closed mid-request" (an error).
    fn fill_some(&mut self, clean_eof_ok: bool) -> Result<(), ParseError> {
        // Per-request deadline check before every transport read: a peer
        // that dribbles bytes keeps each *read* fast but cannot stretch
        // the *request* past the budget. The rearm hook shrinks the
        // transport timeout to the remainder so a peer that goes silent
        // is also cut off at the same deadline, not a full timeout later.
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(if clean_eof_ok && self.buffer.is_empty() {
                    ParseError::Closed
                } else {
                    ParseError::Timeout
                });
            }
            if let Some(rearm) = &self.rearm {
                rearm((deadline - now).max(MIN_IO_TIMEOUT));
            }
        }
        let mut chunk = [0u8; 4096];
        loop {
            match self.transport.read(&mut chunk) {
                Ok(0) => {
                    return Err(if clean_eof_ok && self.buffer.is_empty() {
                        ParseError::Closed
                    } else {
                        ParseError::Io(ErrorKind::UnexpectedEof)
                    });
                }
                Ok(n) => {
                    self.buffer.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(if clean_eof_ok && self.buffer.is_empty() {
                        // Idle keep-alive connection timed out waiting for the
                        // next request: treat as a clean close.
                        ParseError::Closed
                    } else {
                        ParseError::Timeout
                    });
                }
                Err(e) => return Err(ParseError::Io(e.kind())),
            }
        }
    }
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

type Head = (String, String, String, Vec<(String, String)>);

fn parse_head(head: &[u8]) -> Result<Head, ParseError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| ParseError::BadRequest("head is not valid UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ParseError::BadRequest("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => {
            (m.to_string(), t.to_string(), v.to_string())
        }
        _ => {
            return Err(ParseError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::BadRequest(format!("malformed header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadRequest(format!(
                "malformed header name {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method, target, version, headers))
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Extra headers beyond the auto-added ones.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            reason,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into(),
        }
    }

    /// A 200 JSON response.
    pub fn ok_json(body: impl Into<Vec<u8>>) -> Self {
        Self::json(200, "OK", body)
    }

    /// A 200 response with an explicit content type (e.g. the Prometheus
    /// text exposition's `text/plain; version=0.0.4`).
    pub fn ok_text(content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            reason: "OK",
            headers: vec![("Content-Type".into(), content_type.into())],
            body: body.into(),
        }
    }

    /// A JSON error response `{"error": message}`.
    pub fn error(status: u16, reason: &'static str, message: &str) -> Self {
        let mut body = String::with_capacity(message.len() + 16);
        body.push_str("{\"error\":");
        push_json_string(&mut body, message);
        body.push('}');
        Self::json(status, reason, body.into_bytes())
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialize the response (with `Content-Length` and `Connection`
    /// headers) to a writer.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason);
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// A [`Write`] adapter over a [`TcpStream`] that bounds the *total*
/// wall-clock a response write may take. `set_write_timeout` alone is
/// per-call: a byzantine client that drains the response one byte per tick
/// keeps every individual `write` fast while holding the worker
/// indefinitely. Before each write this adapter checks an absolute
/// deadline and shrinks the socket's write timeout to the remainder, so
/// the worker is released at the deadline no matter how the peer paces
/// its reads. A missed deadline surfaces as [`ErrorKind::TimedOut`]; the
/// connection is then closed (partial responses are unambiguous because
/// every response carries `Content-Length`).
pub struct DeadlineWriter<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl<'a> DeadlineWriter<'a> {
    /// Bound writes on `stream` to complete before `deadline`.
    pub fn new(stream: &'a TcpStream, deadline: Instant) -> Self {
        Self { stream, deadline }
    }

    fn arm(&self) -> std::io::Result<()> {
        let now = Instant::now();
        if now >= self.deadline {
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                "response write deadline exceeded",
            ));
        }
        self.stream
            .set_write_timeout(Some((self.deadline - now).max(MIN_IO_TIMEOUT)))
    }
}

impl Write for DeadlineWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // `write_all` loops through here on every partial write, so the
        // deadline is re-checked even inside one large body.
        self.arm()?;
        (&mut &*self.stream).write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.arm()?;
        (&mut &*self.stream).flush()
    }
}

/// Append a JSON string literal (quoted, escaped) to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A transport that yields its script in fixed-size chunks, to exercise
    /// partial reads.
    struct Chunked {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Chunked {
        fn new(data: impl Into<Vec<u8>>, chunk: usize) -> Self {
            Self {
                data: data.into(),
                pos: 0,
                chunk,
            }
        }
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    const POST: &str = "POST /v1/notebook HTTP/1.1\r\nHost: x\r\nContent-Length: 18\r\n\r\n{\"dataset\":\"c1\"}\r\n";

    #[test]
    fn parses_simple_get() {
        let mut r = RequestReader::new(Chunked::new(
            "GET /v1/healthz HTTP/1.1\r\nHost: a\r\n\r\n",
            4096,
        ));
        let req = r.read_request().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/v1/healthz");
        assert_eq!(req.header("host"), Some("a"));
        assert_eq!(req.header("HOST"), Some("a"));
        assert!(req.keep_alive());
        assert!(req.body.is_empty());
        assert_eq!(req.query(), "");
    }

    #[test]
    fn query_string_is_split_from_path() {
        let mut r = RequestReader::new(Chunked::new(
            "GET /v1/metrics?format=prometheus&x=1 HTTP/1.1\r\n\r\n",
            4096,
        ));
        let req = r.read_request().unwrap();
        assert_eq!(req.path(), "/v1/metrics");
        assert_eq!(req.query(), "format=prometheus&x=1");
        assert!(req.query_has("format", "prometheus"));
        assert!(req.query_has("x", "1"));
        assert!(!req.query_has("format", "json"));
        assert!(!req.query_has("prometheus", ""));
    }

    #[test]
    fn parses_post_with_body_across_partial_reads() {
        // 1-byte reads: every boundary is exercised.
        for chunk in [1, 2, 3, 7, 4096] {
            let mut r = RequestReader::new(Chunked::new(POST, chunk));
            let req = r.read_request().unwrap();
            assert_eq!(req.method, "POST", "chunk {chunk}");
            assert_eq!(req.body, b"{\"dataset\":\"c1\"}\r\n", "chunk {chunk}");
        }
    }

    #[test]
    fn pipelined_keep_alive_requests() {
        let two = format!("{POST}GET /v1/metrics HTTP/1.1\r\n\r\n");
        for chunk in [1, 5, 4096] {
            let mut r = RequestReader::new(Chunked::new(two.clone(), chunk));
            let first = r.read_request().unwrap();
            assert_eq!(first.path(), "/v1/notebook");
            let second = r.read_request().unwrap();
            assert_eq!(second.path(), "/v1/metrics");
            assert_eq!(r.read_request().unwrap_err(), ParseError::Closed);
        }
    }

    #[test]
    fn missing_content_length_on_post_is_411() {
        let mut r = RequestReader::new(Chunked::new(
            "POST /v1/notebook HTTP/1.1\r\nHost: x\r\n\r\n",
            4096,
        ));
        let err = r.read_request().unwrap_err();
        assert_eq!(err, ParseError::LengthRequired);
        assert_eq!(err.status(), Some((411, "Length Required")));
    }

    #[test]
    fn get_without_content_length_has_empty_body() {
        let mut r = RequestReader::new(Chunked::new("GET / HTTP/1.0\r\n\r\n", 4096));
        let req = r.read_request().unwrap();
        assert!(req.body.is_empty());
        // HTTP/1.0 defaults to close.
        assert!(!req.keep_alive());
    }

    #[test]
    fn oversized_body_is_413_without_buffering() {
        let mut r = RequestReader::with_max_body(
            Chunked::new("POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", 4096),
            1024,
        );
        assert_eq!(
            r.read_request().unwrap_err(),
            ParseError::BodyTooLarge { declared: 999999 }
        );
    }

    #[test]
    fn chunked_transfer_encoding_is_501() {
        // Never hang or misparse: the request is rejected from the head
        // alone, before any chunk framing is read.
        let mut r = RequestReader::new(Chunked::new(
            "POST /v1/datasets HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
            4096,
        ));
        let err = r.read_request().unwrap_err();
        assert_eq!(err, ParseError::ChunkedUnsupported);
        assert_eq!(err.status(), Some((501, "Not Implemented")));
        // Case-insensitive, and also when combined with other codings.
        let mut r = RequestReader::new(Chunked::new(
            "POST /x HTTP/1.1\r\nTransfer-Encoding: gzip, Chunked\r\nContent-Length: 3\r\n\r\nabc",
            4096,
        ));
        assert_eq!(
            r.read_request().unwrap_err(),
            ParseError::ChunkedUnsupported
        );
    }

    #[test]
    fn route_cap_overrides_default_for_exact_path() {
        let upload = "POST /v1/datasets HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
        let body = "x".repeat(2048);
        // Default cap would refuse this body; the route cap admits it.
        let mut r =
            RequestReader::with_max_body(Chunked::new(format!("{upload}{body}"), 4096), 1024)
                .with_route_cap("/v1/datasets", 4096);
        let req = r.read_request().unwrap();
        assert_eq!(req.body.len(), 2048);
        // The route cap also tightens: a huge declared Content-Length on
        // the capped route is refused without buffering.
        let mut r = RequestReader::with_max_body(
            Chunked::new(
                "POST /v1/datasets?name=big HTTP/1.1\r\nContent-Length: 2147483648\r\n\r\n",
                4096,
            ),
            1 << 30,
        )
        .with_route_cap("/v1/datasets", 4096);
        assert_eq!(
            r.read_request().unwrap_err(),
            ParseError::BodyTooLarge {
                declared: 2147483648
            }
        );
        // Other routes keep the default cap.
        let mut r = RequestReader::with_max_body(
            Chunked::new(
                "POST /v1/notebook HTTP/1.1\r\nContent-Length: 2048\r\n\r\n",
                4096,
            ),
            1024,
        )
        .with_route_cap("/v1/datasets", 4096);
        assert!(matches!(
            r.read_request().unwrap_err(),
            ParseError::BodyTooLarge { .. }
        ));
    }

    #[test]
    fn oversized_head_is_431() {
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        let mut r = RequestReader::new(Chunked::new(huge, 4096));
        assert_eq!(r.read_request().unwrap_err(), ParseError::HeadTooLarge);
    }

    #[test]
    fn malformed_requests_are_400() {
        for bad in [
            "NOPE\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x HTTP/2.0\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
        ] {
            let mut r = RequestReader::new(Chunked::new(bad, 4096));
            let err = r.read_request().unwrap_err();
            assert!(
                matches!(err, ParseError::BadRequest(_)),
                "{bad:?} gave {err:?}"
            );
            assert_eq!(err.status().unwrap().0, 400);
        }
    }

    #[test]
    fn eof_mid_request_is_io_error() {
        let mut r = RequestReader::new(Chunked::new("GET /x HTTP/1.1\r\nHo", 4096));
        assert!(matches!(r.read_request().unwrap_err(), ParseError::Io(_)));
        // EOF mid-body, too.
        let mut r = RequestReader::new(Chunked::new(
            "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
            4096,
        ));
        assert!(matches!(r.read_request().unwrap_err(), ParseError::Io(_)));
    }

    #[test]
    fn clean_eof_before_any_bytes_is_closed() {
        let mut r = RequestReader::new(Chunked::new("", 4096));
        assert_eq!(r.read_request().unwrap_err(), ParseError::Closed);
    }

    #[test]
    fn connection_close_header_overrides_keep_alive() {
        let mut r = RequestReader::new(Chunked::new(
            "GET / HTTP/1.1\r\nConnection: close\r\n\r\n",
            4096,
        ));
        assert!(!r.read_request().unwrap().keep_alive());
        let mut r = RequestReader::new(Chunked::new(
            "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
            4096,
        ));
        assert!(r.read_request().unwrap().keep_alive());
    }

    /// A transport that yields one byte per read, sleeping `delay` first —
    /// a cooperative slow-loris.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        delay: Duration,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            std::thread::sleep(self.delay);
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn read_budget_cuts_off_dribbled_request() {
        // 300 bytes at 5 ms/byte would take 1.5 s; the 40 ms budget must
        // cut the request off long before the head completes, regardless
        // of the fact that every individual read succeeds quickly.
        let head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(280));
        let mut r = RequestReader::new(Dribble {
            data: head.into_bytes(),
            pos: 0,
            delay: Duration::from_millis(5),
        })
        .with_read_budget(Duration::from_millis(40), |_| {});
        let start = Instant::now();
        assert_eq!(r.read_request().unwrap_err(), ParseError::Timeout);
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "budget must bound the dribble, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn read_budget_rearms_transport_with_shrinking_remainder() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut r = RequestReader::new(Dribble {
            data: b"GET /v1/healthz HTTP/1.1\r\n\r\n".to_vec(),
            pos: 0,
            delay: Duration::from_millis(2),
        })
        .with_read_budget(Duration::from_secs(5), move |remaining| {
            sink.lock().unwrap().push(remaining);
        });
        r.read_request().unwrap();
        let seen = seen.lock().unwrap();
        assert!(seen.len() >= 2, "hook called before each read");
        assert!(
            seen.windows(2).all(|w| w[1] <= w[0]),
            "remaining budget must shrink monotonically: {seen:?}"
        );
        assert!(seen.iter().all(|d| *d >= MIN_IO_TIMEOUT));
    }

    #[test]
    fn read_budget_does_not_break_fast_requests() {
        let two = format!("{POST}GET /v1/metrics HTTP/1.1\r\n\r\n");
        let mut r = RequestReader::new(Chunked::new(two, 3))
            .with_read_budget(Duration::from_secs(5), |_| {});
        assert_eq!(r.read_request().unwrap().path(), "/v1/notebook");
        assert_eq!(r.read_request().unwrap().path(), "/v1/metrics");
        assert_eq!(r.read_request().unwrap_err(), ParseError::Closed);
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut out = Vec::new();
        Response::ok_json("{\"ok\":true}")
            .with_header("X-Atena-Cache", "hit")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("X-Atena-Cache: hit\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_response_escapes_message() {
        let r = Response::error(400, "Bad Request", "bad \"json\"\n");
        assert_eq!(
            String::from_utf8(r.body).unwrap(),
            "{\"error\":\"bad \\\"json\\\"\\n\"}"
        );
    }
}
