//! The inference engine: a [`PolicyBundle`] loaded once at startup, shared
//! read-only across worker threads, decoding notebooks greedily (near-zero
//! Boltzmann temperature) from the trained policy.
//!
//! The engine serves its bundle's baked-in dataset by default, but any
//! frame with a policy-compatible shape (same observation layout, which is
//! a pure function of the column count) can be decoded via
//! [`Engine::decode_with_frame`] — that is how registry-uploaded datasets
//! are served. The display cache is keyed by dataset fingerprint, so
//! serving many datasets through one engine composes soundly with the
//! determinism contract.

use atena_batch::{MicroBatcher, MicrobatchConfig};
use atena_core::{Notebook, NotebookSummary, PolicyBundle};
use atena_dataframe::DataFrame;
use atena_env::{DisplayCache, EdaEnv};
use atena_nn::Tensor;
use atena_rl::{Policy, PolicyRow, TwofoldPolicy};
use atena_telemetry::{MetricsRegistry, SpanGuard};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;

/// Near-deterministic decode temperature: low enough that the argmax of
/// every softmax segment is selected with overwhelming probability.
const DECODE_TEMPERATURE: f32 = 1e-3;

/// Capacity of the engine's display cache. Requests against one bundle
/// mostly share a handful of datasets, and greedy decodes at nearby seeds
/// replay mostly the same operation paths, so cross-request reuse is high;
/// sized generously because entries are `Arc`-backed views, not copies of
/// the column data. Entries are keyed by dataset fingerprint, so multiple
/// registry datasets share the cache without interference.
const DISPLAY_CACHE_CAPACITY: usize = 4096;

/// Ceiling on per-request episode length, to bound worst-case work.
pub const MAX_EPISODE_LEN: usize = 64;

/// A validated notebook-generation request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NotebookRequest {
    /// Dataset label: the bundle's dataset id, or a registry `ds-…` id.
    pub dataset: String,
    /// Content fingerprint of the frame being decoded. Part of the cache
    /// key so a re-uploaded (different) dataset under a recycled label can
    /// never alias a stale cached response.
    pub fingerprint: u64,
    /// Operations to decode (defaults to the bundle's training value).
    pub episode_len: usize,
    /// Environment seed for term sampling (default 0). Responses are
    /// deterministic per seed.
    pub seed: u64,
}

/// What the engine serves for one request.
#[derive(Debug, Clone, Serialize)]
pub struct NotebookResponse {
    /// Dataset id echoed back.
    pub dataset: String,
    /// Episode length used.
    pub episode_len: usize,
    /// Seed used.
    pub seed: u64,
    /// Strategy name of the loaded policy.
    pub strategy: String,
    /// The decoded notebook.
    pub notebook: NotebookSummary,
}

/// Engine failures, mapped by the server onto HTTP statuses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Requested dataset is not the one the policy was trained on → 404.
    UnknownDataset {
        /// The dataset the request named.
        requested: String,
        /// The dataset the engine serves.
        served: String,
    },
    /// The dataset exists but its shape is incompatible with the loaded
    /// policy's observation layout → 409.
    IncompatibleDataset(String),
    /// Request parameters out of range → 400.
    InvalidRequest(String),
    /// An invariant the engine relies on failed mid-decode → 500. Returned
    /// instead of panicking so one bad decode cannot poison a pool worker.
    Internal(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownDataset { requested, served } => write!(
                f,
                "dataset {requested:?} is not served; this server's policy was trained on {served:?}"
            ),
            EngineError::IncompatibleDataset(m) => write!(f, "incompatible dataset: {m}"),
            EngineError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            EngineError::Internal(m) => write!(f, "internal decode error: {m}"),
        }
    }
}

/// The shared inference state: an immutable policy plus its dataset.
pub struct Engine {
    bundle: PolicyBundle,
    policy: Arc<TwofoldPolicy>,
    frame: Arc<DataFrame>,
    display_cache: Arc<DisplayCache>,
    /// Microbatch queue coalescing concurrent decode steps into one
    /// `[B, obs_dim]` forward. `None` when batching is off (`max_batch`
    /// ≤ 1). Batching is execution-only: responses are bit-identical
    /// because each request samples its own RNG from its slot's
    /// [`PolicyRow`], exactly as the serial act path would.
    batcher: Option<Arc<MicroBatcher<PolicyRow>>>,
}

impl Engine {
    /// Build from a loaded bundle and the dataset frame it was trained on.
    ///
    /// Runs one probe forward over a zero observation so a bundle whose
    /// stored weights are internally inconsistent (layer widths that don't
    /// chain) is rejected here with a typed error instead of panicking a
    /// worker thread on the first request.
    pub fn new(bundle: PolicyBundle, frame: DataFrame) -> Result<Self, String> {
        let policy = bundle
            .build_policy()
            .map_err(|e| format!("cannot rebuild policy from bundle: {e}"))?;
        bundle.frame_compatible(&frame)?;
        policy
            .forward_rows(&Tensor::zeros(1, policy.obs_dim()), DECODE_TEMPERATURE)
            .map_err(|e| format!("bundle weights are inconsistent: {e}"))?;
        Ok(Self {
            bundle,
            policy: Arc::new(policy),
            frame: Arc::new(frame),
            display_cache: Arc::new(DisplayCache::new(DISPLAY_CACHE_CAPACITY)),
            batcher: None,
        })
    }

    /// Enable microbatched decoding: concurrent requests' per-step
    /// forwards are coalesced into one batched pass (up to
    /// `config.max_batch` rows, waiting at most `config.window` for
    /// company). `max_batch` ≤ 1 leaves the serial path in place.
    pub fn with_microbatch(mut self, config: MicrobatchConfig) -> Self {
        if config.max_batch <= 1 {
            self.batcher = None;
            return self;
        }
        let policy = Arc::clone(&self.policy);
        let obs_dim = policy.obs_dim();
        self.batcher = Some(Arc::new(MicroBatcher::new(obs_dim, config, move |batch| {
            // The load-time probe pinned the weight shapes and the queue
            // asserts row widths, so this forward cannot fail. The closure's
            // signature leaves no error channel, and the probe makes this
            // genuinely unreachable rather than a request-dependent panic.
            policy
                .forward_rows(batch, DECODE_TEMPERATURE)
                // atena-lint: allow(panic-path) — shape pinned by the Engine::new probe
                .unwrap_or_else(|e| panic!("probed policy rejected batch: {e}"))
        })));
        self
    }

    /// The microbatch queue, when batching is enabled.
    pub fn batcher(&self) -> Option<&Arc<MicroBatcher<PolicyRow>>> {
        self.batcher.as_ref()
    }

    /// Point the engine's batch metrics at an explicit registry.
    pub fn reroute_telemetry(&self, registry: &Arc<MetricsRegistry>) {
        if let Some(b) = &self.batcher {
            b.reroute_telemetry(registry);
        }
    }

    /// The display cache shared across this engine's decode requests.
    pub fn display_cache(&self) -> &Arc<DisplayCache> {
        &self.display_cache
    }

    /// The dataset id this engine serves by default.
    pub fn dataset(&self) -> &str {
        &self.bundle.dataset
    }

    /// The baked-in dataset frame (shared, not copied).
    pub fn frame(&self) -> &Arc<DataFrame> {
        &self.frame
    }

    /// The loaded bundle's metadata.
    pub fn bundle(&self) -> &PolicyBundle {
        &self.bundle
    }

    /// Default episode length (the bundle's training value).
    pub fn default_episode_len(&self) -> usize {
        self.bundle.env.episode_len
    }

    /// Whether a frame's shape can be decoded by this engine's policy.
    pub fn check_frame(&self, frame: &DataFrame) -> Result<(), EngineError> {
        self.bundle
            .frame_compatible(frame)
            .map_err(EngineError::IncompatibleDataset)
    }

    /// Validate raw request fields into a [`NotebookRequest`] against the
    /// bundle's baked-in dataset.
    pub fn validate(
        &self,
        dataset: &str,
        episode_len: Option<usize>,
        seed: Option<u64>,
    ) -> Result<NotebookRequest, EngineError> {
        if dataset != self.bundle.dataset {
            return Err(EngineError::UnknownDataset {
                requested: dataset.to_string(),
                served: self.bundle.dataset.clone(),
            });
        }
        let frame = Arc::clone(&self.frame);
        self.validate_for_frame(dataset, &frame, episode_len, seed)
    }

    /// Validate raw request fields into a [`NotebookRequest`] against an
    /// explicit frame (the registry-dataset path). Checks policy/shape
    /// compatibility and episode bounds; the frame's fingerprint becomes
    /// part of the request identity.
    pub fn validate_for_frame(
        &self,
        dataset: &str,
        frame: &Arc<DataFrame>,
        episode_len: Option<usize>,
        seed: Option<u64>,
    ) -> Result<NotebookRequest, EngineError> {
        self.check_frame(frame)?;
        let episode_len = episode_len.unwrap_or_else(|| self.default_episode_len());
        if episode_len == 0 || episode_len > MAX_EPISODE_LEN {
            return Err(EngineError::InvalidRequest(format!(
                "episode_len must be in 1..={MAX_EPISODE_LEN}, got {episode_len}"
            )));
        }
        Ok(NotebookRequest {
            dataset: dataset.to_string(),
            fingerprint: frame.fingerprint(),
            episode_len,
            seed: seed.unwrap_or(0),
        })
    }

    /// Greedy-decode one notebook over the baked-in dataset. Deterministic
    /// for a given request: the environment seed is fixed and the decode
    /// temperature is ≈0.
    pub fn decode(&self, request: &NotebookRequest) -> Result<NotebookResponse, EngineError> {
        self.decode_traced(request, None)
    }

    /// [`Engine::decode`] with optional span emission: when `parent` is an
    /// open span, each decode step records `nn.forward` (policy inference)
    /// and `env.step` (display materialization) children under it. Tracing
    /// is execution-only — the decoded notebook is identical either way.
    pub fn decode_traced(
        &self,
        request: &NotebookRequest,
        parent: Option<&SpanGuard<'_, '_>>,
    ) -> Result<NotebookResponse, EngineError> {
        let frame = Arc::clone(&self.frame);
        self.decode_with_frame(&frame, request, parent)
    }

    /// Greedy-decode one notebook over an explicit frame (which must have
    /// passed [`Engine::check_frame`]). The engine's display cache is
    /// shared across datasets — cache keys include the dataset fingerprint,
    /// so entries from different datasets can never alias.
    pub fn decode_with_frame(
        &self,
        frame: &Arc<DataFrame>,
        request: &NotebookRequest,
        parent: Option<&SpanGuard<'_, '_>>,
    ) -> Result<NotebookResponse, EngineError> {
        let mut env_config = self.bundle.env.clone();
        env_config.episode_len = request.episode_len;
        env_config.seed = request.seed;
        // The frame is refcounted, so every request's environment shares
        // one copy of the column data and statistics memo, and — through
        // the attached cache — the displays materialized by earlier
        // requests against the same dataset.
        let mut env = EdaEnv::with_shared_base(Arc::clone(frame), env_config)
            .with_display_cache(Arc::clone(&self.display_cache));
        env.reset_with_seed(request.seed);
        let mut rng = StdRng::seed_from_u64(request.seed);
        while !env.done() {
            let obs = env.observation();
            let step = if let Some(batcher) = &self.batcher {
                let _s = parent.map(|p| p.child("nn.forward_batched"));
                // An aborted batch (the flushing peer died mid-flush) costs
                // this request a typed 500; the queue itself recovers and
                // the next submission opens a fresh batch.
                let row = batcher
                    .submit(obs)
                    .map_err(|e| EngineError::Internal(e.to_string()))?;
                row.sample(&mut rng)
            } else {
                let _s = parent.map(|p| p.child("nn.forward"));
                self.policy.act(&obs, DECODE_TEMPERATURE, &mut rng)
            };
            let action = step.choice.to_eda_action().ok_or_else(|| {
                EngineError::Internal("twofold policy emitted a non-twofold choice".into())
            })?;
            let _s = parent.map(|p| p.child("env.step"));
            env.step(&action);
        }
        let ops: Vec<_> = env.session().ops().iter().map(|o| o.op.clone()).collect();
        let notebook = Notebook::replay(&request.dataset, frame, &ops);
        Ok(NotebookResponse {
            dataset: request.dataset.clone(),
            episode_len: request.episode_len,
            seed: request.seed,
            strategy: self.bundle.strategy.name().to_string(),
            notebook: notebook.summary(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_core::{train_policy_bundle, AtenaConfig, Strategy};
    use atena_dataframe::AttrRole;

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "proto",
                AttrRole::Categorical,
                (0..60).map(|i| Some(if i % 5 == 0 { "udp" } else { "tcp" })),
            )
            .int(
                "len",
                AttrRole::Numeric,
                (0..60).map(|i| Some((i * 13 % 31) as i64)),
            )
            .build()
            .unwrap()
    }

    fn engine() -> Engine {
        let mut config = AtenaConfig::quick();
        config.train_steps = 300;
        config.probe_steps = 60;
        config.env.episode_len = 4;
        let bundle = train_policy_bundle("tiny", base(), vec![], config, Strategy::Atena).unwrap();
        Engine::new(bundle, base()).unwrap()
    }

    #[test]
    fn decode_is_deterministic_per_request() {
        let e = engine();
        let req = e.validate("tiny", Some(3), Some(7)).unwrap();
        let a = e.decode(&req).unwrap();
        let b = e.decode(&req).unwrap();
        assert_eq!(a.notebook.cells.len(), 3);
        assert_eq!(
            serde_json::to_string(&a.notebook).unwrap(),
            serde_json::to_string(&b.notebook).unwrap()
        );
        // A different seed may (and usually does) draw different filter
        // terms; at minimum it must still decode a full notebook.
        let other = e
            .decode(&e.validate("tiny", Some(3), Some(8)).unwrap())
            .unwrap();
        assert_eq!(other.notebook.cells.len(), 3);
    }

    #[test]
    fn batched_decode_is_bit_identical_to_serial() {
        let serial = engine();
        let batched = engine().with_microbatch(MicrobatchConfig {
            max_batch: 8,
            window: std::time::Duration::from_micros(50),
        });
        assert!(batched.batcher().is_some());
        for seed in [0u64, 7, 11] {
            let req = serial.validate("tiny", Some(4), Some(seed)).unwrap();
            let a = serial.decode(&req).unwrap();
            let b = batched.decode(&req).unwrap();
            assert_eq!(
                serde_json::to_string(&a.notebook).unwrap(),
                serde_json::to_string(&b.notebook).unwrap(),
                "seed {seed} diverged under batching"
            );
        }
        // max_batch ≤ 1 keeps the serial path (no queue to wait on).
        let off = engine().with_microbatch(MicrobatchConfig {
            max_batch: 1,
            window: std::time::Duration::from_secs(5),
        });
        assert!(off.batcher().is_none());
    }

    #[test]
    fn validate_rejects_wrong_dataset_and_bad_lengths() {
        let e = engine();
        assert!(matches!(
            e.validate("flights1", None, None),
            Err(EngineError::UnknownDataset { .. })
        ));
        assert!(matches!(
            e.validate("tiny", Some(0), None),
            Err(EngineError::InvalidRequest(_))
        ));
        assert!(matches!(
            e.validate("tiny", Some(MAX_EPISODE_LEN + 1), None),
            Err(EngineError::InvalidRequest(_))
        ));
        let defaulted = e.validate("tiny", None, None).unwrap();
        assert_eq!(defaulted.episode_len, e.default_episode_len());
        assert_eq!(defaulted.seed, 0);
        assert_eq!(defaulted.fingerprint, base().fingerprint());
    }

    #[test]
    fn mismatched_frame_rejected_at_startup() {
        let mut config = AtenaConfig::quick();
        config.train_steps = 200;
        config.probe_steps = 50;
        config.env.episode_len = 3;
        let bundle = train_policy_bundle("tiny", base(), vec![], config, Strategy::Atena).unwrap();
        // A frame with a different column count changes the observation dim.
        let other = DataFrame::builder()
            .int("only", AttrRole::Numeric, (0..10).map(|i| Some(i as i64)))
            .build()
            .unwrap();
        assert!(Engine::new(bundle, other).is_err());
    }

    #[test]
    fn uploaded_frame_decodes_like_a_sibling_engine() {
        let e = engine();
        // A different same-shape dataset: two columns, same layout.
        let uploaded = Arc::new(
            DataFrame::from_csv_str(
                &(String::from("kind,score\n")
                    + &(0..40)
                        .map(|i| format!("k{},{}\n", i % 4, i * 7 % 23))
                        .collect::<String>()),
            )
            .unwrap(),
        );
        let req = e
            .validate_for_frame("ds-test", &uploaded, Some(3), Some(11))
            .unwrap();
        assert_eq!(req.fingerprint, uploaded.fingerprint());
        let a = e.decode_with_frame(&uploaded, &req, None).unwrap();
        let b = e.decode_with_frame(&uploaded, &req, None).unwrap();
        assert_eq!(a.dataset, "ds-test");
        assert_eq!(a.notebook.cells.len(), 3);
        assert_eq!(
            serde_json::to_string(&a.notebook).unwrap(),
            serde_json::to_string(&b.notebook).unwrap()
        );
        // An incompatible shape is rejected before any decode.
        let narrow = Arc::new(DataFrame::from_csv_str("only\n1\n2\n").unwrap());
        assert!(matches!(
            e.validate_for_frame("ds-bad", &narrow, None, None),
            Err(EngineError::IncompatibleDataset(_))
        ));
    }
}
