//! The inference engine: a [`PolicyBundle`] loaded once at startup, shared
//! read-only across worker threads, decoding notebooks greedily (near-zero
//! Boltzmann temperature) from the trained policy.

use atena_core::{Notebook, NotebookSummary, PolicyBundle};
use atena_dataframe::DataFrame;
use atena_env::{DisplayCache, EdaEnv};
use atena_rl::{Policy, TwofoldPolicy};
use atena_telemetry::SpanGuard;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;

/// Near-deterministic decode temperature: low enough that the argmax of
/// every softmax segment is selected with overwhelming probability.
const DECODE_TEMPERATURE: f32 = 1e-3;

/// Capacity of the engine's display cache. Requests against one bundle
/// share a dataset, and greedy decodes at nearby seeds replay mostly the
/// same operation paths, so cross-request reuse is high; sized generously
/// because entries are `Arc`-backed views, not copies of the column data.
const DISPLAY_CACHE_CAPACITY: usize = 4096;

/// Ceiling on per-request episode length, to bound worst-case work.
pub const MAX_EPISODE_LEN: usize = 64;

/// A validated notebook-generation request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NotebookRequest {
    /// Dataset id; must match the loaded bundle's dataset.
    pub dataset: String,
    /// Operations to decode (defaults to the bundle's training value).
    pub episode_len: usize,
    /// Environment seed for term sampling (default 0). Responses are
    /// deterministic per seed.
    pub seed: u64,
}

/// What the engine serves for one request.
#[derive(Debug, Clone, Serialize)]
pub struct NotebookResponse {
    /// Dataset id echoed back.
    pub dataset: String,
    /// Episode length used.
    pub episode_len: usize,
    /// Seed used.
    pub seed: u64,
    /// Strategy name of the loaded policy.
    pub strategy: String,
    /// The decoded notebook.
    pub notebook: NotebookSummary,
}

/// Engine failures, mapped by the server onto HTTP statuses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Requested dataset is not the one the policy was trained on → 404.
    UnknownDataset {
        /// The dataset the request named.
        requested: String,
        /// The dataset the engine serves.
        served: String,
    },
    /// Request parameters out of range → 400.
    InvalidRequest(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownDataset { requested, served } => write!(
                f,
                "dataset {requested:?} is not served; this server's policy was trained on {served:?}"
            ),
            EngineError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
        }
    }
}

/// The shared inference state: an immutable policy plus its dataset.
pub struct Engine {
    bundle: PolicyBundle,
    policy: TwofoldPolicy,
    frame: DataFrame,
    display_cache: Arc<DisplayCache>,
}

impl Engine {
    /// Build from a loaded bundle and the dataset frame it was trained on.
    pub fn new(bundle: PolicyBundle, frame: DataFrame) -> Result<Self, String> {
        let policy = bundle
            .build_policy()
            .map_err(|e| format!("cannot rebuild policy from bundle: {e}"))?;
        let probe = EdaEnv::new(frame.clone(), bundle.env.clone());
        if probe.observation_dim() != bundle.obs_dim {
            return Err(format!(
                "dataset/bundle mismatch: dataset yields observation dim {}, bundle expects {}",
                probe.observation_dim(),
                bundle.obs_dim
            ));
        }
        Ok(Self {
            bundle,
            policy,
            frame,
            display_cache: Arc::new(DisplayCache::new(DISPLAY_CACHE_CAPACITY)),
        })
    }

    /// The display cache shared across this engine's decode requests.
    pub fn display_cache(&self) -> &Arc<DisplayCache> {
        &self.display_cache
    }

    /// The dataset id this engine serves.
    pub fn dataset(&self) -> &str {
        &self.bundle.dataset
    }

    /// The loaded bundle's metadata.
    pub fn bundle(&self) -> &PolicyBundle {
        &self.bundle
    }

    /// Default episode length (the bundle's training value).
    pub fn default_episode_len(&self) -> usize {
        self.bundle.env.episode_len
    }

    /// Validate raw request fields into a [`NotebookRequest`].
    pub fn validate(
        &self,
        dataset: &str,
        episode_len: Option<usize>,
        seed: Option<u64>,
    ) -> Result<NotebookRequest, EngineError> {
        if dataset != self.bundle.dataset {
            return Err(EngineError::UnknownDataset {
                requested: dataset.to_string(),
                served: self.bundle.dataset.clone(),
            });
        }
        let episode_len = episode_len.unwrap_or_else(|| self.default_episode_len());
        if episode_len == 0 || episode_len > MAX_EPISODE_LEN {
            return Err(EngineError::InvalidRequest(format!(
                "episode_len must be in 1..={MAX_EPISODE_LEN}, got {episode_len}"
            )));
        }
        Ok(NotebookRequest {
            dataset: dataset.to_string(),
            episode_len,
            seed: seed.unwrap_or(0),
        })
    }

    /// Greedy-decode one notebook. Deterministic for a given request: the
    /// environment seed is fixed and the decode temperature is ≈0.
    pub fn decode(&self, request: &NotebookRequest) -> NotebookResponse {
        self.decode_traced(request, None)
    }

    /// [`Engine::decode`] with optional span emission: when `parent` is an
    /// open span, each decode step records `nn.forward` (policy inference)
    /// and `env.step` (display materialization) children under it. Tracing
    /// is execution-only — the decoded notebook is identical either way.
    pub fn decode_traced(
        &self,
        request: &NotebookRequest,
        parent: Option<&SpanGuard<'_, '_>>,
    ) -> NotebookResponse {
        let mut env_config = self.bundle.env.clone();
        env_config.episode_len = request.episode_len;
        env_config.seed = request.seed;
        // Cloning the frame shares its column data and statistics memo, so
        // every request's environment also shares one dataset fingerprint
        // computation and — through the attached cache — the displays
        // materialized by earlier requests.
        let mut env = EdaEnv::new(self.frame.clone(), env_config)
            .with_display_cache(Arc::clone(&self.display_cache));
        env.reset_with_seed(request.seed);
        let mut rng = StdRng::seed_from_u64(request.seed);
        while !env.done() {
            let obs = env.observation();
            let step = {
                let _s = parent.map(|p| p.child("nn.forward"));
                self.policy.act(&obs, DECODE_TEMPERATURE, &mut rng)
            };
            let action = step
                .choice
                .to_eda_action()
                .expect("twofold policy emits twofold choices");
            let _s = parent.map(|p| p.child("env.step"));
            env.step(&action);
        }
        let ops: Vec<_> = env.session().ops().iter().map(|o| o.op.clone()).collect();
        let notebook = Notebook::replay(&self.bundle.dataset, &self.frame, &ops);
        NotebookResponse {
            dataset: request.dataset.clone(),
            episode_len: request.episode_len,
            seed: request.seed,
            strategy: self.bundle.strategy.name().to_string(),
            notebook: notebook.summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_core::{train_policy_bundle, AtenaConfig, Strategy};
    use atena_dataframe::AttrRole;

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "proto",
                AttrRole::Categorical,
                (0..60).map(|i| Some(if i % 5 == 0 { "udp" } else { "tcp" })),
            )
            .int(
                "len",
                AttrRole::Numeric,
                (0..60).map(|i| Some((i * 13 % 31) as i64)),
            )
            .build()
            .unwrap()
    }

    fn engine() -> Engine {
        let mut config = AtenaConfig::quick();
        config.train_steps = 300;
        config.probe_steps = 60;
        config.env.episode_len = 4;
        let bundle = train_policy_bundle("tiny", base(), vec![], config, Strategy::Atena).unwrap();
        Engine::new(bundle, base()).unwrap()
    }

    #[test]
    fn decode_is_deterministic_per_request() {
        let e = engine();
        let req = e.validate("tiny", Some(3), Some(7)).unwrap();
        let a = e.decode(&req);
        let b = e.decode(&req);
        assert_eq!(a.notebook.cells.len(), 3);
        assert_eq!(
            serde_json::to_string(&a.notebook).unwrap(),
            serde_json::to_string(&b.notebook).unwrap()
        );
        // A different seed may (and usually does) draw different filter
        // terms; at minimum it must still decode a full notebook.
        let other = e.decode(&e.validate("tiny", Some(3), Some(8)).unwrap());
        assert_eq!(other.notebook.cells.len(), 3);
    }

    #[test]
    fn validate_rejects_wrong_dataset_and_bad_lengths() {
        let e = engine();
        assert!(matches!(
            e.validate("flights1", None, None),
            Err(EngineError::UnknownDataset { .. })
        ));
        assert!(matches!(
            e.validate("tiny", Some(0), None),
            Err(EngineError::InvalidRequest(_))
        ));
        assert!(matches!(
            e.validate("tiny", Some(MAX_EPISODE_LEN + 1), None),
            Err(EngineError::InvalidRequest(_))
        ));
        let defaulted = e.validate("tiny", None, None).unwrap();
        assert_eq!(defaulted.episode_len, e.default_episode_len());
        assert_eq!(defaulted.seed, 0);
    }

    #[test]
    fn mismatched_frame_rejected_at_startup() {
        let mut config = AtenaConfig::quick();
        config.train_steps = 200;
        config.probe_steps = 50;
        config.env.episode_len = 3;
        let bundle = train_policy_bundle("tiny", base(), vec![], config, Strategy::Atena).unwrap();
        // A frame with a different column count changes the observation dim.
        let other = DataFrame::builder()
            .int("only", AttrRole::Numeric, (0..10).map(|i| Some(i as i64)))
            .build()
            .unwrap();
        assert!(Engine::new(bundle, other).is_err());
    }
}
