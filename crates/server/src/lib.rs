//! # atena-server
//!
//! A from-scratch HTTP/1.1 inference service for ATENA notebook generation,
//! built entirely on `std::net` — no external dependencies.
//!
//! At startup the server loads a [`PolicyBundle`](atena_core::PolicyBundle)
//! (a trained twofold policy plus its dataset identity and environment
//! configuration), rebuilds the policy once, and shares it read-only across
//! a fixed pool of worker threads. Endpoints:
//!
//! | Endpoint             | Method | Purpose                                  |
//! |----------------------|--------|------------------------------------------|
//! | `/v1/notebook`       | POST   | greedy-decode an EDA notebook as JSON    |
//! | `/v1/datasets`       | POST   | streaming CSV upload into the registry   |
//! | `/v1/datasets`       | GET    | list resident datasets                   |
//! | `/v1/datasets/{id}`  | GET    | metadata for one dataset                 |
//! | `/v1/datasets/{id}`  | DELETE | evict an unpinned dataset                |
//! | `/v1/healthz`        | GET    | liveness + loaded-policy metadata        |
//! | `/v1/metrics`        | GET    | telemetry counters/histograms snapshot   |
//!
//! Uploaded datasets live in a fingerprint-keyed, byte-budgeted
//! [`DatasetRegistry`]; `POST /v1/notebook` accepts an optional
//! `dataset_id` to decode against a registered dataset instead of the
//! bundle's baked-in one. Mutating requests are admission-controlled per
//! tenant (the `X-Atena-Tenant` header, default `public`): a tenant over
//! its in-flight cap gets `429` with a `Retry-After` header while other
//! tenants proceed.
//!
//! Identical `(dataset, fingerprint, episode_len, seed)` requests are
//! answered from an LRU response cache without touching the policy; the
//! `X-Atena-Cache` header reports `hit` or `miss`. Malformed requests,
//! oversized bodies, and per-request socket timeouts are answered with
//! precise 4xx statuses, and SIGTERM/SIGINT (or [`ServerHandle::shutdown`])
//! triggers a graceful drain: stop accepting, finish in-flight
//! connections, join the pool.

#![warn(missing_docs)]

mod cache;
mod engine;
mod http;
mod pool;
mod signal;

pub use cache::LruCache;
pub use engine::{Engine, EngineError, NotebookRequest, NotebookResponse, MAX_EPISODE_LEN};
pub use http::{
    DeadlineWriter, ParseError, Request, RequestReader, Response, DEFAULT_MAX_BODY_BYTES,
};
pub use pool::ThreadPool;
pub use signal::{install_handlers, request_shutdown, shutdown_requested};

use atena_registry::{
    AdmissionController, DatasetRegistry, RegistryConfig, RegistryError, TenantLimits,
};
use atena_telemetry::{
    ActiveTrace, HistogramSummary, MetricsRegistry, MetricsSnapshot, ROOT_SPAN_ID,
};
use http::push_json_string;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Entries kept in the `/v1/debug/requests` recent-request ring.
pub const DEBUG_RING_CAPACITY: usize = 64;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// LRU response-cache capacity in entries (0 disables caching).
    pub cache_size: usize,
    /// Per-request socket read/write timeout.
    pub request_timeout: Duration,
    /// Request body cap in bytes.
    pub max_body_bytes: usize,
    /// Requests handled in more than this are counted in
    /// `server.request.slow` and logged at WARN with their trace id.
    pub slow_threshold: Duration,
    /// Dataset-registry sizing: upload caps, byte budget, tenant quotas.
    pub registry: RegistryConfig,
    /// Per-tenant admission control for mutating requests.
    pub tenant_limits: TenantLimits,
    /// Rows per microbatched decode forward: concurrent requests' decode
    /// steps are coalesced into one `[B, obs_dim]` pass. `1` (the
    /// default) disables the queue. Execution-only — responses are
    /// bit-identical at any batch size (DESIGN.md §4l).
    pub max_batch: usize,
    /// How long the first decode step of a batch waits for company before
    /// a timeout flush.
    pub batch_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".into(),
            workers: 4,
            cache_size: 256,
            request_timeout: Duration::from_secs(10),
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            slow_threshold: Duration::from_millis(500),
            registry: RegistryConfig::default(),
            tenant_limits: TenantLimits::default(),
            max_batch: 1,
            batch_window: Duration::from_micros(200),
        }
    }
}

/// One `/v1/debug/requests` ring entry: a served request's identity and
/// latency breakdown.
struct RequestDebug {
    trace_id: String,
    ts: f64,
    method: String,
    path: String,
    status: u16,
    cache: &'static str,
    total_secs: f64,
    read_secs: f64,
    decode_secs: f64,
}

/// Shared per-server state: the engine, the response cache, telemetry, and
/// the recent-request debug ring.
struct AppState {
    engine: Engine,
    cache: Mutex<LruCache<NotebookRequest, Arc<String>>>,
    registry: Arc<DatasetRegistry>,
    admission: Arc<AdmissionController>,
    telemetry: Arc<MetricsRegistry>,
    debug: Mutex<VecDeque<RequestDebug>>,
    started: Instant,
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a graceful drain and wait for the server to finish.
    pub fn shutdown(mut self) {
        self.finish();
    }

    /// Set the drain flag, unblock the accept loop with a self-connect,
    /// and join the server thread.
    fn finish(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        signal::wake_addr(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

impl Server {
    /// Bind the listener and prepare shared state. Metrics go to the
    /// process-wide telemetry registry.
    pub fn bind(config: ServerConfig, engine: Engine) -> std::io::Result<Server> {
        Self::bind_with_telemetry(config, engine, atena_telemetry::global_arc())
    }

    /// [`Server::bind`] with an explicit metrics registry (tests use a
    /// private one per server to stay isolated).
    pub fn bind_with_telemetry(
        config: ServerConfig,
        engine: Engine,
        telemetry: Arc<MetricsRegistry>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let engine = engine.with_microbatch(atena_batch::MicrobatchConfig {
            max_batch: config.max_batch,
            window: config.batch_window,
        });
        engine.reroute_telemetry(&telemetry);
        let registry = Arc::new(DatasetRegistry::new(config.registry));
        registry.reroute_telemetry(&telemetry);
        // The bundle's baked-in dataset is pinned: always resolvable by id,
        // never evicted, exempt from the upload budget.
        registry.insert_pinned(engine.dataset(), Arc::clone(engine.frame()));
        let admission = Arc::new(AdmissionController::new(config.tenant_limits));
        admission.reroute_telemetry(&telemetry);
        let state = Arc::new(AppState {
            engine,
            cache: Mutex::new(LruCache::new(config.cache_size)),
            registry,
            admission,
            telemetry,
            debug: Mutex::new(VecDeque::with_capacity(DEBUG_RING_CAPACITY)),
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            state,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the accept loop on this thread until a shutdown is requested via
    /// [`ServerHandle::shutdown`], [`request_shutdown`], or a signal
    /// (after [`install_handlers`]). Returns after the drain completes.
    pub fn run(self) {
        let Server {
            listener,
            state,
            config,
            shutdown,
        } = self;
        // Panic-isolated workers: a request that trips a latent panic costs
        // one connection (counted below), never a pool thread.
        let panic_telemetry = Arc::clone(&state.telemetry);
        let pool = ThreadPool::with_panic_hook(
            config.workers,
            Some(Arc::new(move || {
                panic_telemetry.counter("server.pool.panics").inc();
            })),
        );
        // The accept is fully blocking: zero idle CPU and no accept-latency
        // floor. Shutdown paths (handle, request_shutdown, signals via the
        // self-pipe watcher) unblock it with a throwaway self-connect, so
        // the loop re-checks the drain flag after every accept.
        let addr = listener.local_addr().ok();
        if let Some(a) = addr {
            signal::register_listener(a);
        }
        loop {
            if shutdown.load(Ordering::SeqCst) || signal::shutdown_requested() {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if shutdown.load(Ordering::SeqCst) || signal::shutdown_requested() {
                        // A shutdown wake-up (or a client racing the
                        // drain): close it unanswered and stop accepting.
                        drop(stream);
                        break;
                    }
                    state.telemetry.counter("server.connections").inc();
                    let state = Arc::clone(&state);
                    let shutdown = Arc::clone(&shutdown);
                    let config = config.clone();
                    pool.execute(move || handle_connection(stream, &state, &config, &shutdown));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    atena_telemetry::warn!("accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        if let Some(a) = addr {
            signal::deregister_listener(a);
        }
        // Drain: the pool's Drop closes the queue and joins every worker,
        // letting in-flight connections finish their current request.
        drop(pool);
        state.telemetry.flush();
        atena_telemetry::tracer().flush();
    }

    /// Run on a background thread; returns a handle for shutdown.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::Builder::new()
            .name("atena-server-accept".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// Serve one connection: parse requests in a keep-alive loop, route each,
/// and stop on close, error, or server drain.
fn handle_connection(
    stream: TcpStream,
    state: &AppState,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(config.request_timeout));
    let _ = stream.set_write_timeout(Some(config.request_timeout));
    // The read budget below is a *per-request* deadline, not a per-read
    // timeout: a slow-loris client dribbling one byte per tick keeps every
    // socket read fast (each read resets the kernel timer) but cannot
    // stretch one request past `request_timeout` total. The rearm hook
    // shrinks the socket timeout to the remaining budget before each read,
    // so a peer that goes silent mid-dribble is cut off at the same
    // deadline. A failed `try_clone` leaves the hook inert; the explicit
    // deadline check in the reader still bounds any peer that keeps
    // sending.
    let rearm = stream.try_clone().ok();
    // Uploads get their own body cap: the registry's per-upload byte
    // limit, checked against Content-Length before any buffering.
    let mut reader = RequestReader::with_max_body(&stream, config.max_body_bytes)
        .with_route_cap("/v1/datasets", state.registry.config().limits.max_bytes)
        .with_read_budget(config.request_timeout, move |remaining| {
            if let Some(s) = &rearm {
                let _ = s.set_read_timeout(Some(remaining));
            }
        });
    let mut served = 0usize;
    loop {
        let draining = shutdown.load(Ordering::SeqCst) || signal::shutdown_requested();
        let read_start = Instant::now();
        match reader.read_request() {
            Ok(request) => {
                // For reused connections this includes the idle keep-alive
                // wait, which is exactly what the `http.read` span should
                // show: time between accept/last response and a full request.
                let read_secs = read_start.elapsed().as_secs_f64();
                if served > 0 {
                    state.telemetry.counter("server.conn.keepalive_reuse").inc();
                }
                served += 1;
                let trace = atena_telemetry::tracer().trace("server.request");
                let trace_hex = trace.trace_id_hex();
                trace.attr("method", request.method.clone());
                trace.attr("path", request.path().to_string());
                trace.record_exact(ROOT_SPAN_ID, "http.read", read_secs, Vec::new());
                let span = atena_telemetry::Span::enter(
                    state.telemetry.histogram("server.http.latency_secs"),
                );
                let outcome = route(&request, state, &trace);
                let total_secs = span.finish();
                trace.attr("status", outcome.response.status.to_string());
                if total_secs > config.slow_threshold.as_secs_f64() {
                    state.telemetry.counter("server.request.slow").inc();
                    atena_telemetry::warn!(
                        "slow request: {} {} took {:.1}ms (threshold {}ms) trace={}",
                        request.method,
                        request.path(),
                        total_secs * 1e3,
                        config.slow_threshold.as_millis(),
                        trace_hex
                    );
                }
                push_debug_entry(
                    state,
                    RequestDebug {
                        trace_id: trace_hex.clone(),
                        ts: atena_telemetry::unix_ts(),
                        method: request.method.clone(),
                        path: request.path().to_string(),
                        status: outcome.response.status,
                        cache: outcome.cache,
                        total_secs,
                        read_secs,
                        decode_secs: outcome.decode_secs,
                    },
                );
                // During a drain, answer the in-flight request, then close.
                let keep_alive = request.keep_alive() && !draining;
                let response = outcome.response.with_header("X-Atena-Trace-Id", &trace_hex);
                let write_span = trace.span("http.write");
                // The response write gets its own fresh budget (decode time
                // already elapsed does not count against the client's read
                // pace), but that budget is a hard total: a peer draining
                // the response one byte per tick is cut off at the
                // deadline, releasing the worker.
                let mut out = DeadlineWriter::new(&stream, Instant::now() + config.request_timeout);
                let wrote = response.write_to(&mut out, keep_alive);
                drop(write_span);
                drop(trace);
                if let Err(e) = &wrote {
                    // Partial writes (peer vanished mid-response, or the
                    // write deadline fired) close the connection; the
                    // Content-Length framing makes the truncation
                    // unambiguous to any reader still listening.
                    state.telemetry.counter("server.http.write_errors").inc();
                    atena_telemetry::debug!("response write failed: {e}");
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            Err(err) => {
                // A clean disconnect between requests (`Closed`) is normal
                // keep-alive teardown, not a protocol error.
                if let Some((status, reason)) = err.status() {
                    state.telemetry.counter("server.http.parse_errors").inc();
                    let body = format!("{err:?}");
                    let mut out =
                        DeadlineWriter::new(&stream, Instant::now() + config.request_timeout);
                    let _ = Response::error(status, reason, &body).write_to(&mut out, false);
                    drain_before_close(&stream);
                }
                return;
            }
        }
    }
}

/// Discard unread request bytes before dropping a connection we answered
/// with a fatal error. Closing with data still queued makes the kernel send
/// RST instead of FIN, which can destroy the error response in flight.
fn drain_before_close(stream: &TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut reader: &TcpStream = stream;
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    // Cap the drain by bytes *and* wall clock: without the deadline, a
    // client dribbling its unread body one byte per 250 ms would keep
    // every read succeeding and pin this worker for up to a megabyte of
    // dribble. Past the deadline the connection is abandoned (RST risk
    // accepted — the peer is hostile or gone).
    let deadline = Instant::now() + Duration::from_millis(500);
    while drained < (1 << 20) && Instant::now() < deadline {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// What routing produced for one request: the response plus the pieces the
/// debug ring wants (cache verdict, decode time).
struct RouteOutcome {
    response: Response,
    cache: &'static str,
    decode_secs: f64,
}

impl RouteOutcome {
    fn plain(response: Response) -> Self {
        Self {
            response,
            cache: "-",
            decode_secs: 0.0,
        }
    }
}

/// Append to the debug ring, evicting the oldest entry when full.
fn push_debug_entry(state: &AppState, entry: RequestDebug) {
    let mut ring = state.debug.lock().unwrap_or_else(PoisonError::into_inner);
    if ring.len() >= DEBUG_RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(entry);
}

/// The tenant a request acts as: the `X-Atena-Tenant` header, defaulting
/// to `public` so untagged clients share one fairness bucket.
fn tenant_of(request: &Request) -> &str {
    match request.header("x-atena-tenant") {
        Some(t) if !t.trim().is_empty() => t.trim(),
        _ => "public",
    }
}

/// 405 with the `Allow` header the endpoint supports.
fn method_not_allowed(state: &AppState, allow: &'static str) -> RouteOutcome {
    state.telemetry.counter("server.http.errors").inc();
    RouteOutcome::plain(
        Response::error(405, "Method Not Allowed", "wrong method for this endpoint")
            .with_header("Allow", allow),
    )
}

/// Map a registry failure onto its HTTP response.
fn registry_error_response(state: &AppState, err: &RegistryError) -> RouteOutcome {
    state.telemetry.counter("server.http.errors").inc();
    let message = err.to_string();
    let response = match err {
        RegistryError::Malformed(_) => Response::error(400, "Bad Request", &message),
        RegistryError::UploadTooLarge(_) | RegistryError::ExceedsBudget { .. } => {
            Response::error(413, "Payload Too Large", &message)
        }
        RegistryError::TenantQuotaExceeded { .. } => {
            Response::error(429, "Too Many Requests", &message).with_header("Retry-After", "1")
        }
        RegistryError::NotFound { .. } => Response::error(404, "Not Found", &message),
        RegistryError::Pinned { .. } => Response::error(409, "Conflict", &message),
    };
    RouteOutcome::plain(response)
}

/// Dispatch one parsed request. Mutating routes (`POST /v1/notebook`,
/// `POST /v1/datasets`, `DELETE /v1/datasets/{id}`) first acquire a
/// per-tenant admission permit; a tenant over its in-flight cap is told to
/// back off with `429` + `Retry-After` while other tenants are unaffected.
fn route(request: &Request, state: &AppState, trace: &ActiveTrace<'_>) -> RouteOutcome {
    let t = &state.telemetry;
    t.counter("server.http.requests").inc();
    let admit = |tenant: &str| match state.admission.try_acquire(tenant) {
        Ok(permit) => Ok(permit),
        Err(rejection) => {
            t.counter("server.http.throttled").inc();
            Err(RouteOutcome::plain(
                Response::error(
                    429,
                    "Too Many Requests",
                    &format!(
                        "tenant {} at in-flight limit {}",
                        rejection.tenant, rejection.limit
                    ),
                )
                .with_header("Retry-After", &rejection.retry_after_secs.to_string()),
            ))
        }
    };
    match (request.method.as_str(), request.path()) {
        ("GET", "/v1/healthz") => {
            t.counter("server.http.requests.healthz").inc();
            RouteOutcome::plain(Response::ok_json(healthz_json(state)))
        }
        ("GET", "/v1/metrics") => {
            t.counter("server.http.requests.metrics").inc();
            // Sampled on every scrape (observational only): soak harnesses
            // assert flat memory through this gauge without needing a
            // sidecar probe on the server host.
            if let Some(rss) = atena_telemetry::rss_bytes() {
                t.gauge("server.mem.rss_bytes").set(rss as f64);
            }
            if request.query_has("format", "prometheus") {
                return RouteOutcome::plain(Response::ok_text(
                    "text/plain; version=0.0.4",
                    t.render_prometheus(),
                ));
            }
            let snapshot = t.snapshot();
            RouteOutcome::plain(Response::ok_json(metrics_json(
                &snapshot,
                state.started.elapsed().as_secs_f64(),
            )))
        }
        ("GET", "/v1/debug/requests") => {
            t.counter("server.http.requests.debug").inc();
            RouteOutcome::plain(Response::ok_json(debug_requests_json(state)))
        }
        ("POST", "/v1/notebook") => {
            t.counter("server.http.requests.notebook").inc();
            let _permit = match admit(tenant_of(request)) {
                Ok(p) => p,
                Err(outcome) => return outcome,
            };
            serve_notebook(request, state, trace)
        }
        ("POST", "/v1/datasets") => {
            t.counter("server.http.requests.upload").inc();
            let tenant = tenant_of(request);
            let _permit = match admit(tenant) {
                Ok(p) => p,
                Err(outcome) => return outcome,
            };
            serve_upload(request, state, tenant)
        }
        ("GET", "/v1/datasets") => {
            t.counter("server.http.requests.datasets").inc();
            RouteOutcome::plain(Response::ok_json(datasets_json(state)))
        }
        ("GET", path) if path.strip_prefix("/v1/datasets/").is_some() => {
            t.counter("server.http.requests.datasets").inc();
            let id = path.strip_prefix("/v1/datasets/").unwrap_or_default();
            match state.registry.get(id) {
                Some((_, info)) => {
                    let mut out = String::new();
                    push_dataset_info(&mut out, &info);
                    RouteOutcome::plain(Response::ok_json(out))
                }
                None => {
                    t.counter("server.http.errors").inc();
                    RouteOutcome::plain(Response::error(
                        404,
                        "Not Found",
                        &format!("dataset {id} not found"),
                    ))
                }
            }
        }
        ("DELETE", path) if path.strip_prefix("/v1/datasets/").is_some() => {
            t.counter("server.http.requests.datasets").inc();
            let _permit = match admit(tenant_of(request)) {
                Ok(p) => p,
                Err(outcome) => return outcome,
            };
            let id = path.strip_prefix("/v1/datasets/").unwrap_or_default();
            match state.registry.delete(id) {
                Ok(info) => {
                    let mut out = String::new();
                    push_dataset_info(&mut out, &info);
                    RouteOutcome::plain(Response::ok_json(out))
                }
                Err(e) => registry_error_response(state, &e),
            }
        }
        (_, "/v1/notebook") => method_not_allowed(state, "POST"),
        (_, "/v1/datasets") => method_not_allowed(state, "GET, POST"),
        (_, path) if path.strip_prefix("/v1/datasets/").is_some() => {
            method_not_allowed(state, "GET, DELETE")
        }
        (_, "/v1/healthz" | "/v1/metrics" | "/v1/debug/requests") => {
            method_not_allowed(state, "GET")
        }
        (_, path) => {
            t.counter("server.http.errors").inc();
            RouteOutcome::plain(Response::error(
                404,
                "Not Found",
                &format!("no route for {path}"),
            ))
        }
    }
}

/// `POST /v1/datasets`: parse the CSV body under the registry's per-upload
/// caps and admit it under the budget and the tenant's byte quota. `201`
/// on first sight, `200` when an identical dataset was already resident.
fn serve_upload(request: &Request, state: &AppState, tenant: &str) -> RouteOutcome {
    let name = request
        .query_get("name")
        .or_else(|| request.header("x-atena-dataset-name"))
        .unwrap_or("upload");
    match state.registry.ingest(tenant, name, &request.body) {
        Ok(outcome) => {
            let frame = state
                .registry
                .get(&outcome.info.dataset_id)
                .map(|(frame, _)| frame)
                .unwrap_or_else(|| Arc::clone(state.engine.frame()));
            let compatible = state.engine.bundle().frame_compatible(&frame).is_ok();
            let mut out = String::from("{\"dataset\":");
            push_dataset_info(&mut out, &outcome.info);
            out.push_str(&format!(
                ",\"deduplicated\":{},\"policy_compatible\":{compatible},\"schema\":[",
                outcome.deduplicated,
            ));
            for (i, field) in frame.schema().fields().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                push_json_string(&mut out, &field.name);
                out.push_str(&format!(
                    ",\"dtype\":\"{}\",\"role\":\"{}\"}}",
                    field.dtype.name(),
                    field.role.name(),
                ));
            }
            out.push_str("]}");
            let (status, reason): (u16, &'static str) = if outcome.deduplicated {
                (200, "OK")
            } else {
                (201, "Created")
            };
            RouteOutcome::plain(Response::json(status, reason, out))
        }
        Err(e) => registry_error_response(state, &e),
    }
}

/// Render one [`atena_registry::DatasetInfo`] as a JSON object.
fn push_dataset_info(out: &mut String, info: &atena_registry::DatasetInfo) {
    out.push_str("{\"dataset_id\":");
    push_json_string(out, &info.dataset_id);
    out.push_str(",\"name\":");
    push_json_string(out, &info.name);
    out.push_str(&format!(
        ",\"rows\":{},\"cols\":{},\"bytes\":{},\"fingerprint\":\"{:016x}\",\"pinned\":{},\"tenants\":[",
        info.rows, info.cols, info.bytes, info.fingerprint, info.pinned,
    ));
    for (i, tenant) in info.tenants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, tenant);
    }
    out.push_str("]}");
}

/// Render the `GET /v1/datasets` listing with registry totals.
fn datasets_json(state: &AppState) -> String {
    let snap = state.registry.snapshot();
    let mut out = format!(
        "{{\"total_bytes\":{},\"unpinned_bytes\":{},\"budget_bytes\":{},\"datasets\":[",
        snap.total_bytes, snap.unpinned_bytes, snap.budget_bytes,
    );
    for (i, info) in state.registry.list().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_dataset_info(&mut out, info);
    }
    out.push_str("]}");
    out
}

/// `POST /v1/notebook`: validate the JSON body, consult the LRU cache, and
/// decode on a miss. Span tree under the request root: `request.parse`
/// (body parse + validation), `cache.lookup`, and on a miss `engine.decode`
/// with per-step `nn.forward`/`env.step` children.
///
/// An optional `dataset_id` field selects a registry dataset to decode
/// against; without it, `dataset` must name the bundle's baked-in dataset.
fn serve_notebook(request: &Request, state: &AppState, trace: &ActiveTrace<'_>) -> RouteOutcome {
    let t = &state.telemetry;
    let fail = |status, reason, message: &str| {
        t.counter("server.http.errors").inc();
        RouteOutcome::plain(Response::error(status, reason, message))
    };
    let parse_span = trace.span("request.parse");
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => return fail(400, "Bad Request", "body is not valid UTF-8"),
    };
    let value: serde_json::Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return fail(400, "Bad Request", &format!("body is not valid JSON: {e}")),
    };
    let dataset = match value.get("dataset") {
        None => None,
        Some(d) => match d.as_str() {
            Some(s) => Some(s),
            None => return fail(400, "Bad Request", "field \"dataset\" must be a string"),
        },
    };
    let dataset_id = match value.get("dataset_id") {
        None => None,
        Some(d) => match d.as_str() {
            Some(s) => Some(s),
            None => return fail(400, "Bad Request", "field \"dataset_id\" must be a string"),
        },
    };
    let episode_len = match optional_u64(&value, "episode_len") {
        Ok(v) => v.map(|n| n as usize),
        Err(m) => return fail(400, "Bad Request", &m),
    };
    let seed = match optional_u64(&value, "seed") {
        Ok(v) => v,
        Err(m) => return fail(400, "Bad Request", &m),
    };

    let (frame, validated) = if let Some(id) = dataset_id {
        let Some((frame, info)) = state.registry.get(id) else {
            return fail(404, "Not Found", &format!("dataset {id} not found"));
        };
        let name = dataset.unwrap_or(&info.name);
        match state
            .engine
            .validate_for_frame(name, &frame, episode_len, seed)
        {
            Ok(v) => (frame, v),
            Err(e @ EngineError::IncompatibleDataset(_)) => {
                return fail(409, "Conflict", &e.to_string());
            }
            Err(e) => return fail(400, "Bad Request", &e.to_string()),
        }
    } else {
        let Some(dataset) = dataset else {
            return fail(
                400,
                "Bad Request",
                "missing required string field \"dataset\" (or \"dataset_id\")",
            );
        };
        match state.engine.validate(dataset, episode_len, seed) {
            Ok(v) => (Arc::clone(state.engine.frame()), v),
            Err(e @ EngineError::UnknownDataset { .. }) => {
                return fail(404, "Not Found", &e.to_string());
            }
            Err(e @ EngineError::IncompatibleDataset(_)) => {
                return fail(409, "Conflict", &e.to_string());
            }
            Err(e @ EngineError::InvalidRequest(_)) => {
                return fail(400, "Bad Request", &e.to_string());
            }
            Err(e @ EngineError::Internal(_)) => {
                return fail(500, "Internal Server Error", &e.to_string());
            }
        }
    };
    drop(parse_span);

    let lookup_span = trace.span("cache.lookup");
    let cached = state
        .cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&validated)
        .cloned();
    drop(lookup_span);
    if let Some(cached) = cached {
        t.counter("server.cache.hits").inc();
        return RouteOutcome {
            response: Response::ok_json(cached.as_bytes().to_vec())
                .with_header("X-Atena-Cache", "hit"),
            cache: "hit",
            decode_secs: 0.0,
        };
    }
    t.counter("server.cache.misses").inc();

    let mut decode_span = trace.span("engine.decode");
    decode_span.set_attr("episode_len", validated.episode_len.to_string());
    decode_span.set_attr("seed", validated.seed.to_string());
    let span = atena_telemetry::Span::enter(t.histogram("server.notebook.decode_secs"));
    let decoded = match state
        .engine
        .decode_with_frame(&frame, &validated, Some(&decode_span))
    {
        Ok(d) => d,
        Err(e) => {
            let _ = span.finish();
            drop(decode_span);
            return fail(500, "Internal Server Error", &e.to_string());
        }
    };
    let decode_secs = span.finish();
    drop(decode_span);
    let body = match serde_json::to_string(&decoded) {
        Ok(body) => Arc::new(body),
        Err(e) => {
            return fail(
                500,
                "Internal Server Error",
                &format!("response serialization failed: {e}"),
            );
        }
    };
    state
        .cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(validated, Arc::clone(&body));
    RouteOutcome {
        response: Response::ok_json(body.as_bytes().to_vec()).with_header("X-Atena-Cache", "miss"),
        cache: "miss",
        decode_secs,
    }
}

/// Render the `/v1/debug/requests` document: tracer health plus the
/// recent-request ring, newest first.
fn debug_requests_json(state: &AppState) -> String {
    let tracer = atena_telemetry::tracer();
    let counts = tracer.counts();
    let mut out = format!(
        "{{\"capacity\":{DEBUG_RING_CAPACITY},\"tracing\":{{\"enabled\":{},\
         \"spans_recorded\":{},\"spans_dropped\":{},\"traces_recorded\":{}}},\"requests\":[",
        tracer.is_enabled(),
        counts.spans_recorded,
        counts.spans_dropped,
        counts.traces_recorded,
    );
    let ring = state.debug.lock().unwrap_or_else(PoisonError::into_inner);
    for (i, r) in ring.iter().rev().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"trace_id\":");
        push_json_string(&mut out, &r.trace_id);
        out.push_str(",\"ts\":");
        out.push_str(&format!("{:.3}", r.ts));
        out.push_str(",\"method\":");
        push_json_string(&mut out, &r.method);
        out.push_str(",\"path\":");
        push_json_string(&mut out, &r.path);
        out.push_str(&format!(
            ",\"status\":{},\"cache\":\"{}\",\"total_secs\":{:.6},\
             \"read_secs\":{:.6},\"decode_secs\":{:.6}}}",
            r.status, r.cache, r.total_secs, r.read_secs, r.decode_secs,
        ));
    }
    out.push_str("]}");
    out
}

fn optional_u64(value: &serde_json::Value, field: &str) -> Result<Option<u64>, String> {
    match value.get(field) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {field:?} must be a non-negative integer")),
    }
}

fn healthz_json(state: &AppState) -> String {
    let bundle = state.engine.bundle();
    let mut out = String::from("{\"status\":\"ok\",\"dataset\":");
    push_json_string(&mut out, state.engine.dataset());
    out.push_str(",\"strategy\":");
    push_json_string(&mut out, bundle.strategy.name());
    let snap = state.registry.snapshot();
    out.push_str(&format!(
        ",\"episode_len\":{},\"train_steps\":{},\"uptime_secs\":{:.3},\
         \"registry\":{{\"datasets\":{},\"total_bytes\":{},\"budget_bytes\":{}}}}}",
        bundle.env.episode_len,
        bundle.train_steps,
        state.started.elapsed().as_secs_f64(),
        snap.entries,
        snap.total_bytes,
        snap.budget_bytes,
    ));
    out
}

/// Render a [`MetricsSnapshot`] as the `/v1/metrics` JSON document.
fn metrics_json(snapshot: &MetricsSnapshot, uptime_secs: f64) -> String {
    fn f64_json(v: f64) -> String {
        if v.is_finite() {
            v.to_string()
        } else {
            "null".to_string()
        }
    }
    fn histogram_json(h: &HistogramSummary) -> String {
        format!(
            "{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            h.count,
            f64_json(h.mean),
            f64_json(h.min),
            f64_json(h.max),
            f64_json(h.p50),
            f64_json(h.p95),
            f64_json(h.p99),
        )
    }
    let mut out = format!("{{\"uptime_secs\":{:.3},\"counters\":{{", uptime_secs);
    for (i, (name, v)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push(':');
        out.push_str(&f64_json(*v));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push(':');
        out.push_str(&histogram_json(h));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_telemetry::Histogram;

    #[test]
    fn metrics_json_is_valid_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("server.http.requests").add(7);
        reg.gauge("g").set(1.25);
        let h: Histogram = reg.histogram("server.http.latency_secs");
        h.record(0.002);
        let text = metrics_json(&reg.snapshot(), 3.5);
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(v["counters"]["server.http.requests"].as_u64(), Some(7));
        assert_eq!(v["gauges"]["g"].as_f64(), Some(1.25));
        assert_eq!(
            v["histograms"]["server.http.latency_secs"]["count"].as_u64(),
            Some(1)
        );
        assert!(
            v["histograms"]["server.http.latency_secs"]["p95"]
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert_eq!(v["uptime_secs"].as_f64(), Some(3.5));
    }
}
