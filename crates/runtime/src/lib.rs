//! Deterministic data-parallel execution runtime.
//!
//! This crate is the thin layer between "I have N independent pieces of
//! work" and "I have N cores": a [`Runtime`] splits an item slice into
//! contiguous shards, runs each shard on its own std thread, and merges
//! the per-item results back **in item order**. Because results are keyed
//! by item index — never by which thread produced them or when — the
//! output of [`Runtime::scatter`] is identical for any worker count,
//! including the inline single-worker path. Thread scheduling can change
//! *when* an item is processed, never *what* it computes or *where* its
//! result lands.
//!
//! The second half of the determinism contract is randomness:
//! [`stream_seed`] derives an independent RNG stream from
//! `(base seed, lane, iteration)` by counter-mixing, so a work item's
//! randomness depends only on its logical coordinates. Together the two
//! halves give the guarantee the trainer builds on (DESIGN.md §4h):
//! **worker count changes speed, never results.**
//!
//! Telemetry: every scatter records `runtime.worker.{w}.items` /
//! `runtime.worker.{w}.busy_secs` counters per worker, a
//! `runtime.merge_secs` histogram for the in-order merge, and a
//! `runtime.workers` gauge, into the global registry by default
//! ([`Runtime::with_telemetry`] reroutes them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atena_telemetry::MetricsRegistry;
use std::ops::Range;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One worker's share of the most recent scatter call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerProfile {
    /// Items this worker processed.
    pub items: usize,
    /// Wall time the worker spent on its shard, in seconds.
    pub busy_secs: f64,
}

/// Timing profile of a [`Runtime::scatter`] call: exact per-worker busy
/// times plus the fixed-order merge cost. Consumers (the trainer's span
/// emission, bench reports) read it *after* the scatter returns, so the
/// profile never feeds back into scheduling or results — it is
/// execution-only observability.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScatterProfile {
    /// Per-worker timings, indexed by worker (= shard) id.
    pub workers: Vec<WorkerProfile>,
    /// Seconds spent concatenating fragments in item order.
    pub merge_secs: f64,
}

/// Reserved `iteration` tag for deriving a lane's environment-config seed
/// (outside the `0..` range real training iterations use).
pub const STREAM_ENV: u64 = u64::MAX;
/// Reserved `iteration` tag for a lane's initial episode reset.
pub const STREAM_INIT: u64 = u64::MAX - 1;
/// Reserved `iteration` tag for the evaluation RNG stream.
pub const STREAM_EVAL: u64 = u64::MAX - 2;

/// SplitMix64 finalizer: a bijective avalanche mix on `u64`.
///
/// Used as the stage function of [`stream_seed`]; also handy on its own
/// for spreading small counters over the full seed space.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derive the RNG seed for logical stream `(base, lane, iteration)`.
///
/// Counter-based derivation (rather than drawing seeds from a stateful
/// master RNG) is what makes parallel collection reproducible: the stream
/// a lane uses at iteration `k` is a pure function of its coordinates, so
/// it cannot depend on how work was interleaved across threads — or on
/// how many threads there were. Each component passes through its own
/// [`splitmix64`] stage, so nearby coordinates land in unrelated seeds.
///
/// Iterations count up from zero; the `u64::MAX`-adjacent values are
/// reserved as domain tags ([`STREAM_ENV`], [`STREAM_INIT`],
/// [`STREAM_EVAL`]) so auxiliary streams never collide with rollout
/// streams.
#[inline]
pub fn stream_seed(base: u64, lane: u64, iteration: u64) -> u64 {
    let mut h = splitmix64(base);
    h = splitmix64(h ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
    h = splitmix64(
        h ^ iteration
            .wrapping_mul(0xD1B5_4A32_D192_ED03)
            .wrapping_add(2),
    );
    h
}

/// Number of workers to use when the user didn't say: the machine's
/// available parallelism, or 1 if that cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-width pool of scatter workers.
///
/// The worker count is an execution parameter only: it bounds how many
/// threads a [`scatter`](Runtime::scatter) call uses, and it never
/// appears in any result. `Runtime::new(1)` runs everything inline on
/// the calling thread (no spawn overhead), which doubles as the
/// reference serial schedule the parallel schedules must match.
#[derive(Clone)]
pub struct Runtime {
    workers: usize,
    telemetry: Arc<MetricsRegistry>,
    profile: Arc<Mutex<ScatterProfile>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers)
            .finish()
    }
}

impl Runtime {
    /// A runtime with `workers` threads (clamped to at least 1),
    /// reporting to the process-wide metrics registry.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            telemetry: atena_telemetry::global_arc(),
            profile: Arc::new(Mutex::new(ScatterProfile::default())),
        }
    }

    /// Timing profile of the most recent [`Runtime::scatter`] call (empty
    /// `workers` before the first call). Clones of a runtime share one
    /// profile slot.
    pub fn last_profile(&self) -> ScatterProfile {
        self.profile
            .lock()
            .expect("runtime profile poisoned")
            .clone()
    }

    /// Route this runtime's metrics to `registry` instead of the
    /// process-wide one (used by tests to capture output in isolation).
    pub fn with_telemetry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.telemetry = registry;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Split `0..n_items` into at most `workers` contiguous ranges whose
    /// lengths differ by at most one (earlier shards take the remainder).
    ///
    /// The split depends only on `(n_items, workers)` — it is how scatter
    /// assigns items to workers, and it is stable across runs.
    pub fn shards(&self, n_items: usize) -> Vec<Range<usize>> {
        let workers = self.workers.min(n_items).max(1);
        if n_items == 0 {
            return Vec::new();
        }
        let base = n_items / workers;
        let extra = n_items % workers;
        let mut out = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            out.push(start..start + len);
            start += len;
        }
        out
    }

    /// Apply `f` to every item and return the results **in item order**.
    ///
    /// `f` receives `(item_index, &mut item)`; the index is the item's
    /// position in `items`, independent of which worker runs it. Items
    /// are mutated in place (each worker owns a disjoint sub-slice, so
    /// there is no sharing), and `results[i]` is always `f`'s return for
    /// `items[i]`. With one worker — or one item — everything runs
    /// inline on the calling thread.
    pub fn scatter<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let shards = self.shards(items.len());
        self.telemetry
            .gauge("runtime.workers")
            .set(self.workers as f64);
        self.telemetry.counter("runtime.scatter.calls").inc();
        if shards.len() <= 1 {
            let busy = Instant::now();
            let out: Vec<R> = items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
            let busy_secs = busy.elapsed().as_secs_f64();
            self.record_worker(0, out.len(), busy_secs);
            self.telemetry.histogram("runtime.merge_secs").record(0.0);
            *self.profile.lock().expect("runtime profile poisoned") = ScatterProfile {
                workers: vec![WorkerProfile {
                    items: out.len(),
                    busy_secs,
                }],
                merge_secs: 0.0,
            };
            return out;
        }

        let mut results: Vec<R> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = items;
            let mut handles = Vec::with_capacity(shards.len());
            for range in &shards {
                let (shard, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let offset = range.start;
                handles.push(scope.spawn(move || {
                    let busy = Instant::now();
                    let out: Vec<R> = shard
                        .iter_mut()
                        .enumerate()
                        .map(|(j, item)| f(offset + j, item))
                        .collect();
                    (out, busy.elapsed().as_secs_f64())
                }));
            }
            // Joining in spawn order is the fixed-order merge: worker w's
            // fragment always lands at shard w's offsets, so the
            // concatenation below is item-ordered by construction.
            let fragments: Vec<(Vec<R>, f64)> = handles
                .into_iter()
                .map(|h| h.join().expect("runtime worker panicked"))
                .collect();
            let merge = Instant::now();
            let mut worker_profiles = Vec::with_capacity(fragments.len());
            for (w, (fragment, busy_secs)) in fragments.into_iter().enumerate() {
                self.record_worker(w, fragment.len(), busy_secs);
                worker_profiles.push(WorkerProfile {
                    items: fragment.len(),
                    busy_secs,
                });
                results.extend(fragment);
            }
            let merge_secs = merge.elapsed().as_secs_f64();
            self.telemetry
                .histogram("runtime.merge_secs")
                .record(merge_secs);
            *self.profile.lock().expect("runtime profile poisoned") = ScatterProfile {
                workers: worker_profiles,
                merge_secs,
            };
        });
        results
    }

    /// Apply `f` once per shard — `f(shard_start, shard_slice)` — and
    /// return the per-shard results **in shard order**.
    ///
    /// Where [`Runtime::scatter`] hands a worker one item at a time, this
    /// hands it its whole contiguous slice, letting the callee process the
    /// shard collectively (the lane-batched rollout source steps all lanes
    /// of a shard through one batched forward per env step). The split is
    /// [`Runtime::shards`], so which items a shard covers — and therefore
    /// the result layout — depends only on `(items.len(), workers)`, never
    /// on scheduling.
    pub fn scatter_shards<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut [T]) -> R + Sync,
    {
        let shards = self.shards(items.len());
        self.telemetry
            .gauge("runtime.workers")
            .set(self.workers as f64);
        self.telemetry.counter("runtime.scatter.calls").inc();
        if shards.len() <= 1 {
            let n = items.len();
            let busy = Instant::now();
            let out = if n == 0 {
                Vec::new()
            } else {
                vec![f(0, items)]
            };
            let busy_secs = busy.elapsed().as_secs_f64();
            self.record_worker(0, n, busy_secs);
            self.telemetry.histogram("runtime.merge_secs").record(0.0);
            *self.profile.lock().expect("runtime profile poisoned") = ScatterProfile {
                workers: vec![WorkerProfile {
                    items: n,
                    busy_secs,
                }],
                merge_secs: 0.0,
            };
            return out;
        }

        let mut results: Vec<R> = Vec::with_capacity(shards.len());
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = items;
            let mut handles = Vec::with_capacity(shards.len());
            for range in &shards {
                let (shard, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let offset = range.start;
                handles.push(scope.spawn(move || {
                    let busy = Instant::now();
                    let n = shard.len();
                    let out = f(offset, shard);
                    (out, n, busy.elapsed().as_secs_f64())
                }));
            }
            // Join in spawn order: result w is always shard w's.
            let fragments: Vec<(R, usize, f64)> = handles
                .into_iter()
                .map(|h| h.join().expect("runtime worker panicked"))
                .collect();
            let merge = Instant::now();
            let mut worker_profiles = Vec::with_capacity(fragments.len());
            for (w, (out, items, busy_secs)) in fragments.into_iter().enumerate() {
                self.record_worker(w, items, busy_secs);
                worker_profiles.push(WorkerProfile { items, busy_secs });
                results.push(out);
            }
            let merge_secs = merge.elapsed().as_secs_f64();
            self.telemetry
                .histogram("runtime.merge_secs")
                .record(merge_secs);
            *self.profile.lock().expect("runtime profile poisoned") = ScatterProfile {
                workers: worker_profiles,
                merge_secs,
            };
        });
        results
    }

    fn record_worker(&self, worker: usize, items: usize, busy_secs: f64) {
        let t = &self.telemetry;
        t.counter(&format!("runtime.worker.{worker}.items"))
            .add(items as u64);
        t.histogram(&format!("runtime.worker.{worker}.busy_secs"))
            .record(busy_secs);
    }
}

/// A lock-sharded container: a power-of-two number of independently locked
/// slots of `T`, with slot selection by a 64-bit key.
///
/// Shared state touched by every scatter worker (such as the display cache)
/// would serialize the pool behind one mutex; sharding by key lets workers
/// touching different keys proceed in parallel. Slot selection is a pure
/// function of the key, so *which* lock guards a key never depends on
/// scheduling — only lock wait times do, and those are invisible to results.
pub struct Sharded<T> {
    shards: Vec<std::sync::Mutex<T>>,
    mask: u64,
}

impl<T> std::fmt::Debug for Sharded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sharded")
            .field("n_shards", &self.shards.len())
            .finish()
    }
}

impl<T> Sharded<T> {
    /// Create `n_shards` slots (rounded up to a power of two, at least 1),
    /// each initialized by `init`.
    pub fn new(n_shards: usize, mut init: impl FnMut() -> T) -> Self {
        let n = n_shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| std::sync::Mutex::new(init())).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of slots.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Slot index for a key: an avalanche mix of the key masked to the
    /// shard count (pure, stable).
    pub fn shard_of(&self, key: u64) -> usize {
        (splitmix64(key) & self.mask) as usize
    }

    /// Run `f` with the slot for `key` locked.
    pub fn with<R>(&self, key: u64, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.shards[self.shard_of(key)]
            .lock()
            .expect("sharded slot poisoned");
        f(&mut guard)
    }

    /// Fold over all slots in index order (each locked in turn) — for
    /// whole-container queries such as entry counts.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &mut T) -> A) -> A {
        let mut acc = init;
        for slot in &self.shards {
            let mut guard = slot.lock().expect("sharded slot poisoned");
            acc = f(acc, &mut guard);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn shards_are_contiguous_and_balanced() {
        for workers in 1..=8 {
            for n in 0..40 {
                let rt = Runtime::new(workers).with_telemetry(Arc::new(MetricsRegistry::new()));
                let shards = rt.shards(n);
                if n == 0 {
                    assert!(shards.is_empty());
                    continue;
                }
                assert!(shards.len() <= workers);
                assert_eq!(shards[0].start, 0);
                assert_eq!(shards.last().unwrap().end, n);
                let mut lens = Vec::new();
                for pair in shards.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "shards must be contiguous");
                }
                for s in &shards {
                    assert!(!s.is_empty(), "no empty shards for n={n} workers={workers}");
                    lens.push(s.len());
                }
                let min = lens.iter().min().unwrap();
                let max = lens.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced shards {lens:?}");
            }
        }
    }

    #[test]
    fn scatter_shards_covers_items_in_order_for_any_worker_count() {
        for workers in [1, 2, 3, 4, 8, 23, 64] {
            let telemetry = Arc::new(MetricsRegistry::new());
            let rt = Runtime::new(workers).with_telemetry(Arc::clone(&telemetry));
            let mut items: Vec<u64> = (0..23).collect();
            let fragments = rt.scatter_shards(&mut items, |offset, shard| {
                for (i, item) in shard.iter_mut().enumerate() {
                    // each worker sees the item the offset claims it does
                    assert_eq!(*item, (offset + i) as u64);
                    *item += 100;
                }
                (offset, shard.len())
            });
            // Fragments come back in shard order and tile 0..23 exactly.
            let mut next = 0usize;
            for &(offset, len) in &fragments {
                assert_eq!(offset, next);
                next += len;
            }
            assert_eq!(next, 23);
            assert_eq!(fragments.len(), rt.shards(23).len());
            // Mutations landed on the right items.
            let expect: Vec<u64> = (100..123).collect();
            assert_eq!(items, expect);
            assert_eq!(telemetry.counter("runtime.scatter.calls").get(), 1);
            let profile = rt.last_profile();
            assert_eq!(profile.workers.len(), fragments.len());
            assert_eq!(profile.workers.iter().map(|w| w.items).sum::<usize>(), 23);
        }
    }

    #[test]
    fn scatter_shards_empty_input_yields_no_fragments() {
        let rt = Runtime::new(4).with_telemetry(Arc::new(MetricsRegistry::new()));
        let mut items: Vec<u32> = Vec::new();
        let out: Vec<usize> = rt.scatter_shards(&mut items, |_, shard| shard.len());
        assert!(out.is_empty());
    }

    #[test]
    fn scatter_preserves_item_order_for_any_worker_count() {
        let reference: Vec<u64> = (0..23).map(|i| splitmix64(i as u64)).collect();
        for workers in [1, 2, 3, 4, 8, 23, 64] {
            let rt = Runtime::new(workers).with_telemetry(Arc::new(MetricsRegistry::new()));
            let mut items: Vec<u64> = (0..23).collect();
            let out = rt.scatter(&mut items, |i, item| {
                *item += 1; // mutation must also land on the right item
                splitmix64(i as u64)
            });
            assert_eq!(out, reference, "workers={workers}");
            assert_eq!(items, (1..=23).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn scatter_records_per_worker_telemetry() {
        let registry = Arc::new(MetricsRegistry::new());
        let rt = Runtime::new(4).with_telemetry(Arc::clone(&registry));
        let mut items: Vec<usize> = (0..10).collect();
        rt.scatter(&mut items, |i, _| i);
        let snap = registry.snapshot();
        let total: u64 = (0..4)
            .map(|w| snap.counter(&format!("runtime.worker.{w}.items")).unwrap())
            .sum();
        assert_eq!(total, 10);
        assert_eq!(snap.counter("runtime.scatter.calls"), Some(1));
        assert!(registry.histogram("runtime.merge_secs").count() >= 1);
    }

    #[test]
    fn scatter_profile_reports_exact_worker_shares() {
        let rt = Runtime::new(4).with_telemetry(Arc::new(MetricsRegistry::new()));
        assert!(rt.last_profile().workers.is_empty(), "no scatter yet");
        let mut items: Vec<usize> = (0..10).collect();
        rt.scatter(&mut items, |i, _| i);
        let profile = rt.last_profile();
        assert_eq!(profile.workers.len(), 4);
        assert_eq!(profile.workers.iter().map(|w| w.items).sum::<usize>(), 10);
        assert!(profile.workers.iter().all(|w| w.busy_secs >= 0.0));
        assert!(profile.merge_secs >= 0.0);
        // Clones share the profile slot; the serial path also records one.
        let serial = Runtime::new(1).with_telemetry(Arc::new(MetricsRegistry::new()));
        let clone = serial.clone();
        serial.scatter(&mut items, |i, _| i);
        assert_eq!(clone.last_profile().workers.len(), 1);
        assert_eq!(clone.last_profile().workers[0].items, 10);
    }

    #[test]
    fn scatter_handles_empty_and_single_item() {
        let rt = Runtime::new(4).with_telemetry(Arc::new(MetricsRegistry::new()));
        let mut none: Vec<u8> = Vec::new();
        assert!(rt.scatter(&mut none, |_, _| 0u8).is_empty());
        let mut one = vec![7u8];
        assert_eq!(rt.scatter(&mut one, |i, v| (i, *v)), vec![(0, 7)]);
    }

    #[test]
    fn sharded_routes_keys_stably_and_covers_all_slots() {
        let s: Sharded<Vec<u64>> = Sharded::new(3, Vec::new); // rounds up to 4
        assert_eq!(s.n_shards(), 4);
        for key in 0..256u64 {
            assert_eq!(s.shard_of(key), s.shard_of(key), "slot choice is pure");
            s.with(key, |v| v.push(key));
        }
        let (total, nonempty) = s.fold((0usize, 0usize), |(t, n), v| {
            (t + v.len(), n + usize::from(!v.is_empty()))
        });
        assert_eq!(total, 256);
        assert_eq!(nonempty, 4, "256 mixed keys should land in every slot");
    }

    #[test]
    fn stream_seed_is_a_pure_function() {
        assert_eq!(stream_seed(42, 3, 17), stream_seed(42, 3, 17));
        assert_ne!(stream_seed(42, 3, 17), stream_seed(42, 3, 18));
        assert_ne!(stream_seed(42, 3, 17), stream_seed(42, 4, 17));
        assert_ne!(stream_seed(42, 3, 17), stream_seed(43, 3, 17));
    }

    #[test]
    fn reserved_stream_tags_are_distinct() {
        let tags = [STREAM_ENV, STREAM_INIT, STREAM_EVAL];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    proptest! {
        /// The determinism contract's randomness half: for any base seed,
        /// the streams assigned to distinct (lane, iteration) coordinates
        /// — including the reserved domain tags — never collide over a
        /// training-scale grid.
        #[test]
        fn streams_never_collide_across_lane_and_iteration(base in any::<u64>()) {
            let lanes = 16u64;
            let mut seen = HashSet::new();
            for lane in 0..lanes {
                for iteration in (0..64).chain([STREAM_ENV, STREAM_INIT, STREAM_EVAL]) {
                    let seed = stream_seed(base, lane, iteration);
                    prop_assert!(
                        seen.insert(seed),
                        "seed collision at lane {} iteration {}",
                        lane,
                        iteration
                    );
                }
            }
        }

        /// Different base seeds produce different streams at the same
        /// coordinates (no base is silently absorbed by the mixing).
        #[test]
        fn distinct_bases_diverge(a in any::<u64>(), b in any::<u64>()) {
            if a != b {
                prop_assert!(stream_seed(a, 0, 0) != stream_seed(b, 0, 0));
            }
        }
    }
}
