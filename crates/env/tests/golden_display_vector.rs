//! Golden snapshot of the [`DisplayVector`] encoding layout.
//!
//! These assertions pin the *exact* byte layout the policy network and the
//! display cache both consume: field order within each per-attribute block,
//! the per-attribute width, the global-feature block, and the three-display
//! observation concatenation. The dataset is built from powers of two so
//! every expected feature is exactly representable and the comparisons can
//! be bit-exact — if any of these fail after an encoder change, trained
//! checkpoints and cached displays are invalidated and the change needs a
//! version bump, not a test update.

use atena_dataframe::{AggFunc, AttrRole, CmpOp, DataFrame, Predicate, Value};
use atena_env::{Display, DisplaySpec, DisplayVector, EdaAction, EdaEnv, EnvConfig};

/// 8 rows, 2 attributes, all frequencies powers of two:
/// `cat` = a,a,a,a,b,b,b,b — `num` = 0..8 (all distinct).
fn base() -> DataFrame {
    DataFrame::builder()
        .str(
            "cat",
            AttrRole::Categorical,
            (0..8).map(|i| Some(if i < 4 { "a" } else { "b" })),
        )
        .int("num", AttrRole::Numeric, (0..8).map(|i| Some(i as i64)))
        .build()
        .unwrap()
}

#[test]
fn layout_constants() {
    // Per attribute: [normalized entropy, distinct ratio, null ratio, flag].
    assert_eq!(DisplayVector::PER_ATTR, 4);
    // Globals: [n_groups (log-squashed), group-size mean, group-size
    // variance (squashed cv²), surviving-rows ratio].
    assert_eq!(DisplayVector::GLOBALS, 4);
    assert_eq!(DisplayVector::dim_for(2), 12);
    assert_eq!(DisplayVector::zeros(2).as_slice(), &[0.0; 12]);
}

#[test]
fn root_display_vector_is_bit_exact() {
    let root = Display::root(&base());
    #[rustfmt::skip]
    let expected = [
        // cat: uniform over 2 tokens → entropy 1 bit / log2(2) = 1.0,
        // 2 distinct of 8 rows, no nulls, not grouped.
        1.0, 0.25, 0.0, 0.0,
        // num: uniform over 8 distinct → 3 bits / log2(8) = 1.0.
        1.0, 1.0, 0.0, 0.0,
        // No grouping; all 8 of 8 rows survive.
        0.0, 0.0, 0.0, 1.0,
    ];
    assert_eq!(root.vector.as_slice(), &expected);
}

#[test]
fn filtered_display_vector_is_bit_exact() {
    let spec = DisplaySpec::default().with_predicate(Predicate {
        attr: "cat".into(),
        op: CmpOp::Eq,
        term: Value::Str("a".into()),
    });
    let display = Display::materialize(&base(), spec).unwrap();
    #[rustfmt::skip]
    let expected = [
        // cat: single token left → entropy 0, 1 distinct of 4 rows.
        0.0, 0.25, 0.0, 0.0,
        // num: 4 distinct of 4 rows, still uniform.
        1.0, 1.0, 0.0, 0.0,
        // No grouping; 4 of 8 base rows survive.
        0.0, 0.0, 0.0, 0.5,
    ];
    assert_eq!(display.vector.as_slice(), &expected);
}

#[test]
fn grouped_display_vector_is_bit_exact() {
    let spec = DisplaySpec::default().with_grouping("cat".into(), AggFunc::Count, "num".into());
    let display = Display::materialize(&base(), spec).unwrap();
    let g = display.grouping.as_ref().expect("grouped display");
    assert_eq!(g.n_groups, 2);
    assert_eq!(g.size_mean, 4.0);
    assert_eq!(g.size_variance, 0.0);
    // First global is ln(1 + n_groups) / ln(1 + base_rows); asserted via
    // the same expression so the comparison stays bit-exact.
    let n_groups_feature = (1.0 + 2.0f64).ln() / (1.0 + 8.0f64).ln();
    #[rustfmt::skip]
    let expected = [
        // Stats encode the *ungrouped* data view (all 8 rows); flag 1.0
        // marks the group key...
        1.0, 0.25, 0.0, 1.0,
        // ...and flag 0.2 the aggregated attribute.
        1.0, 1.0, 0.0, 0.2,
        // [log-squashed n_groups, mean 4/8, cv²=0, all rows survive].
        n_groups_feature, 0.5, 0.0, 1.0,
    ];
    assert_eq!(display.vector.as_slice(), &expected);
}

/// The observation is exactly three display vectors, most recent first,
/// zero-padded while the session is shorter than the history window.
#[test]
fn observation_concatenates_three_displays_most_recent_first() {
    let mut env = EdaEnv::new(
        base(),
        EnvConfig {
            episode_len: 4,
            n_bins: 4,
            history_window: 3,
            seed: 7,
        },
    );
    let obs = env.reset();
    let dim = DisplayVector::dim_for(2);
    assert_eq!(env.observation_dim(), 3 * dim);
    assert_eq!(obs.len(), 3 * dim);
    let root_f32: Vec<f32> = env
        .session()
        .display(0)
        .vector
        .as_slice()
        .iter()
        .map(|&v| v as f32)
        .collect();
    assert_eq!(
        &obs[..dim],
        &root_f32[..],
        "slot 0 holds the current display"
    );
    assert!(
        obs[dim..].iter().all(|&v| v == 0.0),
        "short history is zero-padded"
    );

    // One applied op shifts the root into slot 1.
    let t = env.step(&EdaAction::Group {
        key: 0,
        func: 0,
        agg: 1,
    });
    let current: Vec<f32> = env
        .session()
        .current()
        .vector
        .as_slice()
        .iter()
        .map(|&v| v as f32)
        .collect();
    assert_eq!(&t.observation[..dim], &current[..]);
    assert_eq!(&t.observation[dim..2 * dim], &root_f32[..]);
    assert!(t.observation[2 * dim..].iter().all(|&v| v == 0.0));
}
