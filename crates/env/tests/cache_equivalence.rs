//! Property tests locking the display cache's soundness contract
//! (DESIGN.md §4i): the cache is pure memoization, so cache capacity and
//! residency may change *speed* but never *transcripts*. Any divergence
//! between a cached and an uncached run is a cache-soundness bug — see
//! KNOWN_FAILURES.md; these assertions must never be loosened to "close
//! enough".

use atena_dataframe::{AttrRole, DataFrame};
use atena_env::{DisplayCache, EdaAction, EdaEnv, EnvConfig, OpOutcome, ResolvedOp};
use proptest::prelude::*;
use std::sync::Arc;

/// A small dataset with mixed types, nulls, and skewed frequencies so that
/// filters, groups, and binning all have real work to do.
fn base(n: usize) -> DataFrame {
    DataFrame::builder()
        .str(
            "cat",
            AttrRole::Categorical,
            (0..n).map(|i| {
                if i % 13 == 0 {
                    None
                } else {
                    Some(["a", "b", "c", "d", "e"][i * i % 5])
                }
            }),
        )
        .int(
            "num",
            AttrRole::Numeric,
            (0..n).map(|i| Some((i as i64 * 7) % 19)),
        )
        .bool(
            "flag",
            AttrRole::Categorical,
            (0..n).map(|i| Some(i % 4 == 0)),
        )
        .build()
        .unwrap()
}

fn action_strategy() -> impl Strategy<Value = EdaAction> {
    prop_oneof![
        (0usize..3, 0usize..8, 0usize..6).prop_map(|(attr, op, bin)| EdaAction::Filter {
            attr,
            op,
            bin
        }),
        (0usize..3, 0usize..5, 0usize..3).prop_map(|(key, func, agg)| EdaAction::Group {
            key,
            func,
            agg
        }),
        Just(EdaAction::Back),
    ]
}

/// Everything a step emits that the determinism contract covers: the
/// resolved op, the outcome, and every observation bit.
type StepRecord = (ResolvedOp, OpOutcome, Vec<u32>, usize, bool);

/// Run one full episode and record each transition bit-exactly.
fn transcript(
    actions: &[EdaAction],
    seed: u64,
    cache: Option<Arc<DisplayCache>>,
) -> Vec<StepRecord> {
    let config = EnvConfig {
        episode_len: actions.len(),
        n_bins: 5,
        history_window: 3,
        seed,
    };
    let mut env = EdaEnv::new(base(64), config);
    if let Some(cache) = cache {
        env = env.with_display_cache(cache);
    }
    env.reset_with_seed(seed);
    actions
        .iter()
        .map(|action| {
            let t = env.step(action);
            (
                t.op,
                t.outcome,
                t.observation.iter().map(|x| x.to_bits()).collect(),
                t.step,
                t.done,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For arbitrary action sequences and seeds, the transcript — resolved
    /// ops, outcomes, and observation bits — is identical with no cache,
    /// a single-entry cache (maximal eviction churn), and a large cache,
    /// and identical again when replayed against an already-warm cache.
    #[test]
    fn cache_capacity_never_changes_transcripts(
        actions in prop::collection::vec(action_strategy(), 1..14),
        seed in 0u64..500,
    ) {
        let uncached = transcript(&actions, seed, None);

        let tiny = Arc::new(DisplayCache::new(1));
        prop_assert_eq!(&transcript(&actions, seed, Some(tiny)), &uncached);

        let large = Arc::new(DisplayCache::new(1024));
        prop_assert_eq!(
            &transcript(&actions, seed, Some(Arc::clone(&large))),
            &uncached
        );
        // Warm replay: every lookup that can hit now does, and the episode
        // must still be bit-identical to the cold uncached run.
        prop_assert_eq!(&transcript(&actions, seed, Some(Arc::clone(&large))), &uncached);
        prop_assert!(large.stats().hits > 0, "warm replay produced no hits");
    }

    /// Lanes sharing one cache stay bit-identical to unshared runs even
    /// when their episodes interleave arbitrarily — residency changes from
    /// another lane's traffic only ever turn recomputation into a hit.
    #[test]
    fn interleaved_lanes_sharing_a_cache_match_solo_runs(
        actions_a in prop::collection::vec(action_strategy(), 1..10),
        actions_b in prop::collection::vec(action_strategy(), 1..10),
        seed in 0u64..200,
    ) {
        let solo_a = transcript(&actions_a, seed, None);
        let solo_b = transcript(&actions_b, seed.wrapping_add(1), None);

        let shared = Arc::new(DisplayCache::new(256));
        let mk = |actions: &[EdaAction], seed: u64| {
            let config = EnvConfig {
                episode_len: actions.len(),
                n_bins: 5,
                history_window: 3,
                seed,
            };
            let mut env = EdaEnv::new(base(64), config)
                .with_display_cache(Arc::clone(&shared));
            env.reset_with_seed(seed);
            env
        };
        let mut env_a = mk(&actions_a, seed);
        let mut env_b = mk(&actions_b, seed.wrapping_add(1));
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        // Interleave the two lanes step by step.
        let record = |t: atena_env::Transition| {
            (
                t.op,
                t.outcome,
                t.observation.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
                t.step,
                t.done,
            )
        };
        for i in 0..actions_a.len().max(actions_b.len()) {
            if let Some(action) = actions_a.get(i) {
                got_a.push(record(env_a.step(action)));
            }
            if let Some(action) = actions_b.get(i) {
                got_b.push(record(env_b.step(action)));
            }
        }
        prop_assert_eq!(&got_a, &solo_a);
        prop_assert_eq!(&got_b, &solo_b);
    }
}
