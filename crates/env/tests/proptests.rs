//! Property-based tests for the EDA environment: arbitrary action
//! sequences must never corrupt the session state.

use atena_dataframe::{AttrRole, DataFrame};
use atena_env::{DisplayVector, EdaAction, EdaEnv, EnvConfig, FrequencyBins, OpOutcome};
use proptest::prelude::*;

/// A small dataset with mixed types and nulls.
fn base(n: usize) -> DataFrame {
    DataFrame::builder()
        .str(
            "cat",
            AttrRole::Categorical,
            (0..n).map(|i| {
                if i % 11 == 0 {
                    None
                } else {
                    Some(["a", "b", "c", "d"][i % 4])
                }
            }),
        )
        .int(
            "num",
            AttrRole::Numeric,
            (0..n).map(|i| Some((i as i64 * 7) % 23)),
        )
        .bool(
            "flag",
            AttrRole::Categorical,
            (0..n).map(|i| Some(i % 3 == 0)),
        )
        .build()
        .unwrap()
}

/// Strategy generating arbitrary (possibly invalid) actions.
fn action_strategy() -> impl Strategy<Value = EdaAction> {
    prop_oneof![
        (0usize..4, 0usize..10, 0usize..8).prop_map(|(attr, op, bin)| EdaAction::Filter {
            attr,
            op: op % 8,
            bin
        }),
        (0usize..4, 0usize..6, 0usize..4).prop_map(|(key, func, agg)| EdaAction::Group {
            key,
            func: func % 5,
            agg
        }),
        Just(EdaAction::Back),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any action sequence completes the episode without panicking, with
    /// step counts, observation dimensions, and history lengths consistent.
    #[test]
    fn arbitrary_episodes_are_safe(
        actions in prop::collection::vec(action_strategy(), 1..20),
        seed in 0u64..1000,
    ) {
        let mut env = EdaEnv::new(
            base(60),
            EnvConfig { episode_len: actions.len(), n_bins: 6, history_window: 3, seed },
        );
        let obs = env.reset();
        let dim = env.observation_dim();
        prop_assert_eq!(obs.len(), dim);
        for (i, action) in actions.iter().enumerate() {
            let t = env.step(action);
            prop_assert_eq!(t.step, i);
            prop_assert_eq!(t.observation.len(), dim);
            prop_assert!(t.observation.iter().all(|v| v.is_finite()));
            prop_assert_eq!(t.done, i + 1 == actions.len());
        }
        prop_assert!(env.done());
        prop_assert_eq!(env.session().ops().len(), actions.len());
        prop_assert_eq!(env.session().history().len(), actions.len() + 1);
    }

    /// The session tree's parent links always form a rooted forest: every
    /// non-root display has a parent with a smaller id.
    #[test]
    fn session_tree_is_well_formed(
        actions in prop::collection::vec(action_strategy(), 1..25),
    ) {
        let mut env = EdaEnv::new(
            base(40),
            EnvConfig { episode_len: actions.len(), n_bins: 4, history_window: 3, seed: 1 },
        );
        env.reset();
        for action in &actions {
            env.step(action);
        }
        let session = env.session();
        prop_assert_eq!(session.parent_of(0), None);
        for id in 1..session.n_displays() {
            let parent = session.parent_of(id);
            prop_assert!(parent.is_some());
            prop_assert!(parent.unwrap() < id);
        }
        // Current display is a valid node.
        prop_assert!(session.current_id() < session.n_displays());
    }

    /// BACK never creates displays; filters/groups create at most one each.
    #[test]
    fn display_count_is_bounded_by_ops(
        actions in prop::collection::vec(action_strategy(), 1..25),
    ) {
        let mut env = EdaEnv::new(
            base(40),
            EnvConfig { episode_len: actions.len(), n_bins: 4, history_window: 3, seed: 2 },
        );
        env.reset();
        let mut creating_ops = 0usize;
        for action in &actions {
            let t = env.step(action);
            if !matches!(action, EdaAction::Back)
                && matches!(t.outcome, OpOutcome::Applied)
            {
                creating_ops += 1;
            }
        }
        prop_assert_eq!(env.session().n_displays(), 1 + creating_ops);
    }

    /// Display vectors always have the advertised dimension and stay in
    /// sane numeric ranges.
    #[test]
    fn display_vectors_are_bounded(
        actions in prop::collection::vec(action_strategy(), 1..15),
    ) {
        let mut env = EdaEnv::new(
            base(80),
            EnvConfig { episode_len: actions.len(), n_bins: 5, history_window: 3, seed: 3 },
        );
        env.reset();
        for action in &actions {
            env.step(action);
        }
        let dim = DisplayVector::dim_for(3);
        for id in 0..env.session().n_displays() {
            let v = &env.session().display(id).vector;
            prop_assert_eq!(v.dim(), dim);
            for &x in v.as_slice() {
                prop_assert!(x.is_finite());
                prop_assert!((-0.001..=1.001).contains(&x), "feature out of range: {}", x);
            }
        }
    }

    /// Frequency bins partition the distinct tokens of any column: every
    /// distinct non-null token appears in exactly one bin, and the union of
    /// the bins is exactly the distinct-token set.
    #[test]
    fn bins_partition_tokens(
        values in prop::collection::vec(prop::option::of(0i64..30), 1..200),
        n_bins in 1usize..12,
    ) {
        let col = atena_dataframe::Column::from_ints(values.clone());
        let bins = FrequencyBins::build(&col, n_bins);
        let mut binned: Vec<i64> = (0..bins.n_bins())
            .flat_map(|i| bins.bin(i).iter().map(|v| match v {
                atena_dataframe::Value::Int(x) => *x,
                other => panic!("unexpected token {other:?}"),
            }))
            .collect();
        let n_binned = binned.len();
        binned.sort_unstable();
        binned.dedup();
        prop_assert_eq!(n_binned, binned.len(), "a token appears in two bins");
        let mut distinct: Vec<i64> = values.iter().flatten().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(binned, distinct);
    }

    /// Bin index is monotone in token frequency: any token in a higher bin
    /// occurs at least as often as any token in a lower bin.
    #[test]
    fn bin_frequencies_are_monotone(
        values in prop::collection::vec(prop::option::of(0i64..12), 1..250),
        n_bins in 1usize..10,
    ) {
        let col = atena_dataframe::Column::from_ints(values.clone());
        let bins = FrequencyBins::build(&col, n_bins);
        let freq = |v: &atena_dataframe::Value| -> usize {
            let atena_dataframe::Value::Int(x) = v else { panic!("int column") };
            values.iter().flatten().filter(|&&y| y == *x).count()
        };
        let mut prev_max: Option<usize> = None;
        for i in 0..bins.n_bins() {
            let fs: Vec<usize> = bins.bin(i).iter().map(freq).collect();
            if let (Some(prev), Some(&min)) = (prev_max, fs.iter().min()) {
                prop_assert!(
                    min >= prev,
                    "bin {} holds a token rarer (f={}) than one in a lower bin (f={})",
                    i, min, prev
                );
            }
            if let Some(&max) = fs.iter().max() {
                prev_max = Some(prev_max.map_or(max, |p| p.max(max)));
            }
        }
    }

    /// Binning is a function of token *frequencies*, not row order: any
    /// permutation of the rows yields bit-identical bins.
    #[test]
    fn bins_are_row_permutation_invariant(
        values in prop::collection::vec(prop::option::of(0i64..15), 1..120),
        shuffle_seed in 0u64..1000,
        n_bins in 1usize..8,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut shuffled = values.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(shuffle_seed));
        let a = FrequencyBins::build(&atena_dataframe::Column::from_ints(values), n_bins);
        let b = FrequencyBins::build(&atena_dataframe::Column::from_ints(shuffled), n_bins);
        prop_assert_eq!(a.n_bins(), b.n_bins());
        for i in 0..a.n_bins() {
            prop_assert_eq!(a.bin(i), b.bin(i), "bin {} differs after permutation", i);
        }
    }
}
