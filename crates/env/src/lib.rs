//! # atena-env
//!
//! The episodic MDP environment for exploratory data analysis (paper §3–4):
//!
//! - a parameterized **action space** `{FILTER, GROUP, BACK}` with per-
//!   parameter value domains ([`ActionSpace`], [`EdaAction`]);
//! - **logarithmic frequency binning** of filter terms ([`FrequencyBins`],
//!   paper §5), so the agent chooses a frequency range instead of a token;
//! - **displays** and their fixed-size numeric encodings ([`Display`],
//!   [`DisplayVector`]);
//! - a **session tree** with BACK semantics ([`SessionTree`]);
//! - a **content-addressed display cache** ([`DisplayCache`]) memoizing
//!   materialized displays by `(dataset fingerprint, operation path)` across
//!   rollout lanes and server requests (DESIGN.md §4i);
//! - the environment itself ([`EdaEnv`]) with a resolve → preview → commit
//!   step pipeline that supports both RL training and greedy lookahead
//!   baselines, and a [`RewardModel`] trait implemented by `atena-reward`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod binning;
mod cache;
mod display;
mod env;
mod session;

pub use action::{ActionSpace, EdaAction, FlatTermAction, HeadSizes, OpType, ResolvedOp};
pub use binning::FrequencyBins;
pub use cache::{display_key, DisplayCache, DisplayCacheStats, LruCache};
pub use display::{Display, DisplaySpec, DisplayVector, GroupingInfo};
pub use env::{
    EdaEnv, EnvConfig, NullReward, PreviewedStep, RewardBreakdown, RewardModel, StepInfo,
    Transition,
};
pub use session::{AppliedOp, OpOutcome, SessionTree};
