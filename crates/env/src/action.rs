//! The parameterized EDA action space (paper §4.1).
//!
//! `OP = {FILTER, GROUP, BACK}`. FILTER takes an attribute, a comparison
//! operator, and a term (chosen indirectly through a frequency bin, §5);
//! GROUP takes a group-by attribute, an aggregation function, and an
//! attribute to aggregate.

use atena_dataframe::{AggFunc, CmpOp, DataFrame, Predicate, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operation types of the action space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpType {
    /// Select a data subset.
    Filter,
    /// Group and aggregate.
    Group,
    /// Backtrack to the previous display.
    Back,
}

impl OpType {
    /// Canonical order of the operation-type parameter domain.
    pub const ALL: [OpType; 3] = [OpType::Filter, OpType::Group, OpType::Back];
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpType::Filter => f.write_str("FILTER"),
            OpType::Group => f.write_str("GROUP"),
            OpType::Back => f.write_str("BACK"),
        }
    }
}

/// An action expressed in parameter-domain *indices* — the form the policy
/// network emits (one index per softmax segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdaAction {
    /// `FILTER(attrs[attr], CmpOp::ALL[op], bin)`.
    Filter {
        /// Index into the attribute domain.
        attr: usize,
        /// Index into [`CmpOp::ALL`].
        op: usize,
        /// Frequency-bin index in `0..n_bins`.
        bin: usize,
    },
    /// `GROUP(attrs[key], AggFunc::ALL[func], attrs[agg])`.
    Group {
        /// Index of the group-by attribute.
        key: usize,
        /// Index into [`AggFunc::ALL`].
        func: usize,
        /// Index of the aggregated attribute.
        agg: usize,
    },
    /// Backtrack.
    Back,
}

impl EdaAction {
    /// Operation type of the action.
    pub fn op_type(&self) -> OpType {
        match self {
            EdaAction::Filter { .. } => OpType::Filter,
            EdaAction::Group { .. } => OpType::Group,
            EdaAction::Back => OpType::Back,
        }
    }
}

/// A fully resolved operation: indices mapped to names, and the filter term
/// materialized from its frequency bin. This is what notebooks show and
/// what coherency rules inspect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResolvedOp {
    /// A concrete filter predicate.
    Filter(Predicate),
    /// A concrete grouping.
    Group {
        /// Group-by attribute name.
        key: String,
        /// Aggregation function.
        func: AggFunc,
        /// Aggregated attribute name.
        agg: String,
    },
    /// Backtrack.
    Back,
}

impl ResolvedOp {
    /// Operation type of the resolved op.
    pub fn op_type(&self) -> OpType {
        match self {
            ResolvedOp::Filter(_) => OpType::Filter,
            ResolvedOp::Group { .. } => OpType::Group,
            ResolvedOp::Back => OpType::Back,
        }
    }

    /// The simple verbal description shown next to each notebook entry
    /// (paper §3: "each operation is accompanied by a simple verbal
    /// description").
    pub fn caption(&self) -> String {
        match self {
            ResolvedOp::Filter(p) => format!("Filter by {p}"),
            ResolvedOp::Group { key, func, agg } => {
                format!("Group by '{key}', show {func}({agg})")
            }
            ResolvedOp::Back => "Go back to the previous display".to_string(),
        }
    }
}

impl fmt::Display for ResolvedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolvedOp::Filter(p) => write!(f, "FILTER({p})"),
            ResolvedOp::Group { key, func, agg } => write!(f, "GROUP('{key}', {func}, '{agg}')"),
            ResolvedOp::Back => f.write_str("BACK()"),
        }
    }
}

/// Sizes of every softmax segment of the twofold output layer, in the
/// canonical order: op-type, filter-attr, filter-op, filter-bin, group-key,
/// agg-func, agg-attr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeadSizes {
    /// |OP| = 3.
    pub op: usize,
    /// |Attr| — filter attribute domain.
    pub filter_attr: usize,
    /// |CmpOp| = 8.
    pub filter_op: usize,
    /// B — number of frequency bins.
    pub filter_bin: usize,
    /// |Attr| — group-by attribute domain.
    pub group_key: usize,
    /// |AggFunc| = 5.
    pub agg_func: usize,
    /// |Attr| — aggregated attribute domain.
    pub agg_attr: usize,
}

impl HeadSizes {
    /// All head sizes in canonical order.
    pub fn as_array(&self) -> [usize; 7] {
        [
            self.op,
            self.filter_attr,
            self.filter_op,
            self.filter_bin,
            self.group_key,
            self.agg_func,
            self.agg_attr,
        ]
    }

    /// Size of the pre-output layer: `|OP| + Σ |V(p)|` (paper §5).
    pub fn pre_output_size(&self) -> usize {
        self.as_array().iter().sum()
    }
}

/// The parameter domains of the action space for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActionSpace {
    attrs: Vec<String>,
    n_bins: usize,
}

impl ActionSpace {
    /// Build the action space from a dataset's schema.
    pub fn from_frame(df: &DataFrame, n_bins: usize) -> Self {
        Self {
            attrs: df
                .schema()
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect(),
            n_bins,
        }
    }

    /// Attribute domain (column names).
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Number of frequency bins for the filter term parameter.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Sizes of all policy heads.
    pub fn head_sizes(&self) -> HeadSizes {
        HeadSizes {
            op: OpType::ALL.len(),
            filter_attr: self.attrs.len(),
            filter_op: CmpOp::ALL.len(),
            filter_bin: self.n_bins,
            group_key: self.attrs.len(),
            agg_func: AggFunc::ALL.len(),
            agg_attr: self.attrs.len(),
        }
    }

    /// Number of distinct actions in the *flat* (standard softmax)
    /// enumeration with binned filter terms — the OTS-DRL-B baseline.
    pub fn flat_size_binned(&self) -> usize {
        let a = self.attrs.len();
        a * CmpOp::ALL.len() * self.n_bins + a * AggFunc::ALL.len() * a + 1
    }

    /// Enumerate every action with binned filter terms, in a deterministic
    /// order (BACK first, then filters, then groups).
    pub fn enumerate_binned(&self) -> Vec<EdaAction> {
        let a = self.attrs.len();
        let mut out = Vec::with_capacity(self.flat_size_binned());
        out.push(EdaAction::Back);
        for attr in 0..a {
            for op in 0..CmpOp::ALL.len() {
                for bin in 0..self.n_bins {
                    out.push(EdaAction::Filter { attr, op, bin });
                }
            }
        }
        for key in 0..a {
            for func in 0..AggFunc::ALL.len() {
                for agg in 0..a {
                    out.push(EdaAction::Group { key, func, agg });
                }
            }
        }
        out
    }

    /// Enumerate actions with *explicit* filter terms restricted to the `k`
    /// most frequent tokens of each column of `df` — the OTS-DRL baseline
    /// (paper footnote 2: "we restricted the number of filter terms to the
    /// ten most common tokens in each column").
    pub fn enumerate_with_terms(&self, df: &DataFrame, k: usize) -> Vec<FlatTermAction> {
        let mut out = Vec::new();
        out.push(FlatTermAction::Back);
        for (attr_idx, attr) in self.attrs.iter().enumerate() {
            let Ok(col) = df.column(attr) else { continue };
            let mut counts: Vec<(Value, usize)> = col
                .value_counts()
                .into_iter()
                .map(|(key, c)| (key.to_value(), c))
                .collect();
            counts.sort_by(|a, b| {
                b.1.cmp(&a.1)
                    .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
            });
            counts.truncate(k);
            for (op_idx, op) in CmpOp::ALL.iter().enumerate() {
                if !op.supports(col.dtype()) {
                    continue;
                }
                for (term, _) in &counts {
                    out.push(FlatTermAction::Filter {
                        attr: attr_idx,
                        op: op_idx,
                        term: term.clone(),
                    });
                }
            }
        }
        for key in 0..self.attrs.len() {
            for func in 0..AggFunc::ALL.len() {
                for agg in 0..self.attrs.len() {
                    out.push(FlatTermAction::Group { key, func, agg });
                }
            }
        }
        out
    }

    /// Attribute name by domain index.
    pub fn attr_name(&self, idx: usize) -> Option<&str> {
        self.attrs.get(idx).map(String::as_str)
    }
}

/// An action from the flat enumeration with explicit filter terms (used by
/// the OTS-DRL baseline only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlatTermAction {
    /// Filter with a concrete term.
    Filter {
        /// Attribute domain index.
        attr: usize,
        /// Index into [`CmpOp::ALL`].
        op: usize,
        /// Concrete term value.
        term: Value,
    },
    /// Group (same indices as [`EdaAction::Group`]).
    Group {
        /// Group-by attribute index.
        key: usize,
        /// Index into [`AggFunc::ALL`].
        func: usize,
        /// Aggregated attribute index.
        agg: usize,
    },
    /// Backtrack.
    Back,
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::AttrRole;

    fn df() -> DataFrame {
        DataFrame::builder()
            .str(
                "a",
                AttrRole::Categorical,
                vec![Some("x"), Some("x"), Some("y")],
            )
            .int("b", AttrRole::Numeric, vec![Some(1), Some(2), Some(2)])
            .build()
            .unwrap()
    }

    #[test]
    fn head_sizes_and_pre_output() {
        let space = ActionSpace::from_frame(&df(), 10);
        let h = space.head_sizes();
        assert_eq!(h.op, 3);
        assert_eq!(h.filter_attr, 2);
        assert_eq!(h.filter_op, 8);
        assert_eq!(h.filter_bin, 10);
        assert_eq!(h.agg_func, 5);
        // |OP| + Σ|V(p)| = 3 + 2 + 8 + 10 + 2 + 5 + 2 = 32
        assert_eq!(h.pre_output_size(), 32);
    }

    #[test]
    fn flat_enumeration_size_matches() {
        let space = ActionSpace::from_frame(&df(), 10);
        let all = space.enumerate_binned();
        assert_eq!(all.len(), space.flat_size_binned());
        // 2*8*10 + 2*5*2 + 1 = 160 + 20 + 1
        assert_eq!(all.len(), 181);
        assert_eq!(all[0], EdaAction::Back);
    }

    #[test]
    fn term_enumeration_respects_type_support() {
        let space = ActionSpace::from_frame(&df(), 10);
        let all = space.enumerate_with_terms(&df(), 10);
        // No Contains on the int column.
        for a in &all {
            if let FlatTermAction::Filter { attr, op, .. } = a {
                let dtype = if *attr == 0 {
                    atena_dataframe::DType::Str
                } else {
                    atena_dataframe::DType::Int
                };
                assert!(CmpOp::ALL[*op].supports(dtype));
            }
        }
        // Str column: 4 supported ops × 2 tokens; Int column: 6 ops × 2 tokens.
        let n_filters = all
            .iter()
            .filter(|a| matches!(a, FlatTermAction::Filter { .. }))
            .count();
        assert_eq!(n_filters, 4 * 2 + 6 * 2);
    }

    #[test]
    fn term_enumeration_takes_top_k() {
        let space = ActionSpace::from_frame(&df(), 10);
        let all = space.enumerate_with_terms(&df(), 1);
        // Top token of "a" is "x" (2 occurrences), of "b" is 2.
        let has_x = all.iter().any(|a| {
            matches!(a, FlatTermAction::Filter { attr: 0, term: Value::Str(s), .. } if s == "x")
        });
        let has_y = all.iter().any(|a| {
            matches!(a, FlatTermAction::Filter { attr: 0, term: Value::Str(s), .. } if s == "y")
        });
        assert!(has_x && !has_y);
    }

    #[test]
    fn captions() {
        let op = ResolvedOp::Filter(Predicate::new("month", CmpOp::Eq, "January"));
        assert!(op.caption().contains("month"));
        let g = ResolvedOp::Group {
            key: "airline".into(),
            func: AggFunc::Avg,
            agg: "delay".into(),
        };
        assert_eq!(g.to_string(), "GROUP('airline', AVG, 'delay')");
        assert_eq!(ResolvedOp::Back.op_type(), OpType::Back);
    }
}
