//! Logarithmic frequency binning of filter terms (paper §5).
//!
//! The filter `term` domain — all tokens in the current display — is far too
//! large for a dedicated output node per token. Instead the agent picks one
//! of `B` *frequency ranges*; a concrete token whose frequency of appearance
//! falls in that range is then sampled uniformly at random. Token
//! frequencies are heavy-tailed (Zipfian), so the ranges are logarithmic.

use atena_dataframe::{Column, Value};
use rand::Rng;

/// Partition of a column's distinct tokens into `B` logarithmic frequency
/// bins. Bin `B-1` holds the most frequent tokens, bin `0` the rarest.
#[derive(Debug, Clone)]
pub struct FrequencyBins {
    bins: Vec<Vec<Value>>,
}

impl FrequencyBins {
    /// Bin the distinct non-null tokens of `column` by frequency.
    ///
    /// A token with frequency `f` (out of max frequency `f_max`) lands in
    /// bin `floor(B · ln(f) / ln(f_max + 1))`, clamped to `B-1` — a
    /// logarithmic division as suggested by Zipf's-law-distributed token
    /// frequencies (paper cites [31]).
    pub fn build(column: &Column, n_bins: usize) -> Self {
        assert!(n_bins > 0, "need at least one bin");
        let counts = column.value_counts();
        let mut bins = vec![Vec::new(); n_bins];
        let f_max = counts.values().copied().max().unwrap_or(0);
        if f_max == 0 {
            return Self { bins };
        }
        let denom = ((f_max + 1) as f64).ln();
        // Deterministic iteration order: sort tokens.
        let mut entries: Vec<(Value, usize)> =
            counts.into_iter().map(|(k, c)| (k.to_value(), c)).collect();
        entries.sort_by(|a, b| a.0.to_string().cmp(&b.0.to_string()).then(a.1.cmp(&b.1)));
        for (value, f) in entries {
            let idx = if denom <= 0.0 {
                0
            } else {
                (((f as f64).ln() / denom) * n_bins as f64).floor() as usize
            };
            bins[idx.min(n_bins - 1)].push(value);
        }
        Self { bins }
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Tokens in bin `idx`.
    pub fn bin(&self, idx: usize) -> &[Value] {
        &self.bins[idx]
    }

    /// True if every bin is empty (column was all nulls / empty).
    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(Vec::is_empty)
    }

    /// Sample a token uniformly at random from bin `idx`.
    ///
    /// If the requested bin is empty, the nearest non-empty bin is used
    /// (ties resolved toward lower-frequency bins), so a valid action always
    /// produces a term as long as the column has any values. Returns `None`
    /// only when all bins are empty.
    pub fn sample<R: Rng + ?Sized>(&self, idx: usize, rng: &mut R) -> Option<Value> {
        let idx = idx.min(self.bins.len().saturating_sub(1));
        let chosen = if self.bins[idx].is_empty() {
            self.nearest_non_empty(idx)?
        } else {
            idx
        };
        let bin = &self.bins[chosen];
        Some(bin[rng.gen_range(0..bin.len())].clone())
    }

    fn nearest_non_empty(&self, idx: usize) -> Option<usize> {
        let n = self.bins.len();
        for d in 1..n {
            if idx >= d && !self.bins[idx - d].is_empty() {
                return Some(idx - d);
            }
            if idx + d < n && !self.bins[idx + d].is_empty() {
                return Some(idx + d);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::ValueRef;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A column with Zipf-ish frequencies: "a"×64, "b"×8, "c"×2, "d"×1.
    fn zipf_column() -> Column {
        let mut vals = Vec::new();
        for _ in 0..64 {
            vals.push(Some("a"));
        }
        for _ in 0..8 {
            vals.push(Some("b"));
        }
        vals.push(Some("c"));
        vals.push(Some("c"));
        vals.push(Some("d"));
        Column::from_strs(vals)
    }

    #[test]
    fn frequent_tokens_land_in_high_bins() {
        let bins = FrequencyBins::build(&zipf_column(), 4);
        // "a" (f=64) must be in the top bin, "d" (f=1) in bin 0.
        assert!(bins.bin(3).contains(&Value::Str("a".into())));
        assert!(bins.bin(0).contains(&Value::Str("d".into())));
        // "b" strictly between.
        let b_bin = (0..4)
            .find(|&i| bins.bin(i).contains(&Value::Str("b".into())))
            .unwrap();
        assert!(b_bin > 0 && b_bin < 3, "b in bin {b_bin}");
    }

    #[test]
    fn all_tokens_assigned_exactly_once() {
        let bins = FrequencyBins::build(&zipf_column(), 4);
        let total: usize = (0..4).map(|i| bins.bin(i).len()).sum();
        assert_eq!(total, 4); // 4 distinct tokens
    }

    #[test]
    fn uniform_column_single_bin() {
        let col = Column::from_ints((0..10).map(Some));
        let bins = FrequencyBins::build(&col, 5);
        // All tokens have frequency 1 -> ln(1)=0 -> bin 0.
        assert_eq!(bins.bin(0).len(), 10);
        assert!(!bins.is_empty());
    }

    #[test]
    fn sampling_falls_back_to_nearest_bin() {
        let col = Column::from_ints((0..10).map(Some));
        let bins = FrequencyBins::build(&col, 5);
        let mut rng = StdRng::seed_from_u64(1);
        // Bin 4 is empty; fallback should find bin 0.
        let v = bins.sample(4, &mut rng).unwrap();
        assert!(matches!(v.as_ref(), ValueRef::Int(_)));
    }

    #[test]
    fn empty_column_yields_none() {
        let col = Column::from_strs(vec![None, None]);
        let bins = FrequencyBins::build(&col, 3);
        assert!(bins.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(bins.sample(0, &mut rng).is_none());
    }

    #[test]
    fn sample_is_uniform_within_bin() {
        let col = Column::from_ints((0..4).map(Some));
        let bins = FrequencyBins::build(&col, 2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            if let Some(Value::Int(v)) = bins.sample(0, &mut rng) {
                seen.insert(v);
            }
        }
        assert_eq!(seen.len(), 4, "all tokens should be sampled eventually");
    }

    #[test]
    fn out_of_range_bin_is_clamped() {
        let bins = FrequencyBins::build(&zipf_column(), 4);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(bins.sample(99, &mut rng).is_some());
    }
}
