//! The session tree: every display reached during an episode, with parent
//! links so `BACK` can retrace, plus the chronological operation log the
//! notebook is generated from.

use crate::action::ResolvedOp;
use crate::display::Display;
use serde::{Deserialize, Serialize};

/// What happened when an operation was applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpOutcome {
    /// The operation produced (or returned to) a display.
    Applied,
    /// The operation was ill-typed or unresolvable; the display is
    /// unchanged and the agent is expected to be penalized.
    Invalid(String),
    /// BACK at the root display: a no-op.
    BackAtRoot,
}

impl OpOutcome {
    /// True for [`OpOutcome::Applied`].
    pub fn is_applied(&self) -> bool {
        matches!(self, OpOutcome::Applied)
    }
}

/// One entry of the chronological operation log.
#[derive(Debug, Clone)]
pub struct AppliedOp {
    /// The resolved operation.
    pub op: ResolvedOp,
    /// Its outcome.
    pub outcome: OpOutcome,
    /// Display node the operation was applied from.
    pub from: usize,
    /// Display node the session moved to.
    pub to: usize,
}

/// Arena of displays visited in an episode plus the operation log.
#[derive(Debug)]
pub struct SessionTree {
    displays: Vec<Display>,
    parents: Vec<Option<usize>>,
    current: usize,
    ops: Vec<AppliedOp>,
    /// Display id after each step, chronological; index 0 is the root
    /// before any operation.
    history: Vec<usize>,
}

impl SessionTree {
    /// New session rooted at `root`.
    pub fn new(root: Display) -> Self {
        Self {
            displays: vec![root],
            parents: vec![None],
            current: 0,
            ops: Vec::new(),
            history: vec![0],
        }
    }

    /// Id of the current display node.
    pub fn current_id(&self) -> usize {
        self.current
    }

    /// The current display.
    pub fn current(&self) -> &Display {
        &self.displays[self.current]
    }

    /// Display by node id.
    pub fn display(&self, id: usize) -> &Display {
        &self.displays[id]
    }

    /// Parent of a node (`None` for the root).
    pub fn parent_of(&self, id: usize) -> Option<usize> {
        self.parents[id]
    }

    /// Number of display nodes.
    pub fn n_displays(&self) -> usize {
        self.displays.len()
    }

    /// The chronological operation log.
    pub fn ops(&self) -> &[AppliedOp] {
        &self.ops
    }

    /// Display ids after each step (index 0 = root).
    pub fn history(&self) -> &[usize] {
        &self.history
    }

    /// Displays in chronological visit order (may repeat ids).
    pub fn visited_displays(&self) -> impl Iterator<Item = &Display> {
        self.history.iter().map(|&id| &self.displays[id])
    }

    /// Attach a new display under the current node and move to it.
    pub fn push_display(&mut self, op: ResolvedOp, display: Display) -> usize {
        let from = self.current;
        self.displays.push(display);
        self.parents.push(Some(from));
        let id = self.displays.len() - 1;
        self.current = id;
        self.history.push(id);
        self.ops.push(AppliedOp {
            op,
            outcome: OpOutcome::Applied,
            from,
            to: id,
        });
        id
    }

    /// Apply a BACK: move to the parent if any, else record a no-op.
    pub fn go_back(&mut self) -> OpOutcome {
        let from = self.current;
        match self.parents[from] {
            Some(p) => {
                self.current = p;
                self.history.push(p);
                self.ops.push(AppliedOp {
                    op: ResolvedOp::Back,
                    outcome: OpOutcome::Applied,
                    from,
                    to: p,
                });
                OpOutcome::Applied
            }
            None => {
                self.history.push(from);
                self.ops.push(AppliedOp {
                    op: ResolvedOp::Back,
                    outcome: OpOutcome::BackAtRoot,
                    from,
                    to: from,
                });
                OpOutcome::BackAtRoot
            }
        }
    }

    /// Record an invalid operation (display unchanged).
    pub fn record_invalid(&mut self, op: ResolvedOp, reason: String) {
        let at = self.current;
        self.history.push(at);
        self.ops.push(AppliedOp {
            op,
            outcome: OpOutcome::Invalid(reason),
            from: at,
            to: at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::{AttrRole, CmpOp, DataFrame, Predicate};

    fn root_display() -> Display {
        let df = DataFrame::builder()
            .int("x", AttrRole::Numeric, vec![Some(1), Some(2), Some(3)])
            .build()
            .unwrap();
        Display::root(&df)
    }

    fn filter_op() -> ResolvedOp {
        ResolvedOp::Filter(Predicate::new("x", CmpOp::Gt, 1i64))
    }

    #[test]
    fn push_and_back() {
        let mut s = SessionTree::new(root_display());
        assert_eq!(s.current_id(), 0);
        let base = s.current().frame.clone();
        let d = Display::materialize(
            &base,
            s.current()
                .spec
                .with_predicate(Predicate::new("x", CmpOp::Gt, 1i64)),
        )
        .unwrap();
        let id = s.push_display(filter_op(), d);
        assert_eq!(id, 1);
        assert_eq!(s.current_id(), 1);
        assert_eq!(s.parent_of(1), Some(0));

        assert_eq!(s.go_back(), OpOutcome::Applied);
        assert_eq!(s.current_id(), 0);
        assert_eq!(s.history(), &[0, 1, 0]);
        assert_eq!(s.ops().len(), 2);
    }

    #[test]
    fn back_at_root_is_noop() {
        let mut s = SessionTree::new(root_display());
        assert_eq!(s.go_back(), OpOutcome::BackAtRoot);
        assert_eq!(s.current_id(), 0);
        assert_eq!(s.history(), &[0, 0]);
        assert!(matches!(s.ops()[0].outcome, OpOutcome::BackAtRoot));
    }

    #[test]
    fn invalid_keeps_display() {
        let mut s = SessionTree::new(root_display());
        s.record_invalid(filter_op(), "bad type".into());
        assert_eq!(s.current_id(), 0);
        assert_eq!(s.n_displays(), 1);
        assert!(matches!(&s.ops()[0].outcome, OpOutcome::Invalid(r) if r == "bad type"));
    }

    #[test]
    fn branching_after_back() {
        let mut s = SessionTree::new(root_display());
        let base = s.current().frame.clone();
        let d1 = Display::materialize(
            &base,
            s.current()
                .spec
                .with_predicate(Predicate::new("x", CmpOp::Gt, 1i64)),
        )
        .unwrap();
        s.push_display(filter_op(), d1);
        s.go_back();
        let d2 = Display::materialize(
            &base,
            s.current()
                .spec
                .with_predicate(Predicate::new("x", CmpOp::Lt, 3i64)),
        )
        .unwrap();
        let id2 = s.push_display(ResolvedOp::Filter(Predicate::new("x", CmpOp::Lt, 3i64)), d2);
        // Both children hang off the root.
        assert_eq!(s.parent_of(1), Some(0));
        assert_eq!(s.parent_of(id2), Some(0));
        assert_eq!(s.n_displays(), 3);
        let visited: Vec<usize> = s.history().to_vec();
        assert_eq!(visited, vec![0, 1, 0, 2]);
    }
}
