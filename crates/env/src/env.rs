//! The episodic EDA environment (paper §3–4): the agent performs `N`
//! operations on a dataset, observing a fixed-size encoding of the recent
//! displays after each one.

use crate::action::{ActionSpace, EdaAction, FlatTermAction, ResolvedOp};
use crate::cache::DisplayCache;
use crate::display::{Display, DisplaySpec, DisplayVector};
use crate::session::{AppliedOp, OpOutcome, SessionTree};
use atena_dataframe::{AggFunc, CmpOp, DataFrame, Predicate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Environment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Episode length `N` — number of operations per notebook.
    pub episode_len: usize,
    /// Number of frequency bins `B` for the filter term parameter.
    pub n_bins: usize,
    /// How many recent display vectors the observation concatenates
    /// (paper: current display plus the two before it).
    pub history_window: usize,
    /// RNG seed for term sampling.
    pub seed: u64,
}

impl Default for EnvConfig {
    fn default() -> Self {
        Self {
            episode_len: 12,
            n_bins: 10,
            history_window: 3,
            seed: 0,
        }
    }
}

/// Result of resolving + previewing an action before committing it.
#[derive(Debug, Clone)]
pub struct PreviewedStep {
    /// The resolved operation.
    pub op: ResolvedOp,
    /// Outcome classification.
    pub outcome: OpOutcome,
    /// The display the session would land on.
    pub display: Display,
    /// For BACK: the existing node id to return to.
    back_target: Option<usize>,
}

/// Everything a reward model needs to score one step.
pub struct StepInfo<'a> {
    /// The resolved operation.
    pub op: &'a ResolvedOp,
    /// Its outcome.
    pub outcome: &'a OpOutcome,
    /// Display before the operation.
    pub prev_display: &'a Display,
    /// Display after the operation.
    pub new_display: &'a Display,
    /// Vectors of every display seen strictly before the new one,
    /// in chronological order (the diversity reward minimizes over these).
    pub earlier_vectors: Vec<&'a DisplayVector>,
    /// Operations applied before this one, chronological.
    pub past_ops: &'a [AppliedOp],
    /// Zero-based step index of this operation.
    pub step: usize,
    /// The base dataset (schema/roles for coherency rules).
    pub base: &'a DataFrame,
}

/// One committed environment step.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Observation after the step (f32, ready for the policy network).
    pub observation: Vec<f32>,
    /// The resolved operation that was applied.
    pub op: ResolvedOp,
    /// Outcome classification.
    pub outcome: OpOutcome,
    /// Zero-based index of the step just taken.
    pub step: usize,
    /// True when the episode has reached `episode_len` operations.
    pub done: bool,
}

/// Reward breakdown per step (the compound signal of paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RewardBreakdown {
    /// Interestingness component (weighted).
    pub interestingness: f64,
    /// Diversity component (weighted).
    pub diversity: f64,
    /// Coherency component (weighted).
    pub coherency: f64,
    /// Penalty for invalid / degenerate operations.
    pub penalty: f64,
    /// Total reward.
    pub total: f64,
}

impl std::ops::AddAssign for RewardBreakdown {
    /// Component-wise accumulation (used to aggregate a per-episode
    /// decomposition from per-step breakdowns).
    fn add_assign(&mut self, rhs: Self) {
        self.interestingness += rhs.interestingness;
        self.diversity += rhs.diversity;
        self.coherency += rhs.coherency;
        self.penalty += rhs.penalty;
        self.total += rhs.total;
    }
}

/// A reward model scores individual steps given their [`StepInfo`].
pub trait RewardModel: Send + Sync {
    /// Score one step.
    fn score(&self, info: &StepInfo<'_>) -> RewardBreakdown;
}

/// A reward model that always returns zero (placeholder/testing).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullReward;

impl RewardModel for NullReward {
    fn score(&self, _info: &StepInfo<'_>) -> RewardBreakdown {
        RewardBreakdown::default()
    }
}

/// Cached telemetry handles so the per-step hot path never touches the
/// registry's lookup mutex (handles update lock-free).
#[derive(Debug, Clone)]
struct EnvTelemetry {
    ops_filter: atena_telemetry::Counter,
    ops_group: atena_telemetry::Counter,
    ops_back: atena_telemetry::Counter,
    ops_invalid: atena_telemetry::Counter,
    step_secs: atena_telemetry::Histogram,
}

impl EnvTelemetry {
    fn from_global() -> Self {
        let reg = atena_telemetry::global();
        Self {
            ops_filter: reg.counter("env.op.filter"),
            ops_group: reg.counter("env.op.group"),
            ops_back: reg.counter("env.op.back"),
            ops_invalid: reg.counter("env.op.invalid"),
            step_secs: reg.histogram("env.step_secs"),
        }
    }
}

/// A lane's handle to a shared [`DisplayCache`]: the cache plus the base
/// dataset's fingerprint, computed once at attach time so the per-step hot
/// path never re-hashes the column data.
#[derive(Debug, Clone)]
struct CacheHandle {
    cache: Arc<DisplayCache>,
    base_fp: u64,
}

/// The episodic EDA environment.
#[derive(Debug)]
pub struct EdaEnv {
    base: Arc<DataFrame>,
    space: ActionSpace,
    config: EnvConfig,
    session: SessionTree,
    step: usize,
    rng: StdRng,
    telemetry: EnvTelemetry,
    cache: Option<CacheHandle>,
}

impl EdaEnv {
    /// Create an environment over a dataset.
    pub fn new(base: DataFrame, config: EnvConfig) -> Self {
        Self::with_shared_base(Arc::new(base), config)
    }

    /// Create an environment over an already-shared dataset.
    ///
    /// The frame is refcounted, not copied, so a fleet of environments
    /// over the same dataset (e.g. rollout lanes) pays for one copy of
    /// the column data total rather than one per environment.
    pub fn with_shared_base(base: Arc<DataFrame>, config: EnvConfig) -> Self {
        let space = ActionSpace::from_frame(&base, config.n_bins);
        let root = Display::root(&base);
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            base,
            space,
            config,
            session: SessionTree::new(root),
            step: 0,
            rng,
            telemetry: EnvTelemetry::from_global(),
            cache: None,
        }
    }

    /// Attach a shared display cache (DESIGN.md §4i) and restart the
    /// session so the root display itself goes through it. Subsequent
    /// previews look up `(base fingerprint, spec)` before materializing and
    /// publish what they compute; forks inherit the handle, so every lane
    /// over this dataset shares one cache.
    ///
    /// The cache is pure memoization — hits are bit-identical to
    /// recomputation — so attaching one changes speed, never transcripts.
    pub fn with_display_cache(mut self, cache: Arc<DisplayCache>) -> Self {
        let base_fp = self.base.fingerprint();
        self.cache = Some(CacheHandle { cache, base_fp });
        self.session = SessionTree::new(self.root_display());
        self.step = 0;
        self
    }

    /// The attached display cache, if any.
    pub fn display_cache(&self) -> Option<&Arc<DisplayCache>> {
        self.cache.as_ref().map(|h| &h.cache)
    }

    /// The root display, via the cache when one is attached (a reset is the
    /// most frequent cache customer of all: every episode needs the root).
    fn root_display(&self) -> Display {
        let spec = DisplaySpec::default();
        if let Some(h) = &self.cache {
            if let Some(d) = h.cache.get(h.base_fp, &spec) {
                return d;
            }
        }
        let root = Display::root(&self.base);
        self.cache_put(&root);
        root
    }

    fn cache_get(&self, spec: &DisplaySpec) -> Option<Display> {
        let h = self.cache.as_ref()?;
        h.cache.get(h.base_fp, spec)
    }

    fn cache_put(&self, display: &Display) {
        if let Some(h) = &self.cache {
            h.cache.put(h.base_fp, display);
        }
    }

    /// Cheaply fork this environment for another rollout lane: shares the
    /// base frame and the (immutable) action space, starts a fresh
    /// session at step 0 with `seed`. Unlike re-running [`EdaEnv::new`],
    /// no column data is copied and the action space is not rebuilt.
    pub fn fork_with_seed(&self, seed: u64) -> Self {
        let mut config = self.config.clone();
        config.seed = seed;
        Self {
            base: Arc::clone(&self.base),
            space: self.space.clone(),
            config,
            session: SessionTree::new(self.root_display()),
            step: 0,
            rng: StdRng::seed_from_u64(seed),
            telemetry: self.telemetry.clone(),
            cache: self.cache.clone(),
        }
    }

    /// The action space.
    pub fn action_space(&self) -> &ActionSpace {
        &self.space
    }

    /// The environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// The base dataset.
    pub fn base(&self) -> &DataFrame {
        &self.base
    }

    /// The refcounted base dataset (lets callers verify or reuse sharing
    /// across forked environments).
    pub fn base_arc(&self) -> &Arc<DataFrame> {
        &self.base
    }

    /// The session tree (displays + operation log).
    pub fn session(&self) -> &SessionTree {
        &self.session
    }

    /// Observation dimensionality: `history_window ×` display-vector dim.
    pub fn observation_dim(&self) -> usize {
        self.config.history_window * DisplayVector::dim_for(self.base.n_cols())
    }

    /// Current step index (number of operations performed so far).
    pub fn step_count(&self) -> usize {
        self.step
    }

    /// True once `episode_len` operations have been performed.
    pub fn done(&self) -> bool {
        self.step >= self.config.episode_len
    }

    /// Reset to a fresh episode; returns the initial observation.
    pub fn reset(&mut self) -> Vec<f32> {
        let root = self.root_display();
        self.session = SessionTree::new(root);
        self.step = 0;
        self.rng = StdRng::seed_from_u64(self.config.seed);
        self.observation()
    }

    /// Reset with a different term-sampling seed (used between episodes so
    /// exploration does not replay identical token draws).
    pub fn reset_with_seed(&mut self, seed: u64) -> Vec<f32> {
        let obs = self.reset();
        self.rng = StdRng::seed_from_u64(seed);
        obs
    }

    /// Resolve an index-form action into a concrete operation, sampling the
    /// filter term from the chosen frequency bin.
    pub fn resolve(&mut self, action: &EdaAction) -> ResolvedOp {
        match *action {
            EdaAction::Back => ResolvedOp::Back,
            EdaAction::Group { key, func, agg } => {
                let key_name = self.space.attr_name(key).unwrap_or("<invalid>").to_string();
                let agg_name = self.space.attr_name(agg).unwrap_or("<invalid>").to_string();
                let func = AggFunc::ALL[func.min(AggFunc::ALL.len() - 1)];
                ResolvedOp::Group {
                    key: key_name,
                    func,
                    agg: agg_name,
                }
            }
            EdaAction::Filter { attr, op, bin } => {
                let attr_name = self
                    .space
                    .attr_name(attr)
                    .unwrap_or("<invalid>")
                    .to_string();
                let op = CmpOp::ALL[op.min(CmpOp::ALL.len() - 1)];
                // Bins are memoized on the display (and shared through the
                // display cache); building them is RNG-free, so the memo
                // cannot perturb the sampling stream.
                let term = self
                    .session
                    .current()
                    .frequency_bins(&attr_name, self.config.n_bins)
                    .and_then(|bins| bins.sample(bin, &mut self.rng));
                match term {
                    Some(term) => ResolvedOp::Filter(Predicate {
                        attr: attr_name,
                        op,
                        term,
                    }),
                    // No tokens available (empty/all-null column): keep a
                    // syntactically complete op so the notebook and the
                    // penalty path have something to show.
                    None => ResolvedOp::Filter(Predicate {
                        attr: attr_name,
                        op,
                        term: atena_dataframe::Value::Null,
                    }),
                }
            }
        }
    }

    /// Resolve a flat-enumeration action with an explicit term (OTS-DRL).
    pub fn resolve_flat_term(&self, action: &FlatTermAction) -> ResolvedOp {
        match action {
            FlatTermAction::Back => ResolvedOp::Back,
            FlatTermAction::Group { key, func, agg } => {
                let key_name = self
                    .space
                    .attr_name(*key)
                    .unwrap_or("<invalid>")
                    .to_string();
                let agg_name = self
                    .space
                    .attr_name(*agg)
                    .unwrap_or("<invalid>")
                    .to_string();
                ResolvedOp::Group {
                    key: key_name,
                    func: AggFunc::ALL[(*func).min(AggFunc::ALL.len() - 1)],
                    agg: agg_name,
                }
            }
            FlatTermAction::Filter { attr, op, term } => {
                let attr_name = self
                    .space
                    .attr_name(*attr)
                    .unwrap_or("<invalid>")
                    .to_string();
                ResolvedOp::Filter(Predicate {
                    attr: attr_name,
                    op: CmpOp::ALL[(*op).min(CmpOp::ALL.len() - 1)],
                    term: term.clone(),
                })
            }
        }
    }

    /// Compute what applying `op` would do, without mutating the session.
    pub fn preview(&self, op: &ResolvedOp) -> PreviewedStep {
        match op {
            ResolvedOp::Back => match self.session.parent_of(self.session.current_id()) {
                Some(p) => PreviewedStep {
                    op: op.clone(),
                    outcome: OpOutcome::Applied,
                    display: self.session.display(p).clone(),
                    back_target: Some(p),
                },
                None => PreviewedStep {
                    op: op.clone(),
                    outcome: OpOutcome::BackAtRoot,
                    display: self.session.current().clone(),
                    back_target: None,
                },
            },
            ResolvedOp::Filter(pred) => {
                if pred.term.is_null() {
                    return self.invalid_preview(op, "no tokens available for term".into());
                }
                let current = self.session.current();
                let spec = current.spec.with_predicate(pred.clone());
                // Only successful materializations are ever cached, and a
                // spec's validity depends only on the schema, so a hit
                // proves this op would apply — skip straight to its result.
                if let Some(display) = self.cache_get(&spec) {
                    return PreviewedStep {
                        op: op.clone(),
                        outcome: OpOutcome::Applied,
                        display,
                        back_target: None,
                    };
                }
                // Incremental path: predicates are conjunctive, so filter
                // the parent's already-narrowed frame instead of the base.
                let built = current
                    .frame
                    .filter(pred)
                    .and_then(|frame| Display::from_parts(&self.base, spec, frame));
                match built {
                    Ok(display) => {
                        self.cache_put(&display);
                        PreviewedStep {
                            op: op.clone(),
                            outcome: OpOutcome::Applied,
                            display,
                            back_target: None,
                        }
                    }
                    Err(e) => self.invalid_preview(op, e.to_string()),
                }
            }
            ResolvedOp::Group { key, func, agg } => {
                let current = self.session.current();
                let spec = current.spec.with_grouping(key.clone(), *func, agg.clone());
                if let Some(display) = self.cache_get(&spec) {
                    return PreviewedStep {
                        op: op.clone(),
                        outcome: OpOutcome::Applied,
                        display,
                        back_target: None,
                    };
                }
                // Grouping does not change the data view: reuse the frame.
                match Display::from_parts(&self.base, spec, current.frame.clone()) {
                    Ok(display) => {
                        self.cache_put(&display);
                        PreviewedStep {
                            op: op.clone(),
                            outcome: OpOutcome::Applied,
                            display,
                            back_target: None,
                        }
                    }
                    Err(e) => self.invalid_preview(op, e.to_string()),
                }
            }
        }
    }

    fn invalid_preview(&self, op: &ResolvedOp, reason: String) -> PreviewedStep {
        PreviewedStep {
            op: op.clone(),
            outcome: OpOutcome::Invalid(reason),
            display: self.session.current().clone(),
            back_target: None,
        }
    }

    /// Assemble the [`StepInfo`] a reward model scores for a previewed step.
    pub fn step_info<'a>(&'a self, preview: &'a PreviewedStep) -> StepInfo<'a> {
        StepInfo {
            op: &preview.op,
            outcome: &preview.outcome,
            prev_display: self.session.current(),
            new_display: &preview.display,
            earlier_vectors: self
                .session
                .history()
                .iter()
                .map(|&id| &self.session.display(id).vector)
                .collect(),
            past_ops: self.session.ops(),
            step: self.step,
            base: &self.base,
        }
    }

    /// Commit a previewed step, advancing the episode.
    pub fn commit(&mut self, preview: PreviewedStep) -> Transition {
        let PreviewedStep {
            op,
            outcome,
            display,
            back_target,
        } = preview;
        match &op {
            ResolvedOp::Filter(_) => self.telemetry.ops_filter.inc(),
            ResolvedOp::Group { .. } => self.telemetry.ops_group.inc(),
            ResolvedOp::Back => self.telemetry.ops_back.inc(),
        }
        if matches!(outcome, OpOutcome::Invalid(_)) {
            self.telemetry.ops_invalid.inc();
        }
        match &outcome {
            OpOutcome::Applied => match back_target {
                Some(_) => {
                    self.session.go_back();
                }
                None => {
                    self.session.push_display(op.clone(), display);
                }
            },
            OpOutcome::BackAtRoot => {
                self.session.go_back();
            }
            OpOutcome::Invalid(reason) => {
                self.session.record_invalid(op.clone(), reason.clone());
            }
        }
        self.step += 1;
        Transition {
            observation: self.observation(),
            op,
            outcome,
            step: self.step - 1,
            done: self.done(),
        }
    }

    /// Resolve, preview, and commit in one call (the plain RL interface).
    pub fn step(&mut self, action: &EdaAction) -> Transition {
        // atena-lint: allow(wall-clock) — step-latency telemetry; never affects results
        let start = std::time::Instant::now();
        let op = self.resolve(action);
        let preview = self.preview(&op);
        let t = self.commit(preview);
        self.telemetry.step_secs.record_duration(start.elapsed());
        t
    }

    /// Step with an explicit-term flat action (OTS-DRL baseline).
    pub fn step_flat_term(&mut self, action: &FlatTermAction) -> Transition {
        // atena-lint: allow(wall-clock) — step-latency telemetry; never affects results
        let start = std::time::Instant::now();
        let op = self.resolve_flat_term(action);
        let preview = self.preview(&op);
        let t = self.commit(preview);
        self.telemetry.step_secs.record_duration(start.elapsed());
        t
    }

    /// The step-latency histogram (resolve + preview + commit), shared with
    /// callers that drive the three phases separately and still want their
    /// steps timed into the same metric.
    pub fn step_latency_histogram(&self) -> &atena_telemetry::Histogram {
        &self.telemetry.step_secs
    }

    /// The observation: the current display vector concatenated with the
    /// `history_window - 1` preceding ones (zeros where history is short),
    /// most recent first.
    pub fn observation(&self) -> Vec<f32> {
        let dim = DisplayVector::dim_for(self.base.n_cols());
        let mut obs = Vec::with_capacity(self.config.history_window * dim);
        let history = self.session.history();
        for k in 0..self.config.history_window {
            if history.len() > k {
                let id = history[history.len() - 1 - k];
                obs.extend(
                    self.session
                        .display(id)
                        .vector
                        .as_slice()
                        .iter()
                        .map(|&v| v as f32),
                );
            } else {
                obs.extend(std::iter::repeat_n(0.0f32, dim));
            }
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::AttrRole;

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "airline",
                AttrRole::Categorical,
                vec![
                    Some("AA"),
                    Some("DL"),
                    Some("AA"),
                    Some("UA"),
                    Some("AA"),
                    Some("DL"),
                ],
            )
            .int(
                "delay",
                AttrRole::Numeric,
                vec![Some(10), Some(20), Some(30), Some(40), Some(50), Some(60)],
            )
            .build()
            .unwrap()
    }

    fn env() -> EdaEnv {
        EdaEnv::new(
            base(),
            EnvConfig {
                episode_len: 5,
                n_bins: 4,
                history_window: 3,
                seed: 7,
            },
        )
    }

    #[test]
    fn reset_observation_shape() {
        let mut e = env();
        let obs = e.reset();
        assert_eq!(obs.len(), e.observation_dim());
        // Last two display slots are zero padding.
        let dim = DisplayVector::dim_for(2);
        assert!(obs[dim..].iter().all(|&v| v == 0.0));
        // First slot is the root vector (rows ratio = 1 somewhere).
        assert!(obs[..dim].iter().any(|&v| v > 0.0));
    }

    #[test]
    fn filter_step_applies() {
        let mut e = env();
        e.reset();
        // attr 1 = delay, op 0 = Eq, some bin.
        let t = e.step(&EdaAction::Filter {
            attr: 1,
            op: 0,
            bin: 0,
        });
        assert!(t.outcome.is_applied(), "outcome: {:?}", t.outcome);
        assert_eq!(t.step, 0);
        assert!(!t.done);
        assert_eq!(e.session().n_displays(), 2);
        assert!(e.session().current().n_data_rows() < 6);
    }

    #[test]
    fn group_step_applies() {
        let mut e = env();
        e.reset();
        // key 0 = airline, func 2 = Avg, agg 1 = delay.
        let t = e.step(&EdaAction::Group {
            key: 0,
            func: 2,
            agg: 1,
        });
        assert!(t.outcome.is_applied());
        let d = e.session().current();
        assert!(d.grouping.is_some());
        assert_eq!(d.grouping.as_ref().unwrap().n_groups, 3);
    }

    #[test]
    fn invalid_group_is_penalized_not_fatal() {
        let mut e = env();
        e.reset();
        // SUM over the string column "airline" (func 1 = Sum, agg 0 = airline).
        let t = e.step(&EdaAction::Group {
            key: 0,
            func: 1,
            agg: 0,
        });
        assert!(matches!(t.outcome, OpOutcome::Invalid(_)));
        assert_eq!(e.session().n_displays(), 1);
        assert_eq!(e.step_count(), 1);
    }

    #[test]
    fn invalid_filter_op_on_string() {
        let mut e = env();
        e.reset();
        // Gt (op index 2) on the string column "airline".
        let t = e.step(&EdaAction::Filter {
            attr: 0,
            op: 2,
            bin: 0,
        });
        assert!(matches!(t.outcome, OpOutcome::Invalid(_)));
    }

    #[test]
    fn back_and_back_at_root() {
        let mut e = env();
        e.reset();
        let t = e.step(&EdaAction::Back);
        assert_eq!(t.outcome, OpOutcome::BackAtRoot);
        e.step(&EdaAction::Group {
            key: 0,
            func: 0,
            agg: 1,
        });
        let t = e.step(&EdaAction::Back);
        assert!(t.outcome.is_applied());
        assert_eq!(e.session().current_id(), 0);
    }

    #[test]
    fn episode_terminates() {
        let mut e = env();
        e.reset();
        let mut done = false;
        for i in 0..5 {
            let t = e.step(&EdaAction::Back);
            done = t.done;
            assert_eq!(t.step, i);
        }
        assert!(done);
        assert!(e.done());
    }

    #[test]
    fn preview_does_not_mutate() {
        let mut e = env();
        e.reset();
        let op = e.resolve(&EdaAction::Group {
            key: 0,
            func: 2,
            agg: 1,
        });
        let p = e.preview(&op);
        assert!(p.outcome.is_applied());
        assert_eq!(e.session().n_displays(), 1);
        assert_eq!(e.step_count(), 0);
        let info = e.step_info(&p);
        assert_eq!(info.step, 0);
        assert_eq!(info.earlier_vectors.len(), 1);
        e.commit(p);
        assert_eq!(e.session().n_displays(), 2);
    }

    #[test]
    fn determinism_same_seed_same_terms() {
        let run = || {
            let mut e = env();
            e.reset();
            let t = e.step(&EdaAction::Filter {
                attr: 0,
                op: 0,
                bin: 3,
            });
            t.op
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observation_window_tracks_history() {
        let mut e = env();
        e.reset();
        e.step(&EdaAction::Group {
            key: 0,
            func: 2,
            agg: 1,
        });
        let obs = e.observation();
        let dim = DisplayVector::dim_for(2);
        // Slot 0 is the grouped display; slot 1 is the root; slot 2 zeros.
        assert!(obs[..dim].iter().any(|&v| v > 0.0));
        assert!(obs[dim..2 * dim].iter().any(|&v| v > 0.0));
        assert!(obs[2 * dim..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn incremental_preview_matches_full_materialization() {
        let mut e = env();
        e.reset();
        // Drill two levels deep, then group.
        e.step(&EdaAction::Group {
            key: 0,
            func: 2,
            agg: 1,
        });
        e.step(&EdaAction::Filter {
            attr: 1,
            op: 4,
            bin: 1,
        }); // delay >= term
        e.step(&EdaAction::Group {
            key: 0,
            func: 0,
            agg: 1,
        });
        let incremental = e.session().current();
        let full = crate::display::Display::materialize(e.base(), incremental.spec.clone())
            .expect("full path materializes");
        assert_eq!(incremental.frame.n_rows(), full.frame.n_rows());
        assert_eq!(incremental.result.n_rows(), full.result.n_rows());
        assert_eq!(incremental.vector, full.vector);
        assert_eq!(
            incremental.grouping.as_ref().map(|g| g.n_groups),
            full.grouping.as_ref().map(|g| g.n_groups)
        );
    }

    #[test]
    fn null_reward_is_zero() {
        let mut e = env();
        e.reset();
        let op = e.resolve(&EdaAction::Back);
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let r = NullReward.score(&info);
        assert_eq!(r.total, 0.0);
    }
}
