//! Results displays and their numeric encodings.
//!
//! A *display* is what the analyst sees after an operation: either a data
//! subset (after filters) or a grouped/aggregated table. Its [`DisplaySpec`]
//! records how it was derived from the base dataset; the materialized
//! frames and the fixed-size [`DisplayVector`] encoding are cached on it.

use crate::binning::FrequencyBins;
use atena_dataframe::{AggFunc, DataFrame, Predicate, Result, StableHasher};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Declarative description of a display: filters applied to the base
/// dataset, plus the (possibly stacked) grouping state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DisplaySpec {
    /// Conjunctive filter predicates applied to the base dataset.
    pub predicates: Vec<Predicate>,
    /// Group-by keys, in the order they were stacked.
    pub group_keys: Vec<String>,
    /// Aggregations `(func, attr)`, in the order they were added.
    pub aggregations: Vec<(AggFunc, String)>,
}

impl DisplaySpec {
    /// True if the display is grouped.
    pub fn is_grouped(&self) -> bool {
        !self.group_keys.is_empty()
    }

    /// Spec extended with one more predicate. Grouping is preserved: a
    /// filter on a grouped display narrows the underlying data and the
    /// grouping is recomputed (the UI behaviour the REACT traces exhibit).
    pub fn with_predicate(&self, pred: Predicate) -> DisplaySpec {
        let mut s = self.clone();
        s.predicates.push(pred);
        s
    }

    /// Spec extended with one more grouping level.
    pub fn with_grouping(&self, key: String, func: AggFunc, agg: String) -> DisplaySpec {
        let mut s = self.clone();
        if !s.group_keys.contains(&key) {
            s.group_keys.push(key);
        }
        if !s.aggregations.contains(&(func, agg.clone())) {
            s.aggregations.push((func, agg));
        }
        s
    }

    /// Canonical single-line form, used for view identity in the A-EDA
    /// benchmark (order-insensitive in the predicates).
    pub fn canonical(&self) -> String {
        let mut preds: Vec<String> = self.predicates.iter().map(|p| p.to_string()).collect();
        preds.sort();
        let mut keys = self.group_keys.clone();
        keys.sort();
        let mut aggs: Vec<String> = self
            .aggregations
            .iter()
            .map(|(f, a)| format!("{f}({a})"))
            .collect();
        aggs.sort();
        format!(
            "σ[{}] γ[{}] α[{}]",
            preds.join(" ∧ "),
            keys.join(","),
            aggs.join(",")
        )
    }
}

/// Shape statistics of a grouped display.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupingInfo {
    /// Number of groups.
    pub n_groups: usize,
    /// Mean group size (rows per group).
    pub size_mean: f64,
    /// Population variance of the group sizes.
    pub size_variance: f64,
    /// Number of stacked group-by attributes.
    pub n_group_attrs: usize,
}

/// A materialized display.
#[derive(Debug, Clone)]
pub struct Display {
    /// How the display was derived.
    pub spec: DisplaySpec,
    /// The filtered (ungrouped) data view underlying the display.
    pub frame: DataFrame,
    /// What the user sees: `frame` itself, or the aggregate table when
    /// grouped.
    pub result: DataFrame,
    /// Group-shape statistics, when grouped.
    pub grouping: Option<GroupingInfo>,
    /// Fixed-size numeric encoding (see [`DisplayVector`]).
    pub vector: DisplayVector,
}

impl Display {
    /// Materialize a spec against the base dataset.
    pub fn materialize(base: &DataFrame, spec: DisplaySpec) -> Result<Display> {
        let mut frame = base.clone();
        for pred in &spec.predicates {
            frame = frame.filter(pred)?;
        }
        Self::from_parts(base, spec, frame)
    }

    /// Materialize a spec whose filtered data view has already been
    /// computed — the incremental path the environment uses: filters are
    /// conjunctive, so a child display's frame is its parent's frame
    /// narrowed by one predicate, avoiding a rescan of the base dataset.
    ///
    /// # Contract
    /// `frame` must equal `base` filtered by `spec.predicates`.
    pub fn from_parts(base: &DataFrame, spec: DisplaySpec, frame: DataFrame) -> Result<Display> {
        let (result, grouping) = if spec.is_grouped() {
            let keys: Vec<&str> = spec.group_keys.iter().map(String::as_str).collect();
            let aggs: Vec<(AggFunc, &str)> = spec
                .aggregations
                .iter()
                .map(|(f, a)| (*f, a.as_str()))
                .collect();
            let table = frame.group_aggregate_multi(&keys, &aggs)?;
            let sizes: Vec<f64> = (0..table.n_rows())
                .map(|r| {
                    table
                        .value(r, "count")
                        .ok()
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0)
                })
                .collect();
            let n = sizes.len();
            let mean = if n == 0 {
                0.0
            } else {
                sizes.iter().sum::<f64>() / n as f64
            };
            let var = if n == 0 {
                0.0
            } else {
                sizes.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64
            };
            (
                table,
                Some(GroupingInfo {
                    n_groups: n,
                    size_mean: mean,
                    size_variance: var,
                    n_group_attrs: spec.group_keys.len(),
                }),
            )
        } else {
            (frame.clone(), None)
        };
        let vector = DisplayVector::encode(base, &frame, &spec, grouping.as_ref());
        Ok(Display {
            spec,
            frame,
            result,
            grouping,
            vector,
        })
    }

    /// Log-frequency bins for `attr` over this display's data view,
    /// memoized on the underlying *frame* per `(attr, n_bins)`. Group
    /// displays stacked on one data view, clones of a display, and every
    /// lane sharing the base dataset all see the same frame memo, so root
    /// and group-chain bins are built once per process, not once per lane.
    /// `None` if the attribute doesn't exist. [`FrequencyBins::build`] is a
    /// deterministic, RNG-free pure function of the column, so memoization
    /// cannot perturb sampling streams (DESIGN.md §4i).
    pub fn frequency_bins(&self, attr: &str, n_bins: usize) -> Option<Arc<FrequencyBins>> {
        let column = self.frame.column(attr).ok()?;
        let mut hasher = StableHasher::new();
        hasher.write_str("frequency_bins");
        hasher.write_str(attr);
        hasher.write_usize(n_bins);
        Some(
            self.frame
                .memo_extension(hasher.finish(), || FrequencyBins::build(column, n_bins)),
        )
    }

    /// The root display of a session: the raw dataset, unfiltered and
    /// ungrouped.
    pub fn root(base: &DataFrame) -> Display {
        Self::materialize(base, DisplaySpec::default()).expect("empty spec always materializes")
    }

    /// Number of rows in the underlying data view.
    pub fn n_data_rows(&self) -> usize {
        self.frame.n_rows()
    }
}

/// The fixed-size numeric encoding of a display (paper §4.1):
/// per attribute `[normalized entropy, distinct ratio, null ratio,
/// grouped/aggregated flag]`, then global features
/// `[n_groups, group-size mean, group-size variance, data-rows ratio]`
/// (all squashed to `[0, 1]`).
///
/// The fourth global (the fraction of base rows surviving the filters) is an
/// addition over the paper's three — it exposes filter selectivity to the
/// diversity reward and the policy; documented in DESIGN.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisplayVector(Vec<f64>);

impl DisplayVector {
    /// Features per attribute.
    pub const PER_ATTR: usize = 4;
    /// Number of global features.
    pub const GLOBALS: usize = 4;

    /// Dimensionality for a dataset with `n_attrs` attributes.
    pub fn dim_for(n_attrs: usize) -> usize {
        n_attrs * Self::PER_ATTR + Self::GLOBALS
    }

    /// Encode a display.
    pub fn encode(
        base: &DataFrame,
        frame: &DataFrame,
        spec: &DisplaySpec,
        grouping: Option<&GroupingInfo>,
    ) -> DisplayVector {
        let n_attrs = base.n_cols();
        let mut v = Vec::with_capacity(Self::dim_for(n_attrs));
        let stats = frame.all_column_stats();
        for (i, st) in stats.iter().enumerate() {
            let name = &base.schema().field_at(i).name;
            v.push(st.normalized_entropy());
            v.push(st.distinct_ratio());
            v.push(st.null_ratio());
            // Aggregated attributes get a small flag: swapping the
            // aggregate is a cosmetic change and must not register as a
            // large display-vector movement (diversity would over-credit
            // it).
            let flag = if spec.group_keys.contains(name) {
                1.0
            } else if spec.aggregations.iter().any(|(_, a)| a == name) {
                0.2
            } else {
                0.0
            };
            v.push(flag);
        }
        let base_rows = base.n_rows().max(1) as f64;
        match grouping {
            Some(g) => {
                v.push(((1.0 + g.n_groups as f64).ln() / (1.0 + base_rows).ln()).min(1.0));
                v.push((g.size_mean / base_rows).min(1.0));
                // Squash the variance via x/(1+x) of the coefficient of variation.
                let cv2 = if g.size_mean > 0.0 {
                    g.size_variance / (g.size_mean * g.size_mean)
                } else {
                    0.0
                };
                v.push(cv2 / (1.0 + cv2));
            }
            None => {
                v.push(0.0);
                v.push(0.0);
                v.push(0.0);
            }
        }
        v.push(frame.n_rows() as f64 / base_rows);
        DisplayVector(v)
    }

    /// An all-zeros vector (used to pad observations early in an episode).
    pub fn zeros(n_attrs: usize) -> DisplayVector {
        DisplayVector(vec![0.0; Self::dim_for(n_attrs)])
    }

    /// The raw feature values.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Euclidean distance to another display vector.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn euclidean_distance(&self, other: &DisplayVector) -> f64 {
        assert_eq!(self.0.len(), other.0.len(), "display vector dim mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::{AttrRole, CmpOp};

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "airline",
                AttrRole::Categorical,
                vec![
                    Some("AA"),
                    Some("DL"),
                    Some("AA"),
                    Some("UA"),
                    Some("AA"),
                    Some("DL"),
                ],
            )
            .int(
                "delay",
                AttrRole::Numeric,
                vec![Some(10), Some(20), Some(30), Some(40), None, Some(60)],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn root_display_shape() {
        let b = base();
        let d = Display::root(&b);
        assert_eq!(d.n_data_rows(), 6);
        assert!(d.grouping.is_none());
        assert_eq!(d.vector.dim(), DisplayVector::dim_for(2));
        // Rows ratio global is 1.0 at the root.
        assert_eq!(*d.vector.as_slice().last().unwrap(), 1.0);
    }

    #[test]
    fn filtered_display() {
        let b = base();
        let spec =
            DisplaySpec::default().with_predicate(Predicate::new("airline", CmpOp::Eq, "AA"));
        let d = Display::materialize(&b, spec).unwrap();
        assert_eq!(d.n_data_rows(), 3);
        assert_eq!(d.result.n_rows(), 3);
        assert!((d.vector.as_slice().last().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn grouped_display_and_info() {
        let b = base();
        let spec =
            DisplaySpec::default().with_grouping("airline".into(), AggFunc::Avg, "delay".into());
        let d = Display::materialize(&b, spec).unwrap();
        let g = d.grouping.as_ref().unwrap();
        assert_eq!(g.n_groups, 3);
        assert_eq!(g.n_group_attrs, 1);
        assert!((g.size_mean - 2.0).abs() < 1e-12);
        assert_eq!(
            d.result.schema().names(),
            vec!["airline", "count", "AVG(delay)"]
        );
        // Grouped flag on airline = 1.0 (index 3), agg flag on delay = 0.2 (index 7).
        assert_eq!(d.vector.as_slice()[3], 1.0);
        assert_eq!(d.vector.as_slice()[7], 0.2);
    }

    #[test]
    fn stacked_grouping_dedups_keys() {
        let spec = DisplaySpec::default()
            .with_grouping("a".into(), AggFunc::Count, "b".into())
            .with_grouping("a".into(), AggFunc::Count, "b".into())
            .with_grouping("c".into(), AggFunc::Avg, "b".into());
        assert_eq!(spec.group_keys, vec!["a", "c"]);
        assert_eq!(spec.aggregations.len(), 2);
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let p1 = Predicate::new("x", CmpOp::Eq, 1i64);
        let p2 = Predicate::new("y", CmpOp::Gt, 2i64);
        let a = DisplaySpec::default()
            .with_predicate(p1.clone())
            .with_predicate(p2.clone());
        let b = DisplaySpec::default().with_predicate(p2).with_predicate(p1);
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn filter_then_group_recomputes() {
        let b = base();
        let spec = DisplaySpec::default()
            .with_grouping("airline".into(), AggFunc::Avg, "delay".into())
            .with_predicate(Predicate::new("delay", CmpOp::Ge, 20i64));
        let d = Display::materialize(&b, spec).unwrap();
        // Underlying rows: delays 20,30,40,60 -> 4 rows; groups AA, DL, UA.
        assert_eq!(d.n_data_rows(), 4);
        assert_eq!(d.grouping.as_ref().unwrap().n_groups, 3);
    }

    #[test]
    fn euclidean_distance_zero_on_self() {
        let b = base();
        let d = Display::root(&b);
        assert_eq!(d.vector.euclidean_distance(&d.vector), 0.0);
        let z = DisplayVector::zeros(2);
        assert!(d.vector.euclidean_distance(&z) > 0.0);
    }

    #[test]
    fn empty_filter_result_is_valid_display() {
        let b = base();
        let spec =
            DisplaySpec::default().with_predicate(Predicate::new("delay", CmpOp::Gt, 1000i64));
        let d = Display::materialize(&b, spec).unwrap();
        assert_eq!(d.n_data_rows(), 0);
        assert_eq!(*d.vector.as_slice().last().unwrap(), 0.0);
    }

    #[test]
    fn grouped_empty_frame() {
        let b = base();
        let spec = DisplaySpec::default()
            .with_predicate(Predicate::new("delay", CmpOp::Gt, 1000i64))
            .with_grouping("airline".into(), AggFunc::Count, "delay".into());
        let d = Display::materialize(&b, spec).unwrap();
        assert_eq!(d.grouping.as_ref().unwrap().n_groups, 0);
    }
}
