//! The content-addressed display cache (DESIGN.md §4i) and the LRU
//! substrate it shares with the server's response cache.
//!
//! Every display is a pure function of `(base dataset, DisplaySpec)`: the
//! spec is the exact operation path from the root, and materialization is
//! deterministic. So a display computed once — by any rollout lane, any
//! worker thread, or any server request — can be reused verbatim wherever
//! the same `(dataset fingerprint, spec)` pair recurs. BACK-heavy sessions,
//! thousands of episodes replaying identical prefixes on one dataset, and
//! the server's greedy decode all hit the same small set of displays.
//!
//! **Determinism contract.** The cache is pure memoization: a hit returns a
//! display bit-identical to what recomputation would produce, so cache size
//! and sharding change speed, never transcripts. Which entries are
//! *resident* at any moment is schedule-dependent (lanes race to insert),
//! but residency only decides hit-or-recompute — both paths yield the same
//! bits. See `display_cache_equivalence` in the env test suite and
//! `tests/determinism.rs` at the workspace root, which pin this down.

use crate::display::{Display, DisplaySpec};
use atena_dataframe::StableHasher;
use atena_runtime::Sharded;
use atena_telemetry::MetricsRegistry;
// atena-lint: allow(hash-order) — HashMap below backs the LRU's key→slot lookups
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Instant;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Least-recently-used cache with a hard entry capacity: a `HashMap` from
/// key to slot index plus an intrusive doubly-linked recency list threaded
/// through a slab of entries. O(1) lookup, insert, and eviction; no
/// allocation churn on steady state — evicted slots are reused in place.
///
/// This is the substrate of both the [`DisplayCache`] shards and the HTTP
/// server's response cache (re-exported there), so eviction semantics are
/// identical across the two.
pub struct LruCache<K, V> {
    // Keys are only ever probed; recency order lives in the intrusive list
    // and eviction order is therefore independent of map iteration order.
    // atena-lint: allow(hash-order) — lookup-only key→slot map
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create with room for `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            // atena-lint: allow(hash-order) — lookup-only key→slot map
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.detach(slot);
        self.attach_front(slot);
        Some(&self.slab[slot].value)
    }

    /// Insert (or overwrite) `key`, evicting the least recently used entry
    /// when full. Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return None;
        }
        if self.map.len() < self.capacity {
            let slot = self.slab.len();
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, slot);
            self.attach_front(slot);
            return None;
        }
        // Full: reuse the LRU slot in place.
        let slot = self.tail;
        self.detach(slot);
        let entry = &mut self.slab[slot];
        let old_key = std::mem::replace(&mut entry.key, key.clone());
        let old_value = std::mem::replace(&mut entry.value, value);
        self.map.remove(&old_key);
        self.map.insert(key, slot);
        self.attach_front(slot);
        Some((old_key, old_value))
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

/// The content-addressed cache key: a stable 64-bit hash of the dataset
/// fingerprint and the **exact** operation path (predicates in application
/// order, group keys and aggregations in stacking order).
///
/// Exact-path keying (rather than the order-insensitive
/// [`DisplaySpec::canonical`] form) is deliberate: the result-table column
/// order of a grouped display depends on stacking order, so two orderings
/// of the same operations are *different* displays. Structured hashing
/// (tags + length prefixes, canonical float bits via
/// [`StableHasher::write_value`]) rules out the textual ambiguities a
/// formatted key would have.
pub fn display_key(dataset_fingerprint: u64, spec: &DisplaySpec) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(dataset_fingerprint);
    h.write_usize(spec.predicates.len());
    for p in &spec.predicates {
        h.write_str(&p.attr);
        h.write_u8(cmp_op_tag(p.op));
        h.write_owned_value(&p.term);
    }
    h.write_usize(spec.group_keys.len());
    for k in &spec.group_keys {
        h.write_str(k);
    }
    h.write_usize(spec.aggregations.len());
    for (func, attr) in &spec.aggregations {
        h.write_u8(agg_func_tag(*func));
        h.write_str(attr);
    }
    h.finish()
}

fn cmp_op_tag(op: atena_dataframe::CmpOp) -> u8 {
    atena_dataframe::CmpOp::ALL
        .iter()
        .position(|o| *o == op)
        .expect("CmpOp::ALL is exhaustive") as u8
}

fn agg_func_tag(func: atena_dataframe::AggFunc) -> u8 {
    atena_dataframe::AggFunc::ALL
        .iter()
        .position(|f| *f == func)
        .expect("AggFunc::ALL is exhaustive") as u8
}

/// Hit/miss/eviction totals of a [`DisplayCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DisplayCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to materialization.
    pub misses: u64,
    /// Entries evicted by LRU pressure.
    pub evictions: u64,
}

impl DisplayCacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Telemetry handles, cached so the lookup hot path never touches the
/// registry mutex; swappable as a unit when rerouting to a private registry.
struct CacheTelemetry {
    hit: atena_telemetry::Counter,
    miss: atena_telemetry::Counter,
    eviction: atena_telemetry::Counter,
    lookup_secs: atena_telemetry::Histogram,
}

impl CacheTelemetry {
    fn from_registry(reg: &MetricsRegistry) -> Self {
        Self {
            hit: reg.counter("env.cache.hit"),
            miss: reg.counter("env.cache.miss"),
            eviction: reg.counter("env.cache.eviction"),
            lookup_secs: reg.histogram("env.cache.lookup_secs"),
        }
    }
}

/// A sharded, deterministic LRU of materialized displays, shared across
/// rollout lanes (and server requests) behind an `Arc`.
///
/// * **Content-addressed**: entries are keyed by [`display_key`]; a stored
///   display's spec is compared on lookup, so a 64-bit collision degrades to
///   a miss instead of returning the wrong display.
/// * **Lock-sharded**: the capacity is spread over up to 16 independently
///   locked LRU shards ([`atena_runtime::Sharded`]) so parallel lanes don't
///   serialize on one mutex. Shard choice is a pure function of the key.
/// * **Pure memoization**: hits return clones of the stored display.
///   Cloned frames share the per-frame statistics memo, so a distribution
///   computed by one lane is reused by every lane that hits the entry —
///   that sharing, like the cache itself, is invisible to results.
///
/// Capacity 0 disables the cache (every lookup misses, nothing is stored);
/// the environment layer simply doesn't attach one in that case.
pub struct DisplayCache {
    shards: Sharded<LruCache<u64, Display>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    lookup_tick: AtomicU64,
    telemetry: RwLock<CacheTelemetry>,
}

impl std::fmt::Debug for DisplayCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DisplayCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.n_shards())
            .finish()
    }
}

impl DisplayCache {
    /// Create a cache holding at most `capacity` displays in total,
    /// reporting `env.cache.*` metrics to the global registry.
    ///
    /// The capacity is distributed exactly over `min(capacity, 16)` shards
    /// (rounded down to a power of two), earlier shards taking the
    /// remainder — total residency never exceeds `capacity`.
    pub fn new(capacity: usize) -> Self {
        let n_shards = match capacity {
            0 => 1,
            c => {
                let mut s = 1usize;
                while s * 2 <= c.min(16) {
                    s *= 2;
                }
                s
            }
        };
        let base = capacity / n_shards;
        let extra = capacity % n_shards;
        let mut next = 0usize;
        let shards = Sharded::new(n_shards, || {
            let cap = base + usize::from(next < extra);
            next += 1;
            LruCache::new(cap)
        });
        Self {
            shards,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            lookup_tick: AtomicU64::new(0),
            telemetry: RwLock::new(CacheTelemetry::from_registry(atena_telemetry::global())),
        }
    }

    /// Latency-histogram sampling period (first lookup is always timed, so
    /// the histogram is never empty once a lookup has happened).
    const LOOKUP_SAMPLE: u64 = 32;

    /// Total entry capacity across shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident displays (locks each shard in turn).
    pub fn len(&self) -> usize {
        self.shards.fold(0, |acc, shard| acc + shard.len())
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up the display for `(dataset fingerprint, spec)`. On a hit the
    /// entry is refreshed in its shard's recency order and a clone is
    /// returned; the clone shares column data and statistics memos with the
    /// stored display (frames are `Arc`-backed).
    pub fn get(&self, dataset_fingerprint: u64, spec: &DisplaySpec) -> Option<Display> {
        if self.capacity == 0 {
            return None;
        }
        // Timing every lookup would cost more than many lookups do (two
        // clock reads plus a shared-histogram lock); sample 1 in
        // LOOKUP_SAMPLE instead. Counters stay exact.
        let tick = self.lookup_tick.fetch_add(1, Ordering::Relaxed);
        // atena-lint: allow(wall-clock) — sampled latency telemetry; never affects results
        let start = (tick % Self::LOOKUP_SAMPLE == 0).then(Instant::now);
        let key = display_key(dataset_fingerprint, spec);
        let found = self.shards.with(key, |shard| {
            shard
                .get(&key)
                // Guard against 64-bit key collisions: a mismatched spec is
                // treated as a miss, never returned as someone else's display.
                .filter(|d| d.spec == *spec)
                .cloned()
        });
        let t = self.telemetry.read().unwrap();
        if let Some(start) = start {
            t.lookup_secs.record_duration(start.elapsed());
        }
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                t.hit.inc();
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                t.miss.inc();
            }
        }
        found
    }

    /// Store a display under its own spec (keyed against
    /// `dataset_fingerprint`), possibly evicting an LRU entry in its shard.
    pub fn put(&self, dataset_fingerprint: u64, display: &Display) {
        if self.capacity == 0 {
            return;
        }
        let key = display_key(dataset_fingerprint, &display.spec);
        let evicted = self
            .shards
            .with(key, |shard| shard.insert(key, display.clone()));
        if evicted.is_some() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.telemetry.read().unwrap().eviction.inc();
        }
    }

    /// Hit/miss/eviction totals since construction (independent of any
    /// telemetry rerouting).
    pub fn stats(&self) -> DisplayCacheStats {
        DisplayCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Route `env.cache.*` metrics to `registry` instead of the global one
    /// (tests with private registries; mirrors `Runtime::with_telemetry`).
    pub fn reroute_telemetry(&self, registry: &MetricsRegistry) {
        *self.telemetry.write().unwrap() = CacheTelemetry::from_registry(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::DisplaySpec;
    use atena_dataframe::{AggFunc, AttrRole, CmpOp, DataFrame, Predicate};

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.get(&"a"); // refresh a; b is now LRU
        assert_eq!(c.insert("c", 3), Some(("b", 2)));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_refreshes_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.insert("a", 10), None); // overwrite, refresh
        assert_eq!(c.insert("c", 3), Some(("b", 2))); // b was LRU
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    fn capacity_one_and_zero() {
        let mut one = LruCache::new(1);
        assert_eq!(one.insert("a", 1), None);
        assert_eq!(one.insert("b", 2), Some(("a", 1)));
        assert_eq!(one.get(&"b"), Some(&2));

        let mut zero: LruCache<&str, i32> = LruCache::new(0);
        assert_eq!(zero.insert("a", 1), None);
        assert_eq!(zero.get(&"a"), None);
        assert!(zero.is_empty());
    }

    #[test]
    fn long_churn_keeps_exactly_capacity() {
        let mut c = LruCache::new(8);
        for i in 0..1000usize {
            // With strictly sequential inserts the eviction order is FIFO.
            let evicted = c.insert(i, i * 2);
            if i >= 8 {
                assert_eq!(evicted, Some((i - 8, (i - 8) * 2)));
            } else {
                assert_eq!(evicted, None);
            }
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.capacity(), 8);
        // Exactly the last 8 keys survive.
        for i in 992..1000 {
            assert_eq!(c.get(&i), Some(&(i * 2)));
        }
        assert_eq!(c.get(&991), None);
    }

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "airline",
                AttrRole::Categorical,
                vec![Some("AA"), Some("DL"), Some("AA"), Some("UA")],
            )
            .int(
                "delay",
                AttrRole::Numeric,
                vec![Some(10), Some(20), Some(30), Some(40)],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn display_key_depends_on_path_and_dataset() {
        let root = DisplaySpec::default();
        let filtered = root.with_predicate(Predicate::new("delay", CmpOp::Gt, 15i64));
        let grouped = root.with_grouping("airline".into(), AggFunc::Avg, "delay".into());
        assert_eq!(display_key(1, &root), display_key(1, &root));
        assert_ne!(display_key(1, &root), display_key(2, &root));
        assert_ne!(display_key(1, &root), display_key(1, &filtered));
        assert_ne!(display_key(1, &filtered), display_key(1, &grouped));
        // Exact-path keying: predicate order matters.
        let p1 = Predicate::new("delay", CmpOp::Gt, 15i64);
        let p2 = Predicate::new("airline", CmpOp::Eq, "AA");
        let ab = root.with_predicate(p1.clone()).with_predicate(p2.clone());
        let ba = root.with_predicate(p2).with_predicate(p1);
        assert_ne!(display_key(1, &ab), display_key(1, &ba));
    }

    #[test]
    fn display_cache_round_trips_bit_identical() {
        let b = base();
        let fp = b.fingerprint();
        let cache = DisplayCache::new(8);
        let spec = DisplaySpec::default().with_predicate(Predicate::new("delay", CmpOp::Ge, 20i64));
        assert!(cache.get(fp, &spec).is_none(), "cold cache misses");
        let display = Display::materialize(&b, spec.clone()).unwrap();
        cache.put(fp, &display);
        let hit = cache.get(fp, &spec).expect("warm cache hits");
        assert_eq!(hit.spec, display.spec);
        assert_eq!(hit.vector, display.vector);
        assert_eq!(hit.frame.n_rows(), display.frame.n_rows());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_distributed_exactly() {
        for cap in [0usize, 1, 3, 7, 16, 100] {
            let cache = DisplayCache::new(cap);
            assert_eq!(cache.capacity(), cap);
            let total: usize = cache.shards.fold(0, |acc, s| acc + s.capacity());
            assert_eq!(total, cap, "shard capacities must sum to {cap}");
        }
    }

    #[test]
    fn eviction_counts_under_pressure() {
        let b = base();
        let fp = b.fingerprint();
        let cache = DisplayCache::new(1);
        for term in [10i64, 20, 30] {
            let spec =
                DisplaySpec::default().with_predicate(Predicate::new("delay", CmpOp::Ge, term));
            cache.put(fp, &Display::materialize(&b, spec).unwrap());
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let b = base();
        let fp = b.fingerprint();
        let cache = DisplayCache::new(0);
        let spec = DisplaySpec::default();
        cache.put(fp, &Display::root(&b));
        assert!(cache.get(fp, &spec).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), DisplayCacheStats::default());
    }

    #[test]
    fn reroute_sends_counters_to_private_registry() {
        let b = base();
        let fp = b.fingerprint();
        let cache = DisplayCache::new(4);
        let reg = MetricsRegistry::new();
        cache.reroute_telemetry(&reg);
        cache.put(fp, &Display::root(&b));
        cache.get(fp, &DisplaySpec::default());
        cache.get(
            fp,
            &DisplaySpec::default().with_predicate(Predicate::new("delay", CmpOp::Gt, 0i64)),
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counter("env.cache.hit"), Some(1));
        assert_eq!(snap.counter("env.cache.miss"), Some(1));
        // Lookup latency is sampled; the first lookup is always timed.
        assert!(reg.histogram("env.cache.lookup_secs").count() >= 1);
    }
}
