//! Rollout storage and generalized advantage estimation.

use crate::policy::ActionChoice;
use serde::{Deserialize, Serialize};

/// One recorded environment step.
#[derive(Debug, Clone)]
pub struct RolloutStep {
    /// Observation the action was taken at.
    pub obs: Vec<f32>,
    /// The policy's choice.
    pub choice: ActionChoice,
    /// Log-probability at collection time (for the PPO ratio).
    pub log_prob: f32,
    /// Critic value estimate at collection time.
    pub value: f32,
    /// Reward received.
    pub reward: f32,
    /// True if this step ended the episode.
    pub done: bool,
}

/// A batch of steps from one or more episodes/workers, in collection order
/// (episode boundaries marked by `done`).
#[derive(Debug, Clone, Default)]
pub struct RolloutBuffer {
    steps: Vec<RolloutStep>,
}

impl RolloutBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one step.
    pub fn push(&mut self, step: RolloutStep) {
        self.steps.push(step);
    }

    /// Append all steps of another buffer.
    pub fn extend(&mut self, other: RolloutBuffer) {
        self.steps.extend(other.steps);
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if no steps are stored.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Stored steps.
    pub fn steps(&self) -> &[RolloutStep] {
        &self.steps
    }

    /// Drop all steps.
    pub fn clear(&mut self) {
        self.steps.clear();
    }

    /// Compute per-step returns and GAE(λ) advantages.
    ///
    /// Episodes in the EDA environment are finite (`N` operations) and every
    /// recorded segment ends at an episode boundary, so no bootstrap value is
    /// needed beyond the terminal.
    pub fn advantages(&self, gamma: f32, lambda: f32) -> AdvantageEstimates {
        let n = self.steps.len();
        let mut advantages = vec![0.0f32; n];
        let mut returns = vec![0.0f32; n];
        let mut next_value = 0.0f32;
        let mut next_advantage = 0.0f32;
        for i in (0..n).rev() {
            let s = &self.steps[i];
            if s.done {
                next_value = 0.0;
                next_advantage = 0.0;
            }
            let delta = s.reward + gamma * next_value - s.value;
            let adv = delta + gamma * lambda * next_advantage;
            advantages[i] = adv;
            returns[i] = adv + s.value;
            next_value = s.value;
            next_advantage = adv;
        }
        AdvantageEstimates {
            advantages,
            returns,
        }
    }
}

/// Advantages and returns aligned with the buffer's steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdvantageEstimates {
    /// GAE(λ) advantages.
    pub advantages: Vec<f32>,
    /// Discounted returns (`advantage + value`).
    pub returns: Vec<f32>,
}

impl AdvantageEstimates {
    /// Normalize advantages to zero mean / unit variance (standard PPO
    /// stabilization). No-op for fewer than 2 samples.
    pub fn normalize_advantages(&mut self) {
        let n = self.advantages.len();
        if n < 2 {
            return;
        }
        let mean = self.advantages.iter().sum::<f32>() / n as f32;
        let var = self
            .advantages
            .iter()
            .map(|a| (a - mean).powi(2))
            .sum::<f32>()
            / n as f32;
        let std = var.sqrt().max(1e-6);
        for a in &mut self.advantages {
            *a = (*a - mean) / std;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(reward: f32, value: f32, done: bool) -> RolloutStep {
        RolloutStep {
            obs: vec![0.0],
            choice: ActionChoice::Flat { index: 0 },
            log_prob: 0.0,
            value,
            reward,
            done,
        }
    }

    #[test]
    fn montecarlo_returns_when_lambda_one() {
        let mut buf = RolloutBuffer::new();
        buf.push(step(1.0, 0.0, false));
        buf.push(step(1.0, 0.0, false));
        buf.push(step(1.0, 0.0, true));
        let est = buf.advantages(1.0, 1.0);
        // With zero values and γ=λ=1, returns are suffix sums of rewards.
        assert_eq!(est.returns, vec![3.0, 2.0, 1.0]);
        assert_eq!(est.advantages, est.returns);
    }

    #[test]
    fn discounting() {
        let mut buf = RolloutBuffer::new();
        buf.push(step(0.0, 0.0, false));
        buf.push(step(2.0, 0.0, true));
        let est = buf.advantages(0.5, 1.0);
        assert_eq!(est.returns, vec![1.0, 2.0]);
    }

    #[test]
    fn episode_boundaries_reset() {
        let mut buf = RolloutBuffer::new();
        buf.push(step(5.0, 0.0, true)); // episode 1
        buf.push(step(1.0, 0.0, true)); // episode 2
        let est = buf.advantages(1.0, 1.0);
        // No leakage from episode 2 into episode 1.
        assert_eq!(est.returns, vec![5.0, 1.0]);
    }

    #[test]
    fn gae_with_perfect_critic_is_zero_advantage() {
        // If V(s) equals the true return everywhere, deltas vanish.
        let mut buf = RolloutBuffer::new();
        buf.push(step(1.0, 3.0, false));
        buf.push(step(1.0, 2.0, false));
        buf.push(step(1.0, 1.0, true));
        let est = buf.advantages(1.0, 0.95);
        for a in est.advantages {
            assert!(a.abs() < 1e-6, "advantage {a}");
        }
    }

    #[test]
    fn normalization() {
        let mut est = AdvantageEstimates {
            advantages: vec![1.0, 2.0, 3.0, 4.0],
            returns: vec![0.0; 4],
        };
        est.normalize_advantages();
        let mean: f32 = est.advantages.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        let var: f32 = est
            .advantages
            .iter()
            .map(|a| (a - mean).powi(2))
            .sum::<f32>()
            / 4.0;
        assert!((var - 1.0).abs() < 1e-4);

        // Tiny inputs are left alone.
        let mut single = AdvantageEstimates {
            advantages: vec![7.0],
            returns: vec![0.0],
        };
        single.normalize_advantages();
        assert_eq!(single.advantages, vec![7.0]);
    }

    #[test]
    fn extend_and_clear() {
        let mut a = RolloutBuffer::new();
        a.push(step(1.0, 0.0, true));
        let mut b = RolloutBuffer::new();
        b.push(step(2.0, 0.0, true));
        a.extend(b);
        assert_eq!(a.len(), 2);
        a.clear();
        assert!(a.is_empty());
    }
}
