//! Rollout sources: where the trainer's experience comes from.
//!
//! A [`RolloutSource`] owns a fleet of episode *lanes* — independent
//! [`EdaEnv`]s that persist across iterations — and collects one
//! iteration's worth of trajectory fragments from them on demand. The
//! determinism contract (DESIGN.md §4h) is enforced here:
//!
//! - lane `l`'s randomness at iteration `k` comes from the counter-derived
//!   stream `stream_seed(base_seed, l, k)` — never from a shared stateful
//!   RNG, so it cannot depend on scheduling;
//! - fragments are merged in lane order, so the buffer layout depends
//!   only on `(n_lanes, rollout_len)`.
//!
//! [`SerialRollouts`] walks the lanes in order on the calling thread and
//! is the reference schedule; [`ParallelRollouts`] shards the same lanes
//! over an [`atena_runtime::Runtime`] and produces bit-identical output
//! because neither the streams nor the merge order involve threads.

use crate::policy::{ActionMapper, MappedAction, Policy};
use crate::rollout::{RolloutBuffer, RolloutStep};
use crate::trainer::EpisodeRecord;
use atena_batch::BatchPlanner;
use atena_dataframe::DataFrame;
use atena_env::{DisplayCache, EdaEnv, EnvConfig, RewardBreakdown, RewardModel};
use atena_runtime::{stream_seed, Runtime, ScatterProfile, STREAM_ENV, STREAM_INIT};
use atena_telemetry::MetricsRegistry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Everything a source needs to collect one iteration of experience.
///
/// Borrowed, not owned: the plan is rebuilt by the trainer each iteration
/// with the current temperature and iteration counter.
pub struct RolloutPlan<'a> {
    /// The policy to sample actions from (read-only snapshot).
    pub policy: &'a dyn Policy,
    /// Decodes policy choices into environment actions.
    pub mapper: &'a ActionMapper,
    /// Scores each transition.
    pub reward: &'a dyn RewardModel,
    /// Steps to collect per lane.
    pub rollout_len: usize,
    /// Boltzmann exploration temperature.
    pub temperature: f32,
    /// Master seed the per-lane streams are derived from.
    pub base_seed: u64,
    /// Training iteration counter (selects the per-lane RNG stream).
    pub iteration: u64,
}

/// One episode lane: an environment plus the running episode totals that
/// survive across iteration boundaries (episodes need not align with
/// rollout fragments).
struct Lane {
    env: EdaEnv,
    episode_reward: f64,
    episode_breakdown: RewardBreakdown,
}

/// A supplier of rollout experience over a fixed fleet of lanes.
///
/// Implementations must uphold the determinism contract: `collect`'s
/// output is a pure function of the lane states and the plan — in
/// particular it must not depend on how many threads executed it.
pub trait RolloutSource: Send {
    /// Collect `rollout_len` steps from every lane; fragments merged in
    /// lane order.
    fn collect(&mut self, plan: &RolloutPlan<'_>) -> (RolloutBuffer, Vec<EpisodeRecord>);

    /// Number of episode lanes.
    fn n_lanes(&self) -> usize;

    /// Mutable access to one lane's environment (used for evaluation
    /// episodes, which borrow lane 0).
    fn lane_env_mut(&mut self, lane: usize) -> &mut EdaEnv;

    /// Reroute any metrics this source records to `registry`.
    fn set_telemetry(&mut self, registry: Arc<MetricsRegistry>);

    /// Timing profile of the most recent `collect` (per-worker busy time,
    /// merge cost), when the source runs on a worker pool. `None` for
    /// sources without one. Read-only observability: feeding it anywhere
    /// back into collection would break the determinism contract.
    fn scatter_profile(&self) -> Option<ScatterProfile> {
        None
    }
}

/// Default capacity of the display cache a rollout source shares across
/// its lanes (see [`DisplayCache`]; 0 disables caching).
pub const DEFAULT_DISPLAY_CACHE: usize = 1024;

/// Build the lane fleet: one cheap fork of a template environment per
/// lane (shared base frame, shared action-space construction, shared
/// display cache when one is given), each with its own counter-derived
/// config seed and initial episode seed.
fn make_lanes(
    base: &DataFrame,
    env_config: &EnvConfig,
    n_lanes: usize,
    base_seed: u64,
    cache: Option<&Arc<DisplayCache>>,
) -> Vec<Lane> {
    let mut template_config = env_config.clone();
    template_config.seed = stream_seed(base_seed, 0, STREAM_ENV);
    let mut template = EdaEnv::with_shared_base(Arc::new(base.clone()), template_config);
    if let Some(cache) = cache {
        template = template.with_display_cache(Arc::clone(cache));
    }
    (0..n_lanes.max(1))
        .map(|lane| {
            let lane = lane as u64;
            let mut env = template.fork_with_seed(stream_seed(base_seed, lane, STREAM_ENV));
            env.reset_with_seed(stream_seed(base_seed, lane, STREAM_INIT));
            Lane {
                env,
                episode_reward: 0.0,
                episode_breakdown: RewardBreakdown::default(),
            }
        })
        .collect()
}

/// Apply a mapped action to the environment, scoring it with the reward
/// model; returns the per-component reward breakdown.
pub(crate) fn step_env(
    env: &mut EdaEnv,
    action: &MappedAction,
    reward: &dyn RewardModel,
) -> RewardBreakdown {
    // atena-lint: allow(wall-clock) — rollout timing telemetry; never affects results
    let start = Instant::now();
    let op = match action {
        MappedAction::Binned(a) => env.resolve(a),
        MappedAction::Term(a) => env.resolve_flat_term(a),
    };
    let preview = env.preview(&op);
    let r = {
        let info = env.step_info(&preview);
        reward.score(&info)
    };
    env.commit(preview);
    env.step_latency_histogram()
        .record_duration(start.elapsed());
    r
}

/// Snapshot the environment's completed session as an [`EpisodeRecord`].
pub(crate) fn episode_record(env: &EdaEnv, breakdown: RewardBreakdown) -> EpisodeRecord {
    EpisodeRecord {
        ops: env.session().ops().iter().map(|o| o.op.clone()).collect(),
        total_reward: breakdown.total,
        breakdown,
    }
}

/// Collect one fragment from one lane. The lane's RNG for this iteration
/// is derived fresh from its coordinates, so this function's effects are
/// identical wherever (and on whatever thread) it runs.
fn run_lane(
    lane: &mut Lane,
    lane_id: usize,
    plan: &RolloutPlan<'_>,
) -> (RolloutBuffer, Vec<EpisodeRecord>) {
    let mut rng =
        StdRng::seed_from_u64(stream_seed(plan.base_seed, lane_id as u64, plan.iteration));
    let mut buffer = RolloutBuffer::new();
    let mut episodes = Vec::new();
    for _ in 0..plan.rollout_len {
        let obs = lane.env.observation();
        let step = plan.policy.act(&obs, plan.temperature, &mut rng);
        let mapped = plan.mapper.map(&step.choice);
        let r = step_env(&mut lane.env, &mapped, plan.reward);
        lane.episode_reward += r.total;
        lane.episode_breakdown += r;
        let done = lane.env.done();
        buffer.push(RolloutStep {
            obs,
            choice: step.choice,
            log_prob: step.log_prob,
            value: step.value,
            reward: r.total as f32,
            done,
        });
        if done {
            episodes.push(episode_record(&lane.env, lane.episode_breakdown));
            lane.episode_reward = 0.0;
            lane.episode_breakdown = RewardBreakdown::default();
            let seed = rng.gen();
            lane.env.reset_with_seed(seed);
        }
    }
    (buffer, episodes)
}

/// Merge per-lane fragments (already in lane order) into one buffer.
fn merge(results: Vec<(RolloutBuffer, Vec<EpisodeRecord>)>) -> (RolloutBuffer, Vec<EpisodeRecord>) {
    let mut buffer = RolloutBuffer::new();
    let mut episodes = Vec::new();
    for (b, eps) in results {
        buffer.extend(b);
        episodes.extend(eps);
    }
    (buffer, episodes)
}

/// The reference schedule: lanes walked in order on the calling thread.
pub struct SerialRollouts {
    lanes: Vec<Lane>,
    cache: Option<Arc<DisplayCache>>,
}

impl SerialRollouts {
    /// Build `n_lanes` lanes over `base` seeded from `base_seed`, sharing
    /// a display cache of the default capacity.
    pub fn new(base: &DataFrame, env_config: &EnvConfig, n_lanes: usize, base_seed: u64) -> Self {
        Self::with_cache_capacity(base, env_config, n_lanes, base_seed, DEFAULT_DISPLAY_CACHE)
    }

    /// Like [`SerialRollouts::new`] with an explicit display-cache capacity
    /// (0 runs uncached). Capacity is execution-only: it changes speed,
    /// never transcripts.
    pub fn with_cache_capacity(
        base: &DataFrame,
        env_config: &EnvConfig,
        n_lanes: usize,
        base_seed: u64,
        cache_capacity: usize,
    ) -> Self {
        let cache = (cache_capacity > 0).then(|| Arc::new(DisplayCache::new(cache_capacity)));
        Self {
            lanes: make_lanes(base, env_config, n_lanes, base_seed, cache.as_ref()),
            cache,
        }
    }

    /// The display cache shared by this source's lanes, if enabled.
    pub fn display_cache(&self) -> Option<&Arc<DisplayCache>> {
        self.cache.as_ref()
    }
}

impl RolloutSource for SerialRollouts {
    fn collect(&mut self, plan: &RolloutPlan<'_>) -> (RolloutBuffer, Vec<EpisodeRecord>) {
        let results = self
            .lanes
            .iter_mut()
            .enumerate()
            .map(|(lane_id, lane)| run_lane(lane, lane_id, plan))
            .collect();
        merge(results)
    }

    fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    fn lane_env_mut(&mut self, lane: usize) -> &mut EdaEnv {
        &mut self.lanes[lane].env
    }

    fn set_telemetry(&mut self, registry: Arc<MetricsRegistry>) {
        if let Some(cache) = &self.cache {
            cache.reroute_telemetry(&registry);
        }
    }
}

/// The parallel schedule: the same lanes, sharded over a [`Runtime`].
///
/// Bit-identical to [`SerialRollouts`] at the same seed and lane count —
/// `run_lane` is coordinate-seeded and the runtime merges shard results
/// in lane order. Worker count only changes wall-clock time.
pub struct ParallelRollouts {
    lanes: Vec<Lane>,
    runtime: Runtime,
    telemetry: Arc<MetricsRegistry>,
    cache: Option<Arc<DisplayCache>>,
}

impl ParallelRollouts {
    /// Build `n_lanes` lanes over `base` collected by `workers` threads,
    /// sharing a display cache of the default capacity.
    pub fn new(
        base: &DataFrame,
        env_config: &EnvConfig,
        n_lanes: usize,
        base_seed: u64,
        workers: usize,
    ) -> Self {
        Self::with_cache_capacity(
            base,
            env_config,
            n_lanes,
            base_seed,
            workers,
            DEFAULT_DISPLAY_CACHE,
        )
    }

    /// Like [`ParallelRollouts::new`] with an explicit display-cache
    /// capacity (0 runs uncached). Capacity is execution-only, like the
    /// worker count: it changes speed, never transcripts.
    pub fn with_cache_capacity(
        base: &DataFrame,
        env_config: &EnvConfig,
        n_lanes: usize,
        base_seed: u64,
        workers: usize,
        cache_capacity: usize,
    ) -> Self {
        let cache = (cache_capacity > 0).then(|| Arc::new(DisplayCache::new(cache_capacity)));
        Self {
            lanes: make_lanes(base, env_config, n_lanes, base_seed, cache.as_ref()),
            runtime: Runtime::new(workers),
            telemetry: atena_telemetry::global_arc(),
            cache,
        }
    }

    /// The underlying runtime (worker count etc.).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The display cache shared by this source's lanes, if enabled.
    pub fn display_cache(&self) -> Option<&Arc<DisplayCache>> {
        self.cache.as_ref()
    }
}

impl RolloutSource for ParallelRollouts {
    fn collect(&mut self, plan: &RolloutPlan<'_>) -> (RolloutBuffer, Vec<EpisodeRecord>) {
        let results = self.runtime.scatter(&mut self.lanes, |lane_id, lane| {
            run_lane(lane, lane_id, plan)
        });
        // Per-worker environment-step throughput, attributed by shard.
        for (w, range) in self.runtime.shards(results.len()).into_iter().enumerate() {
            let steps: usize = results[range].iter().map(|(b, _)| b.len()).sum();
            self.telemetry
                .counter(&format!("runtime.worker.{w}.steps"))
                .add(steps as u64);
        }
        merge(results)
    }

    fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    fn lane_env_mut(&mut self, lane: usize) -> &mut EdaEnv {
        &mut self.lanes[lane].env
    }

    fn set_telemetry(&mut self, registry: Arc<MetricsRegistry>) {
        if let Some(cache) = &self.cache {
            cache.reroute_telemetry(&registry);
        }
        self.telemetry = Arc::clone(&registry);
        self.runtime = self.runtime.clone().with_telemetry(registry);
    }

    fn scatter_profile(&self) -> Option<ScatterProfile> {
        Some(self.runtime.last_profile())
    }
}

/// Collect one fragment from every lane of a shard, stepping all lanes
/// through **one batched policy forward per env step** instead of one
/// forward per lane per step.
///
/// Bit-identical to running [`run_lane`] over the same lanes: each lane
/// keeps its own counter-seeded RNG and [`crate::PolicyRow::sample`] draws
/// from it in exactly the order the serial act path would, while the
/// batched forward itself is row-independent (DESIGN.md §4l). The batch is
/// purely an execution-schedule choice.
fn run_shard_batched(
    lanes: &mut [Lane],
    first_lane_id: usize,
    plan: &RolloutPlan<'_>,
    max_batch: usize,
    telemetry: &MetricsRegistry,
) -> Vec<(RolloutBuffer, Vec<EpisodeRecord>)> {
    let planner = BatchPlanner::new(plan.policy.obs_dim(), max_batch);
    let mut rngs: Vec<StdRng> = (0..lanes.len())
        .map(|i| {
            StdRng::seed_from_u64(stream_seed(
                plan.base_seed,
                (first_lane_id + i) as u64,
                plan.iteration,
            ))
        })
        .collect();
    let mut buffers: Vec<RolloutBuffer> = (0..lanes.len()).map(|_| RolloutBuffer::new()).collect();
    let mut episodes: Vec<Vec<EpisodeRecord>> = (0..lanes.len()).map(|_| Vec::new()).collect();
    for _ in 0..plan.rollout_len {
        let obs: Vec<Vec<f32>> = lanes.iter().map(|l| l.env.observation()).collect();
        let rows = planner.run(&obs, |batch| {
            telemetry
                .histogram("batch.occupancy")
                .record(batch.rows() as f64);
            plan.policy
                .forward_rows(batch, plan.temperature)
                .unwrap_or_else(|e| panic!("policy forward failed: {e}"))
        });
        for (i, ((lane, row), ob)) in lanes.iter_mut().zip(rows).zip(obs).enumerate() {
            let step = row.sample(&mut rngs[i]);
            let mapped = plan.mapper.map(&step.choice);
            let r = step_env(&mut lane.env, &mapped, plan.reward);
            lane.episode_reward += r.total;
            lane.episode_breakdown += r;
            let done = lane.env.done();
            buffers[i].push(RolloutStep {
                obs: ob,
                choice: step.choice,
                log_prob: step.log_prob,
                value: step.value,
                reward: r.total as f32,
                done,
            });
            if done {
                episodes[i].push(episode_record(&lane.env, lane.episode_breakdown));
                lane.episode_reward = 0.0;
                lane.episode_breakdown = RewardBreakdown::default();
                let seed = rngs[i].gen();
                lane.env.reset_with_seed(seed);
            }
        }
    }
    buffers.into_iter().zip(episodes).collect()
}

/// The lane-batched schedule: all lanes of a shard advance in lockstep,
/// one `[lanes_in_shard, obs_dim]` policy forward per environment step
/// (chunked at `max_batch` rows by a [`BatchPlanner`]).
///
/// Bit-identical to [`SerialRollouts`] at the same seed and lane count,
/// for any `(workers, max_batch)`: RNG streams are per-lane and
/// counter-derived, the forward kernels are row-independent, and shard
/// results merge in lane order. Batch size is execution-only — it changes
/// steps/sec, never transcripts — and the determinism suite pins this.
pub struct BatchedRollouts {
    lanes: Vec<Lane>,
    runtime: Runtime,
    telemetry: Arc<MetricsRegistry>,
    cache: Option<Arc<DisplayCache>>,
    max_batch: usize,
}

impl BatchedRollouts {
    /// Build `n_lanes` lanes over `base` collected by `workers` threads
    /// with at most `max_batch` rows per policy forward, sharing a display
    /// cache of the default capacity.
    pub fn new(
        base: &DataFrame,
        env_config: &EnvConfig,
        n_lanes: usize,
        base_seed: u64,
        workers: usize,
        max_batch: usize,
    ) -> Self {
        Self::with_cache_capacity(
            base,
            env_config,
            n_lanes,
            base_seed,
            workers,
            max_batch,
            DEFAULT_DISPLAY_CACHE,
        )
    }

    /// Like [`BatchedRollouts::new`] with an explicit display-cache
    /// capacity (0 runs uncached).
    pub fn with_cache_capacity(
        base: &DataFrame,
        env_config: &EnvConfig,
        n_lanes: usize,
        base_seed: u64,
        workers: usize,
        max_batch: usize,
        cache_capacity: usize,
    ) -> Self {
        let cache = (cache_capacity > 0).then(|| Arc::new(DisplayCache::new(cache_capacity)));
        Self {
            lanes: make_lanes(base, env_config, n_lanes, base_seed, cache.as_ref()),
            runtime: Runtime::new(workers),
            telemetry: atena_telemetry::global_arc(),
            cache,
            max_batch: max_batch.max(1),
        }
    }

    /// Maximum rows per batched forward.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The display cache shared by this source's lanes, if enabled.
    pub fn display_cache(&self) -> Option<&Arc<DisplayCache>> {
        self.cache.as_ref()
    }
}

impl RolloutSource for BatchedRollouts {
    fn collect(&mut self, plan: &RolloutPlan<'_>) -> (RolloutBuffer, Vec<EpisodeRecord>) {
        let max_batch = self.max_batch;
        let telemetry = Arc::clone(&self.telemetry);
        let shard_results = self
            .runtime
            .scatter_shards(&mut self.lanes, |offset, shard| {
                run_shard_batched(shard, offset, plan, max_batch, &telemetry)
            });
        for (w, fragments) in shard_results.iter().enumerate() {
            let steps: usize = fragments.iter().map(|(b, _)| b.len()).sum();
            self.telemetry
                .counter(&format!("runtime.worker.{w}.steps"))
                .add(steps as u64);
        }
        merge(shard_results.into_iter().flatten().collect())
    }

    fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    fn lane_env_mut(&mut self, lane: usize) -> &mut EdaEnv {
        &mut self.lanes[lane].env
    }

    fn set_telemetry(&mut self, registry: Arc<MetricsRegistry>) {
        if let Some(cache) = &self.cache {
            cache.reroute_telemetry(&registry);
        }
        self.telemetry = Arc::clone(&registry);
        self.runtime = self.runtime.clone().with_telemetry(registry);
    }

    fn scatter_profile(&self) -> Option<ScatterProfile> {
        Some(self.runtime.last_profile())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twofold::{TwofoldConfig, TwofoldPolicy};
    use atena_dataframe::AttrRole;
    use atena_reward::{CoherencyConfig, CompoundReward};

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "proto",
                AttrRole::Categorical,
                (0..48).map(|i| Some(if i % 4 == 0 { "udp" } else { "tcp" })),
            )
            .int(
                "len",
                AttrRole::Numeric,
                (0..48).map(|i| Some((i * 17 % 29) as i64)),
            )
            .build()
            .unwrap()
    }

    fn fixture() -> (
        Arc<TwofoldPolicy>,
        ActionMapper,
        Arc<CompoundReward>,
        EnvConfig,
    ) {
        let env_config = EnvConfig {
            episode_len: 4,
            n_bins: 5,
            history_window: 3,
            seed: 9,
        };
        let probe = EdaEnv::new(base(), env_config.clone());
        let mut rng = StdRng::seed_from_u64(9);
        let policy = TwofoldPolicy::new(
            probe.observation_dim(),
            probe.action_space().head_sizes(),
            TwofoldConfig { hidden: [16, 16] },
            &mut rng,
        );
        let mut reward =
            CompoundReward::new(CoherencyConfig::with_focal_attrs(vec!["proto".into()]));
        let mut fit_env = EdaEnv::new(base(), env_config.clone());
        reward.fit(&mut fit_env, 60, 9);
        (
            Arc::new(policy),
            ActionMapper::Twofold,
            Arc::new(reward),
            env_config,
        )
    }

    fn collect_with(source: &mut dyn RolloutSource, iterations: u64) -> String {
        let (policy, mapper, reward, _) = fixture();
        let mut transcript = String::new();
        for iteration in 0..iterations {
            let plan = RolloutPlan {
                policy: policy.as_ref(),
                mapper: &mapper,
                reward: reward.as_ref(),
                rollout_len: 24,
                temperature: 1.0,
                base_seed: 9,
                iteration,
            };
            let (buffer, episodes) = source.collect(&plan);
            transcript.push_str(&format!("{:?}|{:?}\n", buffer.steps(), episodes));
        }
        transcript
    }

    #[test]
    fn serial_and_parallel_sources_are_bit_identical() {
        let (_, _, _, env_config) = fixture();
        let frame = base();
        let mut serial = SerialRollouts::new(&frame, &env_config, 4, 9);
        let reference = collect_with(&mut serial, 3);
        for workers in [1, 2, 4, 7] {
            let registry = Arc::new(MetricsRegistry::new());
            let mut parallel = ParallelRollouts::new(&frame, &env_config, 4, 9, workers);
            parallel.set_telemetry(Arc::clone(&registry));
            let transcript = collect_with(&mut parallel, 3);
            assert_eq!(
                transcript, reference,
                "workers={workers} diverged from serial"
            );
            let snap = registry.snapshot();
            let steps: u64 = (0..workers)
                .filter_map(|w| snap.counter(&format!("runtime.worker.{w}.steps")))
                .sum();
            assert_eq!(steps, 3 * 4 * 24, "workers={workers} step accounting");
        }
    }

    #[test]
    fn batched_source_is_bit_identical_to_serial() {
        let (_, _, _, env_config) = fixture();
        let frame = base();
        let mut serial = SerialRollouts::new(&frame, &env_config, 4, 9);
        let reference = collect_with(&mut serial, 3);
        for max_batch in [1, 4, 8] {
            for workers in [1, 4] {
                let registry = Arc::new(MetricsRegistry::new());
                let mut batched =
                    BatchedRollouts::new(&frame, &env_config, 4, 9, workers, max_batch);
                batched.set_telemetry(Arc::clone(&registry));
                let transcript = collect_with(&mut batched, 3);
                assert_eq!(
                    transcript, reference,
                    "batch={max_batch} workers={workers} diverged from serial"
                );
                let snap = registry.snapshot();
                let steps: u64 = (0..workers)
                    .filter_map(|w| snap.counter(&format!("runtime.worker.{w}.steps")))
                    .sum();
                assert_eq!(
                    steps,
                    3 * 4 * 24,
                    "batch={max_batch} workers={workers} step accounting"
                );
                let occ = snap
                    .histogram("batch.occupancy")
                    .expect("occupancy recorded");
                assert!(occ.count > 0, "no occupancy samples");
                let lanes_per_shard = 4usize.div_ceil(workers.min(4));
                let expect_max = lanes_per_shard.min(max_batch) as f64;
                assert_eq!(
                    occ.max, expect_max,
                    "batch={max_batch} workers={workers} occupancy"
                );
            }
        }
    }

    #[test]
    fn batched_source_with_cache_off_matches_serial() {
        let (_, _, _, env_config) = fixture();
        let frame = base();
        let mut serial = SerialRollouts::with_cache_capacity(&frame, &env_config, 4, 9, 0);
        let reference = collect_with(&mut serial, 2);
        let mut batched = BatchedRollouts::with_cache_capacity(&frame, &env_config, 4, 9, 2, 4, 0);
        assert!(batched.display_cache().is_none());
        assert_eq!(collect_with(&mut batched, 2), reference);
    }

    #[test]
    fn lane_fleet_shares_one_base_frame() {
        let (_, _, _, env_config) = fixture();
        let source = SerialRollouts::new(&base(), &env_config, 6, 1);
        assert_eq!(source.n_lanes(), 6);
        // All lanes observe the same dataset through the same Arc.
        let rows = source.lanes[0].env.base().n_rows();
        for lane in &source.lanes {
            assert_eq!(lane.env.base().n_rows(), rows);
            assert!(std::sync::Arc::ptr_eq(
                lane.env.base_arc(),
                source.lanes[0].env.base_arc()
            ));
        }
    }
}
