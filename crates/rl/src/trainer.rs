//! The training loop: a deterministic rollout source (serial or sharded
//! over the `atena-runtime` worker pool — see DESIGN.md §4h) feeding the
//! PPO learner, with mean-episode-reward tracking for the convergence
//! experiments (Figure 5) and best-episode extraction for notebook
//! generation. Worker count changes wall-clock speed only: at a fixed
//! seed the `TrainLog` is bit-identical for any `n_workers`.

use crate::policy::{ActionMapper, Policy};
use crate::ppo::{PpoConfig, PpoLearner, UpdateStats};
use crate::rollout::RolloutBuffer;
use crate::source::{
    episode_record, step_env, BatchedRollouts, ParallelRollouts, RolloutPlan, RolloutSource,
    SerialRollouts,
};
use atena_dataframe::DataFrame;
use atena_env::{EnvConfig, ResolvedOp, RewardBreakdown, RewardModel};
use atena_runtime::{stream_seed, STREAM_EVAL};
use atena_telemetry::{MetricsRegistry, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// PPO hyperparameters.
    pub ppo: PpoConfig,
    /// Steps each lane collects per iteration.
    pub rollout_len: usize,
    /// Number of episode lanes (independent environments collected per
    /// iteration). Part of the result: changing it changes the data the
    /// learner sees, like changing `rollout_len`.
    pub n_lanes: usize,
    /// Number of rollout threads. Execution-only: any value produces
    /// bit-identical results at the same seed (the determinism contract,
    /// DESIGN.md §4h); more threads only collect the same lanes faster.
    pub n_workers: usize,
    /// Capacity of the display cache shared across the lane fleet (0
    /// disables it). Execution-only, like `n_workers`: the cache is pure
    /// memoization (DESIGN.md §4i), so any capacity produces bit-identical
    /// results at the same seed.
    pub display_cache: usize,
    /// Boltzmann exploration temperature at the start of training.
    pub temperature: f32,
    /// Temperature at the end of a `train()` call; the schedule anneals
    /// linearly between the two. Set equal to `temperature` (the default)
    /// to disable annealing.
    pub temperature_final: f32,
    /// Episodes averaged per convergence-curve point.
    pub eval_window: usize,
    /// Master seed.
    pub seed: u64,
    /// Rows per batched policy forward during rollouts. `0` (the default)
    /// keeps the per-lane serial/parallel sources; `>= 1` selects the
    /// lane-batched source, stepping each shard's lanes through one
    /// `[lanes, obs_dim]` forward per env step, chunked at this size.
    /// Execution-only, like `n_workers`: any value produces bit-identical
    /// results at the same seed (DESIGN.md §4l).
    pub batch_lanes: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            ppo: PpoConfig::default(),
            rollout_len: 96,
            n_lanes: 4,
            n_workers: 4,
            display_cache: crate::source::DEFAULT_DISPLAY_CACHE,
            temperature: 1.0,
            temperature_final: 1.0,
            eval_window: 20,
            seed: 0,
            batch_lanes: 0,
        }
    }
}

/// A completed episode: its operations and cumulative reward.
#[derive(Debug, Clone)]
pub struct EpisodeRecord {
    /// The resolved operations, in order.
    pub ops: Vec<ResolvedOp>,
    /// Cumulative (non-normalized) episode reward.
    pub total_reward: f64,
    /// Per-component decomposition of `total_reward` (summed per-step
    /// breakdowns; `breakdown.total == total_reward`).
    pub breakdown: RewardBreakdown,
}

/// One point of the learning curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Global environment steps consumed so far.
    pub steps: usize,
    /// Mean episode reward over the recent window.
    pub mean_episode_reward: f64,
}

/// Output of a training run.
#[derive(Debug, Clone)]
pub struct TrainLog {
    /// Convergence curve (one point per iteration).
    pub curve: Vec<CurvePoint>,
    /// Total episodes completed.
    pub episodes: usize,
    /// Total environment steps consumed.
    pub steps: usize,
    /// Best episode seen during training.
    pub best_episode: Option<EpisodeRecord>,
    /// Diagnostics of the final PPO update.
    pub last_update: UpdateStats,
}

/// Everything worth reporting about one training iteration.
struct IterationStats {
    steps: usize,
    rollout_secs: f64,
    update_secs: f64,
    temperature: f32,
    mean_reward: f64,
    update: UpdateStats,
}

/// Trains a policy on one dataset with a given reward model.
pub struct Trainer {
    policy: Arc<dyn Policy>,
    mapper: ActionMapper,
    reward: Arc<dyn RewardModel>,
    learner: PpoLearner,
    config: TrainerConfig,
    source: Box<dyn RolloutSource>,
    rng: StdRng,
    eval_rng: StdRng,
    recent_episodes: Vec<f64>,
    best_episode: Option<EpisodeRecord>,
    total_steps: usize,
    total_episodes: usize,
    total_iterations: usize,
    telemetry: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
}

impl Trainer {
    /// Create a trainer. The lane fleet shares one copy of the dataset;
    /// `config.n_workers` picks the serial or parallel rollout source
    /// (which, per the determinism contract, does not affect results).
    pub fn new(
        policy: Arc<dyn Policy>,
        mapper: ActionMapper,
        reward: Arc<dyn RewardModel>,
        base: &DataFrame,
        env_config: EnvConfig,
        config: TrainerConfig,
    ) -> Self {
        let learner = PpoLearner::new(policy.as_ref(), config.ppo);
        let n_lanes = config.n_lanes.max(1);
        let source: Box<dyn RolloutSource> = if config.batch_lanes > 0 {
            Box::new(BatchedRollouts::with_cache_capacity(
                base,
                &env_config,
                n_lanes,
                config.seed,
                config.n_workers.max(1),
                config.batch_lanes,
                config.display_cache,
            ))
        } else if config.n_workers <= 1 {
            Box::new(SerialRollouts::with_cache_capacity(
                base,
                &env_config,
                n_lanes,
                config.seed,
                config.display_cache,
            ))
        } else {
            Box::new(ParallelRollouts::with_cache_capacity(
                base,
                &env_config,
                n_lanes,
                config.seed,
                config.n_workers,
                config.display_cache,
            ))
        };
        Self {
            policy,
            mapper,
            reward,
            learner,
            config,
            source,
            rng: StdRng::seed_from_u64(config.seed),
            eval_rng: StdRng::seed_from_u64(stream_seed(config.seed, 0, STREAM_EVAL)),
            recent_episodes: Vec::new(),
            best_episode: None,
            total_steps: 0,
            total_episodes: 0,
            total_iterations: 0,
            telemetry: atena_telemetry::global_arc(),
            tracer: atena_telemetry::tracer_arc(),
        }
    }

    /// Route this trainer's metrics and events to `registry` instead of the
    /// process-wide one (used by tests to capture output in isolation).
    pub fn with_telemetry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.telemetry = Arc::clone(&registry);
        self.source.set_telemetry(registry);
        self
    }

    /// Record this trainer's iteration span trees on `tracer` instead of
    /// the process-wide one (used by tests to capture spans in isolation).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// The policy being trained.
    pub fn policy(&self) -> &Arc<dyn Policy> {
        &self.policy
    }

    /// Train for (at least) `total_steps` environment steps; returns the
    /// log including the convergence curve and the best episode.
    pub fn train(&mut self, total_steps: usize) -> TrainLog {
        let mut curve = Vec::new();
        let mut last_update = UpdateStats::default();
        let start = self.total_steps;
        // Tracing is execution-only (DESIGN.md §4j): spans measure wall
        // time with `Instant`, draw no randomness, and reorder nothing, so
        // results are bit-identical with the tracer enabled or disabled.
        let tracer = Arc::clone(&self.tracer);
        while self.total_steps - start < total_steps {
            let progress = ((self.total_steps - start) as f32 / total_steps.max(1) as f32).min(1.0);
            let temperature = self.config.temperature
                + (self.config.temperature_final - self.config.temperature) * progress;
            let trace = tracer.trace("train.iteration");
            trace.attr("iter", self.total_iterations.to_string());
            let collect_span = trace.span("rollout.collect");
            let collect_id = collect_span.id();
            let (buffer, episodes) = self.collect_rollouts(temperature);
            let rollout_secs = collect_span.finish();
            if trace.is_recording() {
                // Worker busy times were measured on the rollout threads;
                // attach them post-hoc under the collect span. Their sum can
                // exceed the collect wall time — they ran in parallel.
                if let Some(profile) = self.source.scatter_profile() {
                    for (w, wp) in profile.workers.iter().enumerate() {
                        trace.record_exact(
                            collect_id,
                            "rollout.worker",
                            wp.busy_secs,
                            vec![("worker", w.to_string()), ("lanes", wp.items.to_string())],
                        );
                    }
                    trace.record_exact(collect_id, "rollout.merge", profile.merge_secs, vec![]);
                }
            }
            let iter_steps = buffer.len();
            self.total_steps += iter_steps;
            for ep in episodes {
                self.total_episodes += 1;
                self.recent_episodes.push(ep.total_reward);
                let window = self.config.eval_window.max(1);
                if self.recent_episodes.len() > window {
                    let drop = self.recent_episodes.len() - window;
                    self.recent_episodes.drain(..drop);
                }
                self.record_episode(&ep.breakdown);
                let better = self
                    .best_episode
                    .as_ref()
                    .is_none_or(|b| ep.total_reward > b.total_reward);
                if better {
                    self.best_episode = Some(ep);
                }
            }
            let update_span = trace.span("ppo.update");
            last_update = self
                .learner
                .update(self.policy.as_ref(), &buffer, &mut self.rng);
            let update_secs = update_span.finish();
            trace.attr("steps", iter_steps.to_string());
            let mean_reward = if self.recent_episodes.is_empty() {
                f64::NAN
            } else {
                self.recent_episodes.iter().sum::<f64>() / self.recent_episodes.len() as f64
            };
            if !self.recent_episodes.is_empty() {
                curve.push(CurvePoint {
                    steps: self.total_steps,
                    mean_episode_reward: mean_reward,
                });
            }
            self.record_iteration(IterationStats {
                steps: iter_steps,
                rollout_secs,
                update_secs,
                temperature,
                mean_reward,
                update: last_update,
            });
            self.total_iterations += 1;
        }
        self.telemetry.flush();
        TrainLog {
            curve,
            episodes: self.total_episodes,
            steps: self.total_steps,
            best_episode: self.best_episode.clone(),
            last_update,
        }
    }

    /// Update the aggregate metrics and (when a JSONL sink is attached)
    /// emit one `iteration` event bundle.
    fn record_iteration(&self, s: IterationStats) {
        let t = &self.telemetry;
        t.counter("train.steps").add(s.steps as u64);
        t.counter("train.iterations").inc();
        t.gauge("train.temperature").set(s.temperature as f64);
        t.histogram("train.rollout_secs").record(s.rollout_secs);
        t.histogram("train.update_secs").record(s.update_secs);
        let steps_per_sec = s.steps as f64 / (s.rollout_secs + s.update_secs).max(1e-9);
        t.gauge("train.steps_per_sec").set(steps_per_sec);
        if !t.has_sink() {
            return;
        }
        let iter = self.total_iterations.to_string();
        let labels: &[(&str, String)] = &[("iter", iter)];
        t.emit("iteration", "train.steps_per_sec", steps_per_sec, labels);
        t.emit(
            "iteration",
            "train.mean_episode_reward",
            s.mean_reward,
            labels,
        );
        t.emit(
            "iteration",
            "train.temperature",
            s.temperature as f64,
            labels,
        );
        t.emit("iteration", "train.rollout_secs", s.rollout_secs, labels);
        t.emit("iteration", "train.update_secs", s.update_secs, labels);
        t.emit(
            "iteration",
            "train.policy_loss",
            s.update.policy_loss as f64,
            labels,
        );
        t.emit(
            "iteration",
            "train.value_loss",
            s.update.value_loss as f64,
            labels,
        );
        t.emit(
            "iteration",
            "train.entropy",
            s.update.entropy as f64,
            labels,
        );
        t.emit(
            "iteration",
            "train.grad_norm",
            s.update.grad_norm as f64,
            labels,
        );
        t.emit(
            "iteration",
            "train.clip_fraction",
            s.update.clip_fraction as f64,
            labels,
        );
    }

    /// Count the episode and (when a sink is attached) emit its reward
    /// decomposition as `episode` events.
    fn record_episode(&self, b: &RewardBreakdown) {
        let t = &self.telemetry;
        t.counter("train.episodes").inc();
        if !t.has_sink() {
            return;
        }
        let ep = self.total_episodes.to_string();
        let labels: &[(&str, String)] = &[("episode", ep)];
        t.emit(
            "episode",
            "reward.interestingness",
            b.interestingness,
            labels,
        );
        t.emit("episode", "reward.diversity", b.diversity, labels);
        t.emit("episode", "reward.coherency", b.coherency, labels);
        t.emit("episode", "reward.penalty", b.penalty, labels);
        t.emit("episode", "reward.total", b.total, labels);
    }

    /// Collect one iteration of rollouts from the source.
    fn collect_rollouts(&mut self, temperature: f32) -> (RolloutBuffer, Vec<EpisodeRecord>) {
        let plan = RolloutPlan {
            policy: self.policy.as_ref(),
            mapper: &self.mapper,
            reward: self.reward.as_ref(),
            rollout_len: self.config.rollout_len,
            temperature,
            base_seed: self.config.seed,
            iteration: self.total_iterations as u64,
        };
        self.source.collect(&plan)
    }

    /// Run `n` evaluation episodes at a (typically low) temperature without
    /// learning; returns the episode records. Evaluation draws from its own
    /// RNG stream (`STREAM_EVAL`), so it never perturbs training
    /// randomness — and is itself independent of the worker count.
    pub fn evaluate(&mut self, n: usize, temperature: f32) -> Vec<EpisodeRecord> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let seed = self.eval_rng.gen();
            let env = self.source.lane_env_mut(0);
            env.reset_with_seed(seed);
            let mut breakdown = RewardBreakdown::default();
            while !env.done() {
                let obs = env.observation();
                let step = self.policy.act(&obs, temperature, &mut self.eval_rng);
                let mapped = self.mapper.map(&step.choice);
                breakdown += step_env(env, &mapped, self.reward.as_ref());
            }
            out.push(episode_record(env, breakdown));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twofold::{TwofoldConfig, TwofoldPolicy};
    use atena_dataframe::AttrRole;
    use atena_env::EdaEnv;
    use atena_reward::{CoherencyConfig, CompoundReward};

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "proto",
                AttrRole::Categorical,
                (0..60).map(|i| Some(if i % 5 == 0 { "icmp" } else { "tcp" })),
            )
            .str(
                "src",
                AttrRole::Categorical,
                (0..60).map(|i| Some(["a", "b", "c"][i % 3])),
            )
            .int(
                "len",
                AttrRole::Numeric,
                (0..60).map(|i| Some((i * 31 % 47) as i64)),
            )
            .build()
            .unwrap()
    }

    fn make_trainer(n_workers: usize, seed: u64) -> Trainer {
        make_trainer_batched(n_workers, 0, seed)
    }

    fn make_trainer_batched(n_workers: usize, batch_lanes: usize, seed: u64) -> Trainer {
        let env_config = EnvConfig {
            episode_len: 6,
            n_bins: 5,
            history_window: 3,
            seed,
        };
        let probe = EdaEnv::new(base(), env_config.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = TwofoldPolicy::new(
            probe.observation_dim(),
            probe.action_space().head_sizes(),
            TwofoldConfig { hidden: [32, 32] },
            &mut rng,
        );
        let mut reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(vec!["src".into()]));
        let mut fit_env = EdaEnv::new(base(), env_config.clone());
        reward.fit(&mut fit_env, 120, seed);
        Trainer::new(
            Arc::new(policy),
            ActionMapper::Twofold,
            Arc::new(reward),
            &base(),
            env_config,
            TrainerConfig {
                n_lanes: 2,
                n_workers,
                batch_lanes,
                rollout_len: 48,
                eval_window: 10,
                seed,
                ppo: PpoConfig {
                    minibatch: 32,
                    epochs: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn training_runs_and_logs_curve() {
        let mut t = make_trainer(2, 1);
        let log = t.train(300);
        assert!(log.steps >= 300);
        assert!(log.episodes > 10);
        assert!(!log.curve.is_empty());
        assert!(log.best_episode.is_some());
        let best = log.best_episode.unwrap();
        assert_eq!(best.ops.len(), 6);
        assert!(best.total_reward.is_finite());
    }

    #[test]
    fn training_improves_over_random() {
        let mut t = make_trainer(2, 7);
        let before: f64 = {
            let eps = t.evaluate(10, 1.0);
            eps.iter().map(|e| e.total_reward).sum::<f64>() / 10.0
        };
        t.train(2500);
        let after: f64 = {
            let eps = t.evaluate(10, 0.3);
            eps.iter().map(|e| e.total_reward).sum::<f64>() / 10.0
        };
        assert!(
            after > before,
            "no improvement: before {before:.3}, after {after:.3}"
        );
    }

    #[test]
    fn single_worker_deterministic_with_seed() {
        let run = |seed| {
            let mut t = make_trainer(1, seed);
            let log = t.train(120);
            log.best_episode.map(|e| e.total_reward)
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // The determinism contract at trainer level: the full TrainLog —
        // curve, counters, best episode, final update diagnostics — is
        // bit-identical across worker counts at a fixed seed.
        let run = |n_workers| {
            let mut t = make_trainer(n_workers, 11);
            format!("{:?}", t.train(192))
        };
        let serial = run(1);
        assert_eq!(run(2), serial);
        assert_eq!(run(4), serial);
    }

    #[test]
    fn batch_lanes_does_not_change_results() {
        // Lane batching joins the determinism contract: the full TrainLog
        // is bit-identical across batch sizes and worker counts.
        let serial = {
            let mut t = make_trainer(1, 11);
            format!("{:?}", t.train(192))
        };
        for (batch_lanes, n_workers) in [(1, 1), (2, 1), (8, 1), (2, 4), (8, 4)] {
            let mut t = make_trainer_batched(n_workers, batch_lanes, 11);
            assert_eq!(
                format!("{:?}", t.train(192)),
                serial,
                "batch_lanes={batch_lanes} workers={n_workers} diverged"
            );
        }
    }

    #[test]
    fn evaluate_produces_full_episodes() {
        let mut t = make_trainer(1, 5);
        let eps = t.evaluate(3, 0.5);
        assert_eq!(eps.len(), 3);
        for e in eps {
            assert_eq!(e.ops.len(), 6);
        }
    }

    #[test]
    fn iteration_traces_cover_rollout_workers_and_update() {
        let tracer = Arc::new(Tracer::with_capacity(4096));
        tracer.set_enabled(true);
        let mut t = make_trainer(2, 17).with_tracer(Arc::clone(&tracer));
        t.train(96); // one iteration: 2 lanes × 48 steps
        let spans = tracer.snapshot();
        let by_name = |n: &str| spans.iter().filter(|s| s.name == n).count();
        assert_eq!(by_name("train.iteration"), 1);
        assert_eq!(by_name("rollout.collect"), 1);
        assert_eq!(by_name("ppo.update"), 1);
        assert_eq!(by_name("rollout.worker"), 2, "one span per rollout worker");
        assert_eq!(by_name("rollout.merge"), 1);
        let root = spans.iter().find(|s| s.name == "train.iteration").unwrap();
        let collect = spans.iter().find(|s| s.name == "rollout.collect").unwrap();
        assert_eq!(root.parent_id, 0);
        assert_eq!(collect.parent_id, root.span_id);
        for s in spans.iter().filter(|s| s.name == "rollout.worker") {
            assert_eq!(s.parent_id, collect.span_id);
            assert!(s.attrs.iter().any(|(k, _)| *k == "worker"));
        }
        let update = spans.iter().find(|s| s.name == "ppo.update").unwrap();
        assert_eq!(update.parent_id, root.span_id);
        assert!(root.duration_secs >= collect.duration_secs);
        assert!(root.attrs.contains(&("iter", "0".to_string())));
    }

    #[test]
    fn tracing_does_not_change_results() {
        // The §4j half of the determinism contract at trainer level: span
        // emission is execution-only, so an enabled tracer produces a
        // bit-identical TrainLog.
        let run = |traced: bool| {
            let tracer = Arc::new(Tracer::new());
            tracer.set_enabled(traced);
            let mut t = make_trainer(2, 19).with_tracer(tracer);
            format!("{:?}", t.train(192))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn evaluate_is_worker_count_independent() {
        let run = |n_workers| {
            let mut t = make_trainer(n_workers, 13);
            t.train(96);
            format!("{:?}", t.evaluate(4, 0.5))
        };
        assert_eq!(run(1), run(4));
    }
}
