//! The PPO-clipped actor-critic update (paper §6.1: "A3C enhanced with
//! Proximal Policy Optimization"), with entropy regularization (§5).

use crate::policy::{ActionChoice, Policy};
use crate::rollout::RolloutBuffer;
use atena_nn::{Adam, Graph, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// PPO hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub gae_lambda: f32,
    /// Clip range ε of the surrogate ratio.
    pub clip_eps: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Entropy-bonus coefficient (entropy regularization, paper §5).
    pub entropy_coef: f32,
    /// Optimization epochs per rollout batch.
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch: usize,
    /// Gradient clipping (global norm).
    pub max_grad_norm: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_eps: 0.2,
            value_coef: 0.5,
            entropy_coef: 0.02,
            epochs: 4,
            minibatch: 64,
            max_grad_norm: 0.5,
            learning_rate: 3e-4,
        }
    }
}

/// Diagnostics from one update.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Mean clipped-surrogate policy loss.
    pub policy_loss: f32,
    /// Mean value loss.
    pub value_loss: f32,
    /// Mean policy entropy.
    pub entropy: f32,
    /// Pre-clip gradient norm of the last minibatch.
    pub grad_norm: f32,
    /// Fraction of surrogate ratios that fell outside `[1-ε, 1+ε]` (a
    /// standard PPO health signal: ~0 means the policy barely moved,
    /// large values mean the clip is doing heavy lifting).
    pub clip_fraction: f32,
}

/// The PPO learner: owns the optimizer, borrows the policy per update.
pub struct PpoLearner {
    config: PpoConfig,
    optimizer: Adam,
}

impl PpoLearner {
    /// Create a learner for a policy's parameters.
    pub fn new(policy: &dyn Policy, config: PpoConfig) -> Self {
        let optimizer = Adam::new(policy.params(), config.learning_rate);
        Self { config, optimizer }
    }

    /// The configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Run the PPO epochs over one rollout buffer; returns diagnostics
    /// averaged over all minibatches.
    pub fn update(
        &mut self,
        policy: &dyn Policy,
        buffer: &RolloutBuffer,
        rng: &mut StdRng,
    ) -> UpdateStats {
        if buffer.is_empty() {
            return UpdateStats::default();
        }
        let mut estimates = buffer.advantages(self.config.gamma, self.config.gae_lambda);
        estimates.normalize_advantages();

        let n = buffer.len();
        let obs_dim = policy.obs_dim();
        let mut indices: Vec<usize> = (0..n).collect();
        let mut totals = UpdateStats::default();
        let mut n_batches = 0usize;

        for _ in 0..self.config.epochs {
            indices.shuffle(rng);
            for chunk in indices.chunks(self.config.minibatch.max(1)) {
                let stats = self.minibatch_step(policy, buffer, &estimates, chunk, obs_dim);
                totals.policy_loss += stats.policy_loss;
                totals.value_loss += stats.value_loss;
                totals.entropy += stats.entropy;
                totals.grad_norm = stats.grad_norm;
                totals.clip_fraction += stats.clip_fraction;
                n_batches += 1;
            }
        }
        if n_batches > 0 {
            totals.policy_loss /= n_batches as f32;
            totals.value_loss /= n_batches as f32;
            totals.entropy /= n_batches as f32;
            totals.clip_fraction /= n_batches as f32;
        }
        totals
    }

    fn minibatch_step(
        &mut self,
        policy: &dyn Policy,
        buffer: &RolloutBuffer,
        estimates: &crate::rollout::AdvantageEstimates,
        chunk: &[usize],
        obs_dim: usize,
    ) -> UpdateStats {
        let b = chunk.len();
        let mut obs_data = Vec::with_capacity(b * obs_dim);
        let mut choices: Vec<ActionChoice> = Vec::with_capacity(b);
        let mut old_logp = Vec::with_capacity(b);
        let mut adv = Vec::with_capacity(b);
        let mut ret = Vec::with_capacity(b);
        for &i in chunk {
            let s = &buffer.steps()[i];
            obs_data.extend_from_slice(&s.obs);
            choices.push(s.choice);
            old_logp.push(s.log_prob);
            adv.push(estimates.advantages[i]);
            ret.push(estimates.returns[i]);
        }
        let obs = Tensor::from_vec(b, obs_dim, obs_data);

        let mut g = Graph::new();
        let eval = policy.evaluate(&mut g, &obs, &choices);
        let old_logp_node = g.constant(Tensor::col_vector(old_logp));
        let adv_node = g.constant(Tensor::col_vector(adv));
        let ret_node = g.constant(Tensor::col_vector(ret));

        // Clipped surrogate: -E[min(r·A, clip(r, 1±ε)·A)].
        let diff = g.sub(eval.log_prob, old_logp_node);
        let ratio = g.exp(diff);
        let surr1 = g.mul(ratio, adv_node);
        let clipped = g.clamp(
            ratio,
            1.0 - self.config.clip_eps,
            1.0 + self.config.clip_eps,
        );
        let surr2 = g.mul(clipped, adv_node);
        let surr = g.min_elem(surr1, surr2);
        let surr_mean = g.mean_all(surr);
        let policy_loss = g.neg(surr_mean);

        // Value loss: MSE against returns.
        let vdiff = g.sub(eval.value, ret_node);
        let vsq = g.mul(vdiff, vdiff);
        let value_loss = g.mean_all(vsq);

        // Entropy bonus.
        let entropy_mean = g.mean_all(eval.entropy);

        let v_scaled = g.scale(value_loss, self.config.value_coef);
        let e_scaled = g.scale(entropy_mean, -self.config.entropy_coef);
        let partial = g.add(policy_loss, v_scaled);
        let total = g.add(partial, e_scaled);

        policy.params().zero_grads();
        g.backward(total);
        let grad_norm = policy.params().clip_grad_norm(self.config.max_grad_norm);
        self.optimizer.step(policy.params());

        let ratios = g.value(ratio);
        let eps = self.config.clip_eps;
        let clipped_n = ratios
            .data()
            .iter()
            .filter(|&&r| r < 1.0 - eps || r > 1.0 + eps)
            .count();
        UpdateStats {
            policy_loss: g.value(policy_loss).scalar(),
            value_loss: g.value(value_loss).scalar(),
            entropy: g.value(entropy_mean).scalar(),
            grad_norm,
            clip_fraction: clipped_n as f32 / b.max(1) as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatPolicy;
    use crate::rollout::RolloutStep;
    use rand::{Rng, SeedableRng};

    /// A 3-armed bandit: PPO should learn to pick the best arm.
    #[test]
    fn ppo_solves_bandit() {
        let mut rng = StdRng::seed_from_u64(0);
        let policy = FlatPolicy::new(1, 3, [16, 16], &mut rng);
        let mut learner = PpoLearner::new(
            &policy,
            PpoConfig {
                learning_rate: 0.01,
                entropy_coef: 0.001,
                ..Default::default()
            },
        );
        let arm_rewards = [0.1f32, 1.0, 0.3];
        for _ in 0..40 {
            let mut buf = RolloutBuffer::new();
            for _ in 0..64 {
                let obs = vec![1.0f32];
                let step = policy.act(&obs, 1.0, &mut rng);
                let ActionChoice::Flat { index } = step.choice else {
                    panic!()
                };
                let noise: f32 = rng.gen_range(-0.05..0.05);
                buf.push(RolloutStep {
                    obs,
                    choice: step.choice,
                    log_prob: step.log_prob,
                    value: step.value,
                    reward: arm_rewards[index] + noise,
                    done: true,
                });
            }
            learner.update(&policy, &buf, &mut rng);
        }
        // The trained policy should now prefer arm 1 overwhelmingly.
        let mut picks = [0usize; 3];
        for _ in 0..200 {
            let step = policy.act(&[1.0], 1.0, &mut rng);
            let ActionChoice::Flat { index } = step.choice else {
                panic!()
            };
            picks[index] += 1;
        }
        assert!(
            picks[1] > 150,
            "policy failed to learn the bandit: picks {picks:?}"
        );
    }

    #[test]
    fn update_on_empty_buffer_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let policy = FlatPolicy::new(2, 4, [8, 8], &mut rng);
        let mut learner = PpoLearner::new(&policy, PpoConfig::default());
        let stats = learner.update(&policy, &RolloutBuffer::new(), &mut rng);
        assert_eq!(stats, UpdateStats::default());
    }

    #[test]
    fn value_head_learns_returns() {
        let mut rng = StdRng::seed_from_u64(2);
        let policy = FlatPolicy::new(1, 2, [16, 16], &mut rng);
        let mut learner = PpoLearner::new(
            &policy,
            PpoConfig {
                learning_rate: 0.01,
                value_coef: 1.0,
                ..Default::default()
            },
        );
        // Constant reward 1.0 per single-step episode -> V(s) should -> 1.0.
        for _ in 0..60 {
            let mut buf = RolloutBuffer::new();
            for _ in 0..32 {
                let step = policy.act(&[1.0], 1.0, &mut rng);
                buf.push(RolloutStep {
                    obs: vec![1.0],
                    choice: step.choice,
                    log_prob: step.log_prob,
                    value: step.value,
                    reward: 1.0,
                    done: true,
                });
            }
            learner.update(&policy, &buf, &mut rng);
        }
        let v = policy.act(&[1.0], 1.0, &mut rng).value;
        assert!((v - 1.0).abs() < 0.25, "value estimate {v}");
    }

    #[test]
    fn entropy_coef_slows_collapse() {
        // With a huge entropy bonus the policy should stay near-uniform even
        // when one arm dominates.
        let mut rng = StdRng::seed_from_u64(3);
        let policy = FlatPolicy::new(1, 2, [16, 16], &mut rng);
        let mut learner = PpoLearner::new(
            &policy,
            PpoConfig {
                learning_rate: 0.01,
                entropy_coef: 5.0,
                ..Default::default()
            },
        );
        for _ in 0..30 {
            let mut buf = RolloutBuffer::new();
            for _ in 0..32 {
                let step = policy.act(&[1.0], 1.0, &mut rng);
                let ActionChoice::Flat { index } = step.choice else {
                    panic!()
                };
                buf.push(RolloutStep {
                    obs: vec![1.0],
                    choice: step.choice,
                    log_prob: step.log_prob,
                    value: step.value,
                    reward: if index == 0 { 1.0 } else { 0.0 },
                    done: true,
                });
            }
            learner.update(&policy, &buf, &mut rng);
        }
        let mut picks = [0usize; 2];
        for _ in 0..300 {
            let step = policy.act(&[1.0], 1.0, &mut rng);
            let ActionChoice::Flat { index } = step.choice else {
                panic!()
            };
            picks[index] += 1;
        }
        // Entropy regularization keeps both arms alive.
        assert!(
            picks[1] > 50,
            "entropy failed to preserve exploration: {picks:?}"
        );
    }
}
