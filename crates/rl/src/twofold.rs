//! The ATENA actor network (paper §5, Figure 3): a shared MLP trunk, a
//! **pre-output layer** with one node per operation type and per parameter
//! value (size `|OP| + Σ|V(p)|` instead of `Σ Π|V(p)|`), and a
//! **multi-softmax layer** that normalizes each segment independently.
//! The critic value head shares the trunk (advantage actor-critic).

use crate::policy::{
    active_heads, op_of_head_choice, ActionChoice, Evaluation, Policy, PolicyRow, N_HEADS,
};
use atena_env::HeadSizes;
use atena_nn::{softmax_rows, Graph, Init, Linear, MatmulError, Mlp, NodeId, ParamSet, Tensor};
use rand::rngs::StdRng;

/// Hyperparameters of the twofold network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwofoldConfig {
    /// Hidden layer widths of the shared trunk.
    pub hidden: [usize; 2],
}

impl Default for TwofoldConfig {
    fn default() -> Self {
        Self { hidden: [128, 128] }
    }
}

/// The twofold-output actor-critic policy.
pub struct TwofoldPolicy {
    trunk: Mlp,
    heads: Vec<Linear>,
    value_head: Linear,
    params: ParamSet,
    head_sizes: [usize; N_HEADS],
    obs_dim: usize,
}

impl TwofoldPolicy {
    /// Build the network for an observation size and head sizes.
    pub fn new(
        obs_dim: usize,
        head_sizes: HeadSizes,
        config: TwofoldConfig,
        rng: &mut StdRng,
    ) -> Self {
        let trunk = Mlp::new("trunk", &[obs_dim, config.hidden[0], config.hidden[1]], rng);
        let sizes = head_sizes.as_array();
        let heads: Vec<Linear> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| Linear::new(&format!("head{i}"), trunk.out_dim(), n, Init::Xavier, rng))
            .collect();
        let value_head = Linear::new("value", trunk.out_dim(), 1, Init::Xavier, rng);
        let mut params = ParamSet::new();
        trunk.register(&mut params);
        for h in &heads {
            h.register(&mut params);
        }
        value_head.register(&mut params);
        Self {
            trunk,
            heads,
            value_head,
            params,
            head_sizes: sizes,
            obs_dim,
        }
    }

    /// Sizes of the softmax segments in canonical head order.
    pub fn head_sizes(&self) -> &[usize; N_HEADS] {
        &self.head_sizes
    }

    /// Size of the pre-output layer — `|OP| + Σ|V(p)|`, the quantity the
    /// paper contrasts with the exponential flat layer.
    pub fn pre_output_size(&self) -> usize {
        self.head_sizes.iter().sum()
    }

    /// Forward the trunk and all head logits for a batch.
    fn forward_heads(&self, g: &mut Graph, obs: NodeId) -> (Vec<NodeId>, NodeId) {
        let h = self.trunk.forward(g, obs);
        let logits = self.heads.iter().map(|head| head.forward(g, h)).collect();
        let value = self.value_head.forward(g, h);
        (logits, value)
    }

    /// The pre-batching decode engine, kept verbatim: one step through a
    /// fresh autodiff [`Graph`], snapshotting every weight matrix onto the
    /// tape. This is the oracle the tensor-path [`Policy::act`] /
    /// [`Policy::forward_rows`] must reproduce bit for bit (same
    /// probabilities, same RNG draws, same log-prob and value), and the
    /// perf baseline the batched-inference benchmarks report speedups
    /// against (DESIGN.md §4l).
    pub fn act_via_graph(
        &self,
        obs: &[f32],
        temperature: f32,
        rng: &mut StdRng,
    ) -> crate::policy::PolicyStep {
        use crate::policy::sample_categorical;
        let mut g = Graph::new();
        let x = g.constant(Tensor::row_vector(obs.to_vec()));
        let (logits, value) = self.forward_heads(&mut g, x);
        let temp = temperature.max(1e-3);
        let mut heads = [0usize; N_HEADS];
        for (i, &node) in logits.iter().enumerate() {
            let scaled = g.scale(node, 1.0 / temp);
            let probs = softmax_rows(g.value(scaled));
            heads[i] = sample_categorical(probs.row(0), rng);
        }
        let op = op_of_head_choice(heads[0]);
        let mut log_prob = 0.0f32;
        for &h in active_heads(op) {
            let probs = softmax_rows(g.value(logits[h]));
            log_prob += probs.get(0, heads[h]).max(1e-10).ln();
        }
        crate::policy::PolicyStep {
            choice: ActionChoice::Twofold { heads },
            log_prob,
            value: g.value(value).get(0, 0),
        }
    }
}

impl Policy for TwofoldPolicy {
    fn forward_rows(&self, obs: &Tensor, temperature: f32) -> Result<Vec<PolicyRow>, MatmulError> {
        // Graph-free tensor path: no tape and no per-call weight snapshots,
        // shared by act (B = 1) and every batched caller. Bit-identical to
        // the graph forward because the underlying kernels are.
        let h = self.trunk.forward_batch(obs)?;
        // Boltzmann exploration: sampling reads softmax(logits/T); the
        // joint log-prob reads the *untempered* softmax, as in the serial
        // act path.
        let inv = 1.0 / temperature.max(1e-3);
        let mut tempered: Vec<Tensor> = Vec::with_capacity(N_HEADS);
        let mut untempered: Vec<Tensor> = Vec::with_capacity(N_HEADS);
        for head in &self.heads {
            let logits = head.forward_batch(&h)?;
            tempered.push(softmax_rows(&logits.map(|x| x * inv)));
            untempered.push(softmax_rows(&logits));
        }
        let value = self.value_head.forward_batch(&h)?;
        Ok((0..obs.rows())
            .map(|r| PolicyRow::Twofold {
                tempered: tempered.iter().map(|t| t.row(r).to_vec()).collect(),
                untempered: untempered.iter().map(|t| t.row(r).to_vec()).collect(),
                value: value.get(r, 0),
            })
            .collect())
    }

    fn evaluate(&self, g: &mut Graph, obs: &Tensor, choices: &[ActionChoice]) -> Evaluation {
        let batch = obs.rows();
        assert_eq!(batch, choices.len(), "batch size mismatch");
        let x = g.constant(obs.clone());
        let (logits, value) = self.forward_heads(g, x);

        // Per-head chosen indices and activity masks.
        let mut picked: Vec<Vec<usize>> = vec![vec![0; batch]; N_HEADS];
        let mut masks: Vec<Vec<f32>> = vec![vec![0.0; batch]; N_HEADS];
        for (b, choice) in choices.iter().enumerate() {
            let ActionChoice::Twofold { heads } = choice else {
                panic!("twofold policy evaluated with non-twofold choice");
            };
            let op = op_of_head_choice(heads[0]);
            for &h in active_heads(op) {
                picked[h][b] = heads[h];
                masks[h][b] = 1.0;
            }
        }

        let mut log_prob: Option<NodeId> = None;
        let mut entropy: Option<NodeId> = None;
        for h in 0..N_HEADS {
            let lp_all = g.log_softmax_rows(logits[h]);
            let mask = g.constant(Tensor::col_vector(masks[h].clone()));
            // Log-prob of the chosen value, masked by head activity.
            let lp_chosen = g.pick_per_row(lp_all, picked[h].clone());
            let lp_masked = g.mul(lp_chosen, mask);
            log_prob = Some(match log_prob {
                Some(acc) => g.add(acc, lp_masked),
                None => lp_masked,
            });
            // Segment entropy −Σ p·log p, masked the same way.
            let p = g.exp(lp_all);
            let plogp = g.mul(p, lp_all);
            let row = g.sum_rows(plogp);
            let h_rows = g.neg(row);
            let h_masked = g.mul(h_rows, mask);
            entropy = Some(match entropy {
                Some(acc) => g.add(acc, h_masked),
                None => h_masked,
            });
        }
        Evaluation {
            log_prob: log_prob.expect("at least one head"),
            entropy: entropy.expect("at least one head"),
            value,
        }
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn obs_dim(&self) -> usize {
        self.obs_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn head_sizes() -> HeadSizes {
        HeadSizes {
            op: 3,
            filter_attr: 4,
            filter_op: 8,
            filter_bin: 10,
            group_key: 4,
            agg_func: 5,
            agg_attr: 4,
        }
    }

    fn policy() -> TwofoldPolicy {
        let mut rng = StdRng::seed_from_u64(0);
        TwofoldPolicy::new(
            20,
            head_sizes(),
            TwofoldConfig { hidden: [32, 32] },
            &mut rng,
        )
    }

    #[test]
    fn pre_output_size_is_sum_not_product() {
        let p = policy();
        assert_eq!(p.pre_output_size(), 3 + 4 + 8 + 10 + 4 + 5 + 4);
        // Flat equivalent would be 4*8*10 + 4*5*4 + 1 = 401.
        assert!(p.pre_output_size() < 401);
    }

    #[test]
    fn act_produces_valid_choices() {
        let p = policy();
        let mut rng = StdRng::seed_from_u64(1);
        let obs = vec![0.1f32; 20];
        let mut ops_seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let step = p.act(&obs, 1.0, &mut rng);
            let ActionChoice::Twofold { heads } = step.choice else {
                panic!()
            };
            assert!(heads[0] < 3);
            assert!(heads[1] < 4 && heads[2] < 8 && heads[3] < 10);
            assert!(heads[4] < 4 && heads[5] < 5 && heads[6] < 4);
            assert!(step.log_prob <= 0.0);
            assert!(step.value.is_finite());
            ops_seen.insert(heads[0]);
        }
        // A fresh policy should explore all op types.
        assert_eq!(ops_seen.len(), 3);
    }

    #[test]
    fn tensor_act_is_bit_identical_to_graph_act() {
        use rand::Rng;
        let p = policy();
        let mut obs_rng = StdRng::seed_from_u64(40);
        for trial in 0..25 {
            let obs: Vec<f32> = (0..20).map(|_| obs_rng.gen_range(-1.0..1.0)).collect();
            let temperature = [1.0, 0.5, 0.001, 2.0, 0.0][trial % 5];
            let mut rng_a = StdRng::seed_from_u64(1000 + trial as u64);
            let mut rng_b = StdRng::seed_from_u64(1000 + trial as u64);
            let fast = p.act(&obs, temperature, &mut rng_a);
            let slow = p.act_via_graph(&obs, temperature, &mut rng_b);
            assert_eq!(fast.choice, slow.choice, "trial {trial} choice");
            assert_eq!(
                fast.log_prob.to_bits(),
                slow.log_prob.to_bits(),
                "trial {trial} log_prob"
            );
            assert_eq!(
                fast.value.to_bits(),
                slow.value.to_bits(),
                "trial {trial} value"
            );
            // The RNGs must have been consumed identically.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "trial {trial} rng");
        }
    }

    #[test]
    fn forward_rows_batch_matches_single_rows() {
        let p = policy();
        let mut obs_rng = StdRng::seed_from_u64(41);
        use rand::Rng;
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|_| (0..20).map(|_| obs_rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let mut data = Vec::new();
        for r in &rows {
            data.extend_from_slice(r);
        }
        let batch = Tensor::from_vec(5, 20, data);
        let batched = p.forward_rows(&batch, 0.7).unwrap();
        assert_eq!(batched.len(), 5);
        for (i, row) in rows.iter().enumerate() {
            let single = p
                .forward_rows(&Tensor::row_vector(row.clone()), 0.7)
                .unwrap();
            // PolicyRow has no PartialEq on purpose; compare via Debug,
            // which prints full f32 precision.
            assert_eq!(
                format!("{:?}", single[0]),
                format!("{:?}", batched[i]),
                "row {i} diverged"
            );
        }
        // Wrong observation width is a typed error, not a panic.
        assert!(p.forward_rows(&Tensor::zeros(2, 19), 1.0).is_err());
    }

    #[test]
    fn low_temperature_concentrates() {
        let p = policy();
        let obs = vec![0.3f32; 20];
        let mut rng = StdRng::seed_from_u64(2);
        let mut greedy_ops = std::collections::HashSet::new();
        for _ in 0..50 {
            let step = p.act(&obs, 0.001, &mut rng);
            let ActionChoice::Twofold { heads } = step.choice else {
                panic!()
            };
            greedy_ops.insert(heads);
        }
        // Near-zero temperature: essentially deterministic.
        assert_eq!(greedy_ops.len(), 1);
    }

    #[test]
    fn evaluate_matches_act_log_prob() {
        let p = policy();
        let mut rng = StdRng::seed_from_u64(3);
        let obs = vec![0.2f32; 20];
        let step = p.act(&obs, 1.0, &mut rng);

        let mut g = Graph::new();
        let obs_t = Tensor::row_vector(obs);
        let eval = p.evaluate(&mut g, &obs_t, &[step.choice]);
        let lp = g.value(eval.log_prob).get(0, 0);
        assert!(
            (lp - step.log_prob).abs() < 1e-4,
            "evaluate {lp} vs act {}",
            step.log_prob
        );
        let v = g.value(eval.value).get(0, 0);
        assert!((v - step.value).abs() < 1e-5);
        // Entropy positive for a fresh policy.
        assert!(g.value(eval.entropy).get(0, 0) > 0.0);
    }

    #[test]
    fn evaluate_batch_shapes() {
        let p = policy();
        let mut rng = StdRng::seed_from_u64(4);
        let obs_rows: Vec<f32> = (0..3 * 20).map(|i| (i as f32 * 0.01).sin()).collect();
        let obs = Tensor::from_vec(3, 20, obs_rows);
        let choices: Vec<ActionChoice> = (0..3)
            .map(|r| p.act(obs.row(r), 1.0, &mut rng).choice)
            .collect();
        let mut g = Graph::new();
        let eval = p.evaluate(&mut g, &obs, &choices);
        assert_eq!(g.value(eval.log_prob).shape(), (3, 1));
        assert_eq!(g.value(eval.entropy).shape(), (3, 1));
        assert_eq!(g.value(eval.value).shape(), (3, 1));
    }

    #[test]
    fn back_choice_only_counts_op_head() {
        let p = policy();
        // A BACK choice: entropy/logp must only involve head 0.
        let choice = ActionChoice::Twofold {
            heads: [2, 0, 0, 0, 0, 0, 0],
        };
        let obs = Tensor::row_vector(vec![0.0; 20]);
        let mut g = Graph::new();
        let eval = p.evaluate(&mut g, &obs, &[choice]);
        let ent = g.value(eval.entropy).get(0, 0);
        // Entropy of one 3-way softmax is at most ln 3.
        assert!(ent <= (3.0f32).ln() + 1e-4, "entropy {ent}");
    }
}
