//! The policy abstraction shared by the ATENA twofold architecture and the
//! flat off-the-shelf baselines.

use atena_env::{EdaAction, FlatTermAction, OpType};
use atena_nn::{Graph, MatmulError, NodeId, ParamSet, Tensor};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Number of softmax segments of the twofold output layer:
/// op-type, filter-attr, filter-op, filter-bin, group-key, agg-func,
/// agg-attr.
pub const N_HEADS: usize = 7;

/// Indices of the heads active for each operation type (head 0 is always
/// the op-type segment).
pub fn active_heads(op: OpType) -> &'static [usize] {
    match op {
        OpType::Filter => &[0, 1, 2, 3],
        OpType::Group => &[0, 4, 5, 6],
        OpType::Back => &[0],
    }
}

/// Map an op-type head choice to the [`OpType`].
pub fn op_of_head_choice(choice: usize) -> OpType {
    OpType::ALL[choice.min(OpType::ALL.len() - 1)]
}

/// The discrete choice a policy made at one step, in whichever encoding the
/// architecture uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionChoice {
    /// One index per softmax segment; inactive heads hold 0.
    Twofold {
        /// Per-head indices in canonical head order.
        heads: [usize; N_HEADS],
    },
    /// Index into a flat enumeration of all distinct actions.
    Flat {
        /// Enumeration index.
        index: usize,
    },
}

impl ActionChoice {
    /// The environment action for a twofold choice.
    pub fn to_eda_action(&self) -> Option<EdaAction> {
        match self {
            ActionChoice::Twofold { heads } => Some(match op_of_head_choice(heads[0]) {
                OpType::Filter => EdaAction::Filter {
                    attr: heads[1],
                    op: heads[2],
                    bin: heads[3],
                },
                OpType::Group => EdaAction::Group {
                    key: heads[4],
                    func: heads[5],
                    agg: heads[6],
                },
                OpType::Back => EdaAction::Back,
            }),
            ActionChoice::Flat { .. } => None,
        }
    }
}

/// Output of sampling a policy at one state.
#[derive(Debug, Clone, Copy)]
pub struct PolicyStep {
    /// The sampled choice.
    pub choice: ActionChoice,
    /// Log-probability of the full (joint) choice under the policy.
    pub log_prob: f32,
    /// The critic's value estimate for the state.
    pub value: f32,
}

/// One observation's policy outputs from a batched forward: everything
/// needed to sample an action and score it, without touching the network
/// again. Probabilities are materialized at both the exploration
/// temperature (sampling) and temperature 1 (the joint log-prob),
/// mirroring the two softmax reads of the serial `act` path.
///
/// Decoupling the forward pass from sampling is what lets many sources
/// share one `[B, obs_dim]` forward while each keeps its own RNG stream:
/// [`PolicyRow::sample`] draws in exactly the order `act` does, so a
/// batched row is bit-identical to a serial act on the same observation.
#[derive(Debug, Clone)]
pub enum PolicyRow {
    /// Twofold-architecture outputs: per-segment probabilities.
    Twofold {
        /// `softmax(logits / T)` per head, canonical head order.
        tempered: Vec<Vec<f32>>,
        /// `softmax(logits)` per head.
        untempered: Vec<Vec<f32>>,
        /// Critic value estimate.
        value: f32,
    },
    /// Flat-architecture outputs over the enumerated action table.
    Flat {
        /// `softmax(logits / T)` over all actions.
        tempered: Vec<f32>,
        /// `softmax(logits)` over all actions.
        untempered: Vec<f32>,
        /// Critic value estimate.
        value: f32,
    },
}

impl PolicyRow {
    /// Sample a [`PolicyStep`], consuming `rng` exactly as the serial act
    /// path does: the same number of draws in the same order, the same
    /// log-prob arithmetic. The determinism suite pins this property.
    pub fn sample(&self, rng: &mut StdRng) -> PolicyStep {
        match self {
            PolicyRow::Twofold {
                tempered,
                untempered,
                value,
            } => {
                let mut heads = [0usize; N_HEADS];
                for (i, probs) in tempered.iter().enumerate() {
                    heads[i] = sample_categorical(probs, rng);
                }
                let op = op_of_head_choice(heads[0]);
                let mut log_prob = 0.0f32;
                for &h in active_heads(op) {
                    log_prob += untempered[h][heads[h]].max(1e-10).ln();
                }
                PolicyStep {
                    choice: ActionChoice::Twofold { heads },
                    log_prob,
                    value: *value,
                }
            }
            PolicyRow::Flat {
                tempered,
                untempered,
                value,
            } => {
                let index = sample_categorical(tempered, rng);
                PolicyStep {
                    choice: ActionChoice::Flat { index },
                    log_prob: untempered[index].max(1e-10).ln(),
                    value: *value,
                }
            }
        }
    }
}

/// Differentiable quantities produced by re-evaluating stored choices for a
/// PPO/A2C update.
pub struct Evaluation {
    /// Joint log-probability per sample (B×1).
    pub log_prob: NodeId,
    /// Policy entropy per sample (B×1), for entropy regularization.
    pub entropy: NodeId,
    /// Value estimate per sample (B×1).
    pub value: NodeId,
}

/// An actor-critic policy over the EDA action space.
pub trait Policy: Send + Sync {
    /// Run the network once over a `[B, obs_dim]` batch of observations,
    /// returning one [`PolicyRow`] per input row (in input order). This is
    /// the single forward path — `act` is defined in terms of it — so the
    /// batched and serial routes cannot drift apart. A typed error (rather
    /// than a panic) reports an observation-width mismatch, which lets the
    /// server validate a loaded bundle up front.
    fn forward_rows(&self, obs: &Tensor, temperature: f32) -> Result<Vec<PolicyRow>, MatmulError>;

    /// Sample an action with Boltzmann exploration at the given temperature
    /// (`1.0` = the policy's own distribution).
    ///
    /// # Panics
    /// Panics if `obs` is not `obs_dim` wide.
    fn act(&self, obs: &[f32], temperature: f32, rng: &mut StdRng) -> PolicyStep {
        let rows = self
            .forward_rows(&Tensor::row_vector(obs.to_vec()), temperature)
            .unwrap_or_else(|e| panic!("policy forward failed: {e}"));
        rows.into_iter()
            .next()
            .expect("one row in, one row out")
            .sample(rng)
    }

    /// Build the differentiable evaluation of stored `choices` at `obs`
    /// (one row per sample) inside `graph`.
    fn evaluate(&self, graph: &mut Graph, obs: &Tensor, choices: &[ActionChoice]) -> Evaluation;

    /// All trainable parameters.
    fn params(&self) -> &ParamSet;

    /// Observation dimensionality the policy expects.
    fn obs_dim(&self) -> usize;
}

/// How flat choices map onto environment actions. The twofold architecture
/// needs no table; the OTS baselines index into an enumeration.
#[derive(Debug, Clone)]
pub enum ActionMapper {
    /// Heads map directly to [`EdaAction`]s.
    Twofold,
    /// Index into an enumeration of binned actions (OTS-DRL-B).
    FlatBinned(Vec<EdaAction>),
    /// Index into an enumeration with explicit terms (OTS-DRL).
    FlatTerms(Vec<FlatTermAction>),
}

/// A concrete environment action produced by mapping a choice.
#[derive(Debug, Clone)]
pub enum MappedAction {
    /// Index-form action (twofold or flat-binned).
    Binned(EdaAction),
    /// Explicit-term action (flat-terms enumeration).
    Term(FlatTermAction),
}

impl ActionMapper {
    /// Map a policy choice to an environment action.
    ///
    /// # Panics
    /// Panics if the choice encoding does not match the mapper or the flat
    /// index is out of range (both indicate a wiring bug).
    pub fn map(&self, choice: &ActionChoice) -> MappedAction {
        match (self, choice) {
            (ActionMapper::Twofold, c @ ActionChoice::Twofold { .. }) => {
                MappedAction::Binned(c.to_eda_action().expect("twofold choice"))
            }
            (ActionMapper::FlatBinned(table), ActionChoice::Flat { index }) => {
                MappedAction::Binned(table[*index])
            }
            (ActionMapper::FlatTerms(table), ActionChoice::Flat { index }) => {
                MappedAction::Term(table[*index].clone())
            }
            _ => panic!("action choice encoding does not match mapper"),
        }
    }

    /// Size of the flat action table (`None` for twofold).
    pub fn flat_size(&self) -> Option<usize> {
        match self {
            ActionMapper::Twofold => None,
            ActionMapper::FlatBinned(t) => Some(t.len()),
            ActionMapper::FlatTerms(t) => Some(t.len()),
        }
    }
}

/// Sample an index from unnormalized probabilities.
pub(crate) fn sample_categorical(probs: &[f32], rng: &mut StdRng) -> usize {
    use rand::Rng;
    let total: f32 = probs.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return 0;
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn active_head_sets() {
        assert_eq!(active_heads(OpType::Filter), &[0, 1, 2, 3]);
        assert_eq!(active_heads(OpType::Group), &[0, 4, 5, 6]);
        assert_eq!(active_heads(OpType::Back), &[0]);
    }

    #[test]
    fn twofold_choice_to_action() {
        let c = ActionChoice::Twofold {
            heads: [0, 2, 1, 5, 0, 0, 0],
        };
        assert_eq!(
            c.to_eda_action(),
            Some(EdaAction::Filter {
                attr: 2,
                op: 1,
                bin: 5
            })
        );
        let c = ActionChoice::Twofold {
            heads: [1, 0, 0, 0, 3, 2, 1],
        };
        assert_eq!(
            c.to_eda_action(),
            Some(EdaAction::Group {
                key: 3,
                func: 2,
                agg: 1
            })
        );
        let c = ActionChoice::Twofold {
            heads: [2, 0, 0, 0, 0, 0, 0],
        };
        assert_eq!(c.to_eda_action(), Some(EdaAction::Back));
        assert_eq!(ActionChoice::Flat { index: 3 }.to_eda_action(), None);
    }

    #[test]
    fn mapper_flat_binned() {
        let table = vec![
            EdaAction::Back,
            EdaAction::Filter {
                attr: 0,
                op: 0,
                bin: 0,
            },
        ];
        let m = ActionMapper::FlatBinned(table);
        assert_eq!(m.flat_size(), Some(2));
        match m.map(&ActionChoice::Flat { index: 1 }) {
            MappedAction::Binned(EdaAction::Filter { .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "does not match mapper")]
    fn mapper_mismatch_panics() {
        let m = ActionMapper::Twofold;
        m.map(&ActionChoice::Flat { index: 0 });
    }

    #[test]
    fn categorical_sampling_is_proportional() {
        let mut rng = StdRng::seed_from_u64(0);
        let probs = [0.1f32, 0.0, 0.9];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[sample_categorical(&probs, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "counts: {counts:?}");
    }

    #[test]
    fn categorical_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sample_categorical(&[0.0, 0.0], &mut rng), 0);
        assert_eq!(sample_categorical(&[f32::NAN, 1.0], &mut rng), 0);
    }
}
