//! Greedy non-learned baselines (paper §6.1):
//!
//! - **Greedy-IO** — at each step, evaluate the interestingness of every
//!   possible operation and pick the maximum (baseline 3A);
//! - **Greedy-CR** — the same one-step lookahead but over the full compound
//!   reward (baseline 4C).
//!
//! Both share [`greedy_episode`]; the difference is the reward model passed
//! in.

use crate::trainer::EpisodeRecord;
use atena_env::{EdaAction, EdaEnv, RewardBreakdown, RewardModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Options for the greedy search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyConfig {
    /// Optional cap on the number of candidate actions evaluated per step
    /// (uniform subsample). `None` evaluates the entire enumerated space,
    /// as the paper's Greedy baselines do.
    pub candidate_cap: Option<usize>,
    /// Seed for term sampling and tie-breaking.
    pub seed: u64,
    /// When `true`, the greedy commits exactly the term it scored (oracle
    /// knowledge of the term draw). When `false`, it estimates each
    /// `(attr, op, bin)` candidate with one sampled term but the
    /// environment re-samples the term at execution — the same stochastic
    /// interface the DRL agent faces.
    pub oracle_terms: bool,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        Self {
            candidate_cap: None,
            seed: 0,
            oracle_terms: true,
        }
    }
}

/// Run one full greedy episode: at every step, preview every candidate
/// action, score it with `reward`, and commit the argmax.
pub fn greedy_episode(
    env: &mut EdaEnv,
    reward: &dyn RewardModel,
    config: GreedyConfig,
) -> EpisodeRecord {
    let mut rng = StdRng::seed_from_u64(config.seed);
    env.reset_with_seed(config.seed);
    let mut breakdown = RewardBreakdown::default();
    while !env.done() {
        let mut candidates: Vec<EdaAction> = env.action_space().enumerate_binned();
        if let Some(cap) = config.candidate_cap {
            if candidates.len() > cap {
                candidates.shuffle(&mut rng);
                candidates.truncate(cap);
            }
        }
        let mut best: Option<(f64, EdaAction, atena_env::PreviewedStep)> = None;
        for action in &candidates {
            let op = env.resolve(action);
            let preview = env.preview(&op);
            let score = {
                let info = env.step_info(&preview);
                reward.score(&info).total
            };
            // Deterministic tie-break: strictly greater wins, first seen kept.
            if best.as_ref().is_none_or(|(b, _, _)| score > *b) {
                best = Some((score, *action, preview));
            }
        }
        let (_score, action, preview) =
            best.expect("candidate set is never empty (BACK always exists)");
        if config.oracle_terms {
            // Re-score the winner once to keep the full decomposition (the
            // candidate loop only tracked totals).
            breakdown += {
                let info = env.step_info(&preview);
                reward.score(&info)
            };
            env.commit(preview);
        } else {
            // Re-resolve: the term is re-drawn from the chosen bin, and the
            // realized (not estimated) reward is accrued.
            let op = env.resolve(&action);
            let preview = env.preview(&op);
            breakdown += {
                let info = env.step_info(&preview);
                reward.score(&info)
            };
            env.commit(preview);
        }
    }
    EpisodeRecord {
        ops: env.session().ops().iter().map(|o| o.op.clone()).collect(),
        total_reward: breakdown.total,
        breakdown,
    }
}

/// Run a *random*-policy episode (used as a floor in convergence plots and
/// for reward-probe statistics).
pub fn random_episode(env: &mut EdaEnv, reward: &dyn RewardModel, seed: u64) -> EpisodeRecord {
    let mut rng = StdRng::seed_from_u64(seed);
    env.reset_with_seed(rng.gen());
    let mut breakdown = RewardBreakdown::default();
    while !env.done() {
        let action = atena_reward::random_action(env, &mut rng);
        let op = env.resolve(&action);
        let preview = env.preview(&op);
        breakdown += {
            let info = env.step_info(&preview);
            reward.score(&info)
        };
        env.commit(preview);
    }
    EpisodeRecord {
        ops: env.session().ops().iter().map(|o| o.op.clone()).collect(),
        total_reward: breakdown.total,
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::{AttrRole, DataFrame};
    use atena_env::EnvConfig;
    use atena_reward::{CoherencyConfig, CompoundReward, RewardComponents};

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "proto",
                AttrRole::Categorical,
                (0..50).map(|i| Some(if i % 4 == 0 { "udp" } else { "tcp" })),
            )
            .int(
                "len",
                AttrRole::Numeric,
                (0..50).map(|i| Some((i % 7) as i64)),
            )
            .build()
            .unwrap()
    }

    fn env() -> EdaEnv {
        EdaEnv::new(
            base(),
            EnvConfig {
                episode_len: 4,
                n_bins: 4,
                history_window: 3,
                seed: 0,
            },
        )
    }

    fn reward() -> CompoundReward {
        let mut r = CompoundReward::new(CoherencyConfig::with_focal_attrs(vec![]));
        let mut e = env();
        r.fit(&mut e, 80, 0);
        r
    }

    #[test]
    fn greedy_completes_episode() {
        let mut e = env();
        let r = reward();
        let ep = greedy_episode(&mut e, &r, GreedyConfig::default());
        assert_eq!(ep.ops.len(), 4);
        assert!(ep.total_reward.is_finite());
    }

    #[test]
    fn greedy_beats_random_on_average() {
        let mut e = env();
        let r = reward();
        let greedy = greedy_episode(&mut e, &r, GreedyConfig::default()).total_reward;
        let mut random_sum = 0.0;
        for seed in 0..8 {
            random_sum += random_episode(&mut e, &r, seed).total_reward;
        }
        let random_mean = random_sum / 8.0;
        assert!(
            greedy > random_mean,
            "greedy {greedy:.3} should beat random mean {random_mean:.3}"
        );
    }

    #[test]
    fn candidate_cap_still_completes() {
        let mut e = env();
        let r = reward();
        let ep = greedy_episode(
            &mut e,
            &r,
            GreedyConfig {
                candidate_cap: Some(10),
                seed: 1,
                ..Default::default()
            },
        );
        assert_eq!(ep.ops.len(), 4);
    }

    #[test]
    fn greedy_io_differs_from_greedy_cr() {
        let mut e = env();
        let cr = reward();
        let io = CompoundReward::new(CoherencyConfig::default())
            .with_components(RewardComponents::interestingness_only());
        let ep_cr = greedy_episode(&mut e, &cr, GreedyConfig::default());
        let ep_io = greedy_episode(&mut e, &io, GreedyConfig::default());
        // The two objectives generally select different operation sequences.
        assert_ne!(ep_cr.ops, ep_io.ops);
    }

    #[test]
    fn greedy_is_deterministic_given_seed() {
        let mut e = env();
        let r = reward();
        let a = greedy_episode(
            &mut e,
            &r,
            GreedyConfig {
                candidate_cap: None,
                seed: 9,
                ..Default::default()
            },
        );
        let b = greedy_episode(
            &mut e,
            &r,
            GreedyConfig {
                candidate_cap: None,
                seed: 9,
                ..Default::default()
            },
        );
        assert_eq!(a.ops, b.ops);
    }
}
