//! The off-the-shelf baseline actor (paper §6.1, baselines 4A/4B): a
//! standard DRL architecture whose softmax output layer has **one node per
//! distinct action** — the design whose poor scaling motivates the twofold
//! architecture.

use crate::policy::{ActionChoice, Evaluation, Policy, PolicyRow};
use atena_nn::{softmax_rows, Graph, Init, Linear, MatmulError, Mlp, ParamSet, Tensor};
use rand::rngs::StdRng;

/// A flat-softmax actor-critic policy over an enumerated action table.
pub struct FlatPolicy {
    trunk: Mlp,
    action_head: Linear,
    value_head: Linear,
    params: ParamSet,
    n_actions: usize,
    obs_dim: usize,
}

impl FlatPolicy {
    /// Build for an observation size and a flat action count.
    pub fn new(obs_dim: usize, n_actions: usize, hidden: [usize; 2], rng: &mut StdRng) -> Self {
        assert!(n_actions > 0, "empty action table");
        let trunk = Mlp::new("trunk", &[obs_dim, hidden[0], hidden[1]], rng);
        let action_head = Linear::new("actions", trunk.out_dim(), n_actions, Init::Xavier, rng);
        let value_head = Linear::new("value", trunk.out_dim(), 1, Init::Xavier, rng);
        let mut params = ParamSet::new();
        trunk.register(&mut params);
        action_head.register(&mut params);
        value_head.register(&mut params);
        Self {
            trunk,
            action_head,
            value_head,
            params,
            n_actions,
            obs_dim,
        }
    }

    /// Number of output nodes in the action head.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }
}

impl Policy for FlatPolicy {
    fn forward_rows(&self, obs: &Tensor, temperature: f32) -> Result<Vec<PolicyRow>, MatmulError> {
        let h = self.trunk.forward_batch(obs)?;
        let logits = self.action_head.forward_batch(&h)?;
        let value = self.value_head.forward_batch(&h)?;
        let inv = 1.0 / temperature.max(1e-3);
        let tempered = softmax_rows(&logits.map(|x| x * inv));
        let untempered = softmax_rows(&logits);
        Ok((0..obs.rows())
            .map(|r| PolicyRow::Flat {
                tempered: tempered.row(r).to_vec(),
                untempered: untempered.row(r).to_vec(),
                value: value.get(r, 0),
            })
            .collect())
    }

    fn evaluate(&self, g: &mut Graph, obs: &Tensor, choices: &[ActionChoice]) -> Evaluation {
        assert_eq!(obs.rows(), choices.len(), "batch size mismatch");
        let x = g.constant(obs.clone());
        let h = self.trunk.forward(g, x);
        let logits = self.action_head.forward(g, h);
        let value = self.value_head.forward(g, h);

        let picked: Vec<usize> = choices
            .iter()
            .map(|c| match c {
                ActionChoice::Flat { index } => *index,
                ActionChoice::Twofold { .. } => {
                    panic!("flat policy evaluated with twofold choice")
                }
            })
            .collect();
        let lp_all = g.log_softmax_rows(logits);
        let log_prob = g.pick_per_row(lp_all, picked);
        let p = g.exp(lp_all);
        let plogp = g.mul(p, lp_all);
        let rows = g.sum_rows(plogp);
        let entropy = g.neg(rows);
        Evaluation {
            log_prob,
            entropy,
            value,
        }
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn obs_dim(&self) -> usize {
        self.obs_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn policy(n_actions: usize) -> FlatPolicy {
        let mut rng = StdRng::seed_from_u64(0);
        FlatPolicy::new(10, n_actions, [32, 32], &mut rng)
    }

    #[test]
    fn act_samples_within_range() {
        let p = policy(17);
        let mut rng = StdRng::seed_from_u64(1);
        let obs = vec![0.5f32; 10];
        for _ in 0..100 {
            let step = p.act(&obs, 1.0, &mut rng);
            let ActionChoice::Flat { index } = step.choice else {
                panic!()
            };
            assert!(index < 17);
            assert!(step.log_prob <= 0.0);
        }
    }

    #[test]
    fn evaluate_matches_act() {
        let p = policy(9);
        let mut rng = StdRng::seed_from_u64(2);
        let obs = vec![0.1f32; 10];
        let step = p.act(&obs, 1.0, &mut rng);
        let mut g = Graph::new();
        let eval = p.evaluate(&mut g, &Tensor::row_vector(obs), &[step.choice]);
        let lp = g.value(eval.log_prob).get(0, 0);
        assert!((lp - step.log_prob).abs() < 1e-4);
        let ent = g.value(eval.entropy).get(0, 0);
        assert!(ent > 0.0 && ent <= (9.0f32).ln() + 1e-4);
    }

    #[test]
    fn output_layer_scales_with_action_count() {
        // The pathology the paper describes: the head grows linearly with
        // the number of distinct actions.
        let small = policy(10);
        let big = policy(1000);
        assert!(big.params().n_elements() > small.params().n_elements() + 30_000);
        assert_eq!(big.n_actions(), 1000);
    }

    #[test]
    #[should_panic(expected = "empty action table")]
    fn zero_actions_rejected() {
        let _ = policy(0);
    }
}
