//! Policy checkpoints: serialize a policy's parameters (with enough
//! metadata to validate on load) so trained agents can be reused without
//! retraining — e.g. to regenerate a notebook with different seeds, or to
//! resume training.

use atena_nn::{ParamSet, Tensor};
use serde::{Deserialize, Serialize};

/// A serializable snapshot of a policy's parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version (bumped on breaking layout changes).
    pub version: u32,
    /// Free-form architecture tag, validated on load (e.g.
    /// `twofold/obs153/heads3-9-8-10-9-5-9`).
    pub architecture: String,
    /// Named parameter tensors.
    pub params: Vec<(String, Tensor)>,
}

/// Errors from loading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Version not understood.
    Version(u32),
    /// Architecture tag mismatch.
    Architecture {
        /// Tag stored in the checkpoint.
        found: String,
        /// Tag of the receiving policy.
        expected: String,
    },
    /// Parameter set mismatch (missing name or wrong shape).
    Params(String),
    /// Serialization failure.
    Serde(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Version(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Architecture { found, expected } => {
                write!(
                    f,
                    "architecture mismatch: checkpoint {found:?}, policy {expected:?}"
                )
            }
            CheckpointError::Params(m) => write!(f, "parameter mismatch: {m}"),
            CheckpointError::Serde(m) => write!(f, "checkpoint (de)serialization failed: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Current format version.
    pub const VERSION: u32 = 1;

    /// Snapshot a parameter set.
    pub fn capture(architecture: impl Into<String>, params: &ParamSet) -> Self {
        Self {
            version: Self::VERSION,
            architecture: architecture.into(),
            params: params.state(),
        }
    }

    /// Restore into a parameter set, validating version, architecture tag,
    /// names, and shapes.
    pub fn restore(
        &self,
        expected_architecture: &str,
        params: &ParamSet,
    ) -> Result<(), CheckpointError> {
        if self.version != Self::VERSION {
            return Err(CheckpointError::Version(self.version));
        }
        if self.architecture != expected_architecture {
            return Err(CheckpointError::Architecture {
                found: self.architecture.clone(),
                expected: expected_architecture.to_string(),
            });
        }
        params
            .load_state(&self.params)
            .map_err(CheckpointError::Params)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String, CheckpointError> {
        serde_json::to_string(self).map_err(|e| CheckpointError::Serde(e.to_string()))
    }

    /// Deserialize from JSON.
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        serde_json::from_str(text).map_err(|e| CheckpointError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::twofold::{TwofoldConfig, TwofoldPolicy};
    use atena_env::HeadSizes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn head_sizes() -> HeadSizes {
        HeadSizes {
            op: 3,
            filter_attr: 2,
            filter_op: 8,
            filter_bin: 4,
            group_key: 2,
            agg_func: 5,
            agg_attr: 2,
        }
    }

    fn policy(seed: u64) -> TwofoldPolicy {
        let mut rng = StdRng::seed_from_u64(seed);
        TwofoldPolicy::new(10, head_sizes(), TwofoldConfig { hidden: [8, 8] }, &mut rng)
    }

    #[test]
    fn round_trip_restores_behaviour() {
        let source = policy(1);
        let ckpt = Checkpoint::capture("twofold/test", source.params());
        let json = ckpt.to_json().unwrap();
        let loaded = Checkpoint::from_json(&json).unwrap();

        let target = policy(2); // different init
        let mut rng = StdRng::seed_from_u64(3);
        let obs = vec![0.4f32; 10];
        let before = target.act(&obs, 0.01, &mut rng).value;
        loaded.restore("twofold/test", target.params()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let after = target.act(&obs, 0.01, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let original = source.act(&obs, 0.01, &mut rng);
        assert_ne!(before, after.value);
        assert_eq!(after.value, original.value);
        assert_eq!(after.choice, original.choice);
    }

    #[test]
    fn architecture_mismatch_rejected() {
        let source = policy(1);
        let ckpt = Checkpoint::capture("twofold/a", source.params());
        let err = ckpt.restore("twofold/b", source.params()).unwrap_err();
        assert!(matches!(err, CheckpointError::Architecture { .. }));
    }

    #[test]
    fn version_mismatch_rejected() {
        let source = policy(1);
        let mut ckpt = Checkpoint::capture("t", source.params());
        ckpt.version = 99;
        assert_eq!(
            ckpt.restore("t", source.params()),
            Err(CheckpointError::Version(99))
        );
    }

    #[test]
    fn param_shape_mismatch_rejected() {
        let source = policy(1);
        let ckpt = Checkpoint::capture("t", source.params());
        // A policy with different hidden sizes cannot load it.
        let mut rng = StdRng::seed_from_u64(4);
        let other = TwofoldPolicy::new(
            10,
            head_sizes(),
            TwofoldConfig { hidden: [16, 16] },
            &mut rng,
        );
        let err = ckpt.restore("t", other.params()).unwrap_err();
        assert!(matches!(err, CheckpointError::Params(_)));
    }

    #[test]
    fn corrupt_json_rejected() {
        assert!(matches!(
            Checkpoint::from_json("{not json"),
            Err(CheckpointError::Serde(_))
        ));
    }
}
